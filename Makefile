# Convenience targets for the IFTTT reproduction.

.PHONY: install test test-fast bench bench-verbose examples figures chaos chaos-check clean

install:
	pip install -e .

test:
	pytest tests/

# Tier-1 + obs tests minus the multi-second soak/full-scale/example runs;
# the inner-loop target while developing.
test-fast:
	pytest tests/ -q \
		--ignore=tests/test_fullscale.py \
		--ignore=tests/test_scenario_soak.py \
		--ignore=tests/test_examples.py

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

figures:
	python -m repro export-figures --output figures/

# Run every built-in chaos scenario (fault injection + resilience).
chaos:
	@for s in outage partition flappy; do \
		echo "== chaos $$s"; \
		python -m repro chaos --scenario $$s || exit 1; \
		echo; \
	done

# Determinism check: the same scenario + seed twice must produce
# byte-identical metric snapshots (docs/ROBUSTNESS.md).
chaos-check:
	@python -m repro chaos --scenario outage --seed 7 --snapshot .chaos-a.jsonl > /dev/null
	@python -m repro chaos --scenario outage --seed 7 --snapshot .chaos-b.jsonl > /dev/null
	@cmp .chaos-a.jsonl .chaos-b.jsonl && echo "chaos determinism: OK (snapshots byte-identical)"
	@rm -f .chaos-a.jsonl .chaos-b.jsonl

clean:
	rm -rf figures/ .pytest_cache/ src/repro.egg-info/ .chaos-a.jsonl .chaos-b.jsonl
	find . -name __pycache__ -type d -exec rm -rf {} +
