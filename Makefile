# Convenience targets for the IFTTT reproduction.

.PHONY: install test test-fast bench bench-verbose examples figures clean

install:
	pip install -e .

test:
	pytest tests/

# Tier-1 + obs tests minus the multi-second soak/full-scale/example runs;
# the inner-loop target while developing.
test-fast:
	pytest tests/ -q \
		--ignore=tests/test_fullscale.py \
		--ignore=tests/test_scenario_soak.py \
		--ignore=tests/test_examples.py

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

figures:
	python -m repro export-figures --output figures/

clean:
	rm -rf figures/ .pytest_cache/ src/repro.egg-info/
	find . -name __pycache__ -type d -exec rm -rf {} +
