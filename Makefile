# Convenience targets for the IFTTT reproduction.

# Make every target work from a bare checkout (no `pip install -e .`
# needed): prepend the src/ layout to PYTHONPATH for all recipes.
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test test-fast test-shard bench bench-verbose bench-scale bench-push examples figures chaos chaos-check replay-check degrade-check push-check parallel-check experiments-smoke experiments-full ci lint clean

install:
	pip install -e .

test: replay-check degrade-check push-check parallel-check experiments-smoke bench-scale bench-push
	pytest tests/

# Tier-1 + obs tests minus the multi-second soak/full-scale/example runs;
# the inner-loop target while developing.
test-fast:
	pytest tests/ -q \
		--ignore=tests/test_fullscale.py \
		--ignore=tests/test_scenario_soak.py \
		--ignore=tests/test_examples.py

# The multi-engine sharding suites (unit + property + chaos isolation);
# see docs/SHARDING.md.
test-shard:
	pytest tests/test_sharding.py tests/test_sharding_chaos.py -q

bench:
	pytest benchmarks/ --benchmark-only

bench-verbose:
	pytest benchmarks/ --benchmark-only -s

# Fleet-scale perf gate (docs/PERFORMANCE.md): the committed
# BENCH_fleet_scale.json must carry events/sec + peak RSS for
# 10K/100K/1M applets and a passing heap-vs-timers snapshot gate;
# then re-run the 10K dispatch-equivalence gate live.  Regenerate the
# report with `python benchmarks/bench_fleet_scale.py --output
# BENCH_fleet_scale.json` (several minutes; the 1M run dominates).
bench-scale:
	python benchmarks/bench_fleet_scale.py --check BENCH_fleet_scale.json
	python benchmarks/bench_fleet_scale.py --gate-only

# Push-delivery gate (docs/DELIVERY.md): the committed
# BENCH_push_scale.json must carry the three-way poll/hint/push T2A
# comparison at 10K/100K/1M applets and meet the headline — push T2A
# median under 10 s where polling sits near the paper's 58 s quartile,
# engine request load cut >=2x.  Regenerate with `python
# benchmarks/bench_scalability_push.py --output BENCH_push_scale.json`
# (several minutes; the 1M runs dominate).
bench-push:
	python benchmarks/bench_scalability_push.py --check BENCH_push_scale.json

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null && echo OK; done

figures:
	python -m repro export-figures --output figures/

# Run every built-in chaos scenario (fault injection + resilience).
chaos:
	@for s in outage partition flappy brownout; do \
		echo "== chaos $$s"; \
		python -m repro chaos --scenario $$s || exit 1; \
		echo; \
	done

# Determinism check: the same scenario + seed twice must produce
# byte-identical metric snapshots, both single-engine and sharded
# (docs/ROBUSTNESS.md, docs/SHARDING.md).
chaos-check:
	@for n in 1 4; do \
		python -m repro chaos --scenario outage --seed 7 --shards $$n --snapshot .chaos-a.jsonl > /dev/null || exit 1; \
		python -m repro chaos --scenario outage --seed 7 --shards $$n --snapshot .chaos-b.jsonl > /dev/null || exit 1; \
		cmp .chaos-a.jsonl .chaos-b.jsonl || exit 1; \
		echo "chaos determinism (--shards $$n): OK (snapshots byte-identical)"; \
	done
	@rm -f .chaos-a.jsonl .chaos-b.jsonl

# Replay determinism check: dead-letter replay with batched dispatch
# must be bit-reproducible — same scenario + seed twice, byte-identical
# snapshots (docs/ROBUSTNESS.md, "Replay & batching").
replay-check:
	@python -m repro chaos --scenario outage --seed 7 --replay --snapshot .replay-a.jsonl > /dev/null || exit 1
	@python -m repro chaos --scenario outage --seed 7 --replay --snapshot .replay-b.jsonl > /dev/null || exit 1
	@cmp .replay-a.jsonl .replay-b.jsonl || exit 1
	@echo "replay determinism: OK (snapshots byte-identical)"
	@rm -f .replay-a.jsonl .replay-b.jsonl

# Degradation gate: the brownout scenario with adaptive delivery must
# (a) pass every acceptance criterion — ≥3× victim request-rate drop,
# no overload dead letters on healthy services, stretch decayed, §4
# interval quartiles restored — and (b) be bit-reproducible: the same
# scenario + seed twice, byte-identical snapshots *with adaptation on*
# (docs/ROBUSTNESS.md, "Adaptive delivery & degradation ladder").
degrade-check:
	@python -m repro chaos --scenario brownout --seed 7 --adaptive --snapshot .degrade-a.jsonl > /dev/null || exit 1
	@python -m repro chaos --scenario brownout --seed 7 --adaptive --snapshot .degrade-b.jsonl > /dev/null || exit 1
	@cmp .degrade-a.jsonl .degrade-b.jsonl || exit 1
	@echo "degrade acceptance + determinism: OK (snapshots byte-identical)"
	@rm -f .degrade-a.jsonl .degrade-b.jsonl

# Push-delivery determinism + equivalence gate (docs/DELIVERY.md):
# (a) the same chaos scenario + seed under --delivery push must produce
# byte-identical metric snapshots, single-engine and sharded; (b) the
# poll/hint/push equivalence suite must pass across all shard strategies
# and both poll-dispatch modes.
push-check:
	@for n in 1 4; do \
		python -m repro chaos --scenario outage --seed 7 --shards $$n --delivery push --snapshot .push-a.jsonl > /dev/null || exit 1; \
		python -m repro chaos --scenario outage --seed 7 --shards $$n --delivery push --snapshot .push-b.jsonl > /dev/null || exit 1; \
		cmp .push-a.jsonl .push-b.jsonl || exit 1; \
		echo "push determinism (--shards $$n): OK (snapshots byte-identical)"; \
	done
	@rm -f .push-a.jsonl .push-b.jsonl
	@pytest tests/test_push_equivalence.py -q

# Parallel-stepping equivalence gate (docs/SHARDING.md, "Parallel
# stepping & epoch barriers"): serial (--jobs 1) and threaded (--jobs 4)
# epoch stepping of the same sharded chaos scenario must produce
# byte-identical metric snapshots (--parallel needs --shards >= 2), and
# the serial-vs-parallel equivalence suite must pass across shard
# strategies and poll-dispatch modes.
parallel-check:
	@python -m repro chaos --scenario outage --seed 7 --shards 4 --parallel --jobs 1 --snapshot .par-a.jsonl > /dev/null || exit 1
	@python -m repro chaos --scenario outage --seed 7 --shards 4 --parallel --jobs 4 --snapshot .par-b.jsonl > /dev/null || exit 1
	@cmp .par-a.jsonl .par-b.jsonl || exit 1
	@echo "parallel determinism: OK (jobs=1 vs jobs=4 snapshots byte-identical)"
	@rm -f .par-a.jsonl .par-b.jsonl
	@pytest tests/test_parallel_equivalence.py tests/test_simcore_parallel.py -q

# Experiment-matrix smoke gate (EXPERIMENTS.md): run the committed
# smoke spec twice — once subprocess-isolated in parallel, once
# serially in-process — and require byte-identical results (the
# determinism artifact CI gates on; run_meta.json carries the wall
# clock and is excluded).
experiments-smoke:
	@python -m repro experiments EXPERIMENTS/matrix_smoke.json --jobs 4 --quiet --output .exp-smoke-a > /dev/null || exit 1
	@python -m repro experiments EXPERIMENTS/matrix_smoke.json --in-process --quiet --output .exp-smoke-b > /dev/null || exit 1
	@diff -r -q -x run_meta.json .exp-smoke-a .exp-smoke-b || { echo "experiments-smoke: DRIFT (results differ run over run)"; exit 1; }
	@echo "experiments-smoke: OK (results byte-identical, jobs/in-process equivalent)"
	@rm -rf .exp-smoke-a .exp-smoke-b

# The full nightly matrix (38 cells; a few minutes). Results land in
# experiment-results/ — results.txt is the human table.
experiments-full:
	python -m repro experiments EXPERIMENTS/matrix_full.json --jobs 8 --output experiment-results

# Lint gate: ruff when installed (CI installs it), else the repo-local
# offline fallback (tools/lint.py) so the gate runs in hermetic
# environments too. Both read ruff.toml.
lint:
	@if command -v ruff > /dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff not installed; running tools/lint.py fallback"; \
		python tools/lint.py; \
	fi

# What CI runs on every push/PR: lint, the tier-1 fast suite, and the
# experiment smoke gate — no multi-minute bench regeneration.
ci: lint test-fast experiments-smoke

clean:
	rm -rf figures/ .pytest_cache/ src/repro.egg-info/ .chaos-a.jsonl .chaos-b.jsonl .replay-a.jsonl .replay-b.jsonl .degrade-a.jsonl .degrade-b.jsonl .push-a.jsonl .push-b.jsonl .par-a.jsonl .par-b.jsonl .exp-smoke-a .exp-smoke-b experiment-results/
	find . -name __pycache__ -type d -exec rm -rf {} +
