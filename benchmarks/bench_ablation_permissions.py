"""§6 ablation: coarse vs fine-grained permission management.

Paper: "IFTTT performs coarse-grained permission control at the service
level ... the 'least privilege principle' is violated."  This ablation
installs a realistic applet mix on a testbed, grants scopes under both
models, and quantifies the excess privilege the coarse model hands out.
"""

from repro.engine import (
    PerEndpointPermissionModel,
    ServicePermissionModel,
    excess_privilege,
)
from repro.engine.permissions import required_scopes
from repro.reporting import render_table
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.applets import APPLET_SUITE


def run_ablation():
    testbed = Testbed(TestbedConfig(seed=23)).build()
    controller = TestController(testbed)
    applets = [controller.install(key) for key in sorted(APPLET_SUITE)]

    coarse = ServicePermissionModel()
    fine = PerEndpointPermissionModel()
    # Gmail's real-world scope surplus (§6's example: installing a
    # "new email arrives" applet grants read, delete, send, manage).
    extras = {"gmail": ("delete", "manage")}
    for service in testbed.all_services():
        for model in (coarse, fine):
            model.register_service(
                service.slug, service.trigger_slugs, service.action_slugs,
                extra_operations=extras.get(service.slug, ()),
            )
    touched_services = {a.trigger.service_slug for a in applets} | {
        a.action.service_slug for a in applets
    }
    for slug in touched_services:
        coarse.grant_all_scopes("tester", slug)
    for applet in applets:
        fine.grant_for_applet(applet)
    needed = required_scopes(applets)
    return coarse.granted("tester"), fine.granted("tester"), needed


def test_bench_ablation_permissions(benchmark):
    coarse_granted, fine_granted, needed = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    coarse_excess, coarse_ratio = excess_privilege(coarse_granted, needed)
    fine_excess, fine_ratio = excess_privilege(fine_granted, needed)
    print("\n§6 ablation — permission models for the Table 4 applet mix")
    print(render_table(
        ["model", "scopes granted", "scopes needed", "excess", "excess ratio"],
        [
            ["coarse (IFTTT)", len(coarse_granted), len(needed),
             len(coarse_excess), round(coarse_ratio, 2)],
            ["fine (§6)", len(fine_granted), len(needed),
             len(fine_excess), round(fine_ratio, 2)],
        ],
    ))
    gmail_excess = sorted(str(s) for s in coarse_excess if s.service_slug == "gmail")
    print("coarse model's unneeded gmail scopes:", ", ".join(gmail_excess))

    # Ecosystem-scale: a 500-user population over the §3 corpus.
    from repro.analysis.permissions_study import run_permission_study
    from repro.ecosystem import EcosystemGenerator, EcosystemParams

    corpus = EcosystemGenerator(EcosystemParams(scale=0.02, seed=42)).generate()
    study = run_permission_study(corpus, n_users=500, mean_installs=5.0, seed=11)
    print(f"\necosystem-scale (500 users, ~{study.mean_installs:.1f} installs each):")
    print(f"  mean scopes needed {study.mean_scopes_needed:.1f}, granted "
          f"{study.mean_scopes_granted_coarse:.1f} "
          f"({study.mean_overgrant_factor:.1f}x overgrant)")
    print(f"  mean excess ratio {study.mean_excess_ratio:.2f}; "
          f"{study.users_with_excess:.0%} of users carry unneeded scopes")

    assert fine_granted == needed          # least privilege achieved
    assert fine_ratio == 0.0
    assert coarse_ratio > 0.5              # the violation is large
    assert any(s.operation == "delete" for s in coarse_excess)  # §6's example
    assert study.users_with_excess > 0.9   # and it is ecosystem-wide
    assert study.mean_overgrant_factor > 1.5
