"""Shared state for the benchmark harness.

Each bench regenerates one table or figure of the paper.  The §3 benches
share a scale-0.1 corpus (32K applets — large enough that every headline
statistic is stable) crawled once per session; the §4 benches build their
own testbeds.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the reproduced
tables/series printed alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.crawler import IftttCrawler, SnapshotStore
from repro.ecosystem import EcosystemGenerator, EcosystemParams
from repro.frontend import SimulatedIftttSite
from repro.obs import MetricsRegistry

#: Scale used for corpus-driven benches; see DESIGN.md §4 for why the
#: very largest applets distort per-cell shares below full scale.
BENCH_SCALE = 0.1
BENCH_SEED = 2017


@pytest.fixture(scope="session")
def bench_corpus():
    params = EcosystemParams(scale=BENCH_SCALE, seed=BENCH_SEED)
    return EcosystemGenerator(params).generate()


@pytest.fixture(scope="session")
def bench_site(bench_corpus):
    return SimulatedIftttSite(bench_corpus)


@pytest.fixture(scope="session")
def bench_snapshot(bench_site):
    return IftttCrawler(bench_site).crawl()


@pytest.fixture(scope="session")
def bench_store(bench_site):
    store = SnapshotStore()
    crawler = IftttCrawler(bench_site)
    for week in (0, 8, 16, 24):
        store.add(crawler.crawl(week=week))
    return store


@pytest.fixture
def bench_metrics(request):
    """A per-bench metrics registry whose snapshot rides with the timings.

    Benches that opt in wire the registry into what they build (engine,
    network, testbed); at teardown the snapshot is attached to
    pytest-benchmark's ``extra_info`` so ``--benchmark-json`` output
    carries the run's counters and latency sketches next to the timings
    (see docs/OBSERVABILITY.md).

    Opting in is a contract: a bench that finishes without recording a
    single metric fails loudly rather than silently publishing timings
    with an empty snapshot.
    """
    registry = MetricsRegistry()
    yield registry
    snapshot = registry.snapshot()
    if not snapshot["metrics"]:
        pytest.fail(
            f"{request.node.name} requested bench_metrics but recorded no "
            "metrics — wire the registry into the benched code or drop the "
            "fixture."
        )
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None:
        benchmark.extra_info["metrics"] = snapshot
