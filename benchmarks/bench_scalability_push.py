#!/usr/bin/env python
"""§6 scalability: poll vs. hint vs. push delivery at fleet scale.

"if all trigger services perform push, the incurred instantaneous
workload may be too high: IoT workload is known to be highly bursty; for
IFTTT it is likely also the case (consider popular applets such as
'update wallpaper with new NASA photo')".

Two entry points:

* the pytest-benchmark test runs a 150-applet fleet through all three
  delivery modes and pins the qualitative trade-off: polling smears
  requests across each applet's schedule (low peak rate, minutes of
  latency); payload-less realtime *hints* deliver sub-second latency but
  every publication slams the engine and trigger service with the whole
  fleet's polls at once (§6's concern); the payload-carrying *push*
  contract (:mod:`repro.engine.push`) keeps the sub-second latency while
  batch coalescing absorbs the spike — events arrive without any
  engine-originated request at all.

* the CLI produces ``BENCH_push_scale.json``: the same three-way
  comparison at 10K / 100K / 1M applets (lean ``FleetWorld``, each
  (mode, size) pair in its own subprocess so peak RSS and GC state don't
  bleed), reporting T2A quartiles and the engine request load over the
  measurement window.  ``make bench-push`` validates the committed JSON's
  fields and the acceptance headline — push T2A median under 10 s where
  polling sits near the paper's 58 s quartile, with the engine's request
  load cut at least 2x.

Usage::

    python benchmarks/bench_scalability_push.py                # full run, writes JSON
    python benchmarks/bench_scalability_push.py --quick        # small sizes, smoke test
    python benchmarks/bench_scalability_push.py --check FILE   # CI: validate JSON
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.reporting import render_table  # noqa: E402
from repro.testbed.workload import run_fleet_experiment  # noqa: E402

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_push_scale.json")
FLEET_SIZES = (10_000, 100_000, 1_000_000)
QUICK_SIZES = (500, 1_500)
MODES = ("poll", "hint", "push")
PUBLICATIONS = 2
SPACING = 300.0
SEED = 7

#: Fields the CI gate requires of every committed entry.
ENTRY_FIELDS = (
    "mode", "n_applets", "actions_executed", "t2a_quartiles",
    "requests_in_window", "run_seconds", "peak_rss_mb",
)
#: Acceptance headline thresholds, checked at this fleet size.
HEADLINE_SIZE = 10_000
PUSH_MEDIAN_MAX = 10.0
POLL_MEDIAN_MIN = 30.0
REQUEST_REDUCTION_MIN = 2.0


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _quartiles(values):
    ordered = sorted(values)
    if not ordered:
        return None
    def pick(q):
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return [round(pick(0.25), 3), round(pick(0.5), 3), round(pick(0.75), 3)]


# -- child measurement (one (mode, size) pair per subprocess) -------------------


def measure_delivery(mode: str, n_applets: int) -> dict:
    """One lean fleet run under ``mode``; T2A + request load in-window."""
    from repro.engine.config import EngineConfig
    from repro.engine.push import PushPolicy
    from repro.testbed.workload import FleetWorld

    # Fleet-provisioned watermarks: a single publication fans out to
    # n_applets identities in one notification, so a fleet-sized burst
    # is steady state, not backlog (see run_fleet_experiment).
    push_policy = None
    if mode == "push":
        push_policy = PushPolicy(
            max_batch=1_000,
            low_watermark=max(64, n_applets),
            high_watermark=max(256, 4 * n_applets),
        )
    config = EngineConfig(
        realtime_allowlist=None if mode == "hint" else frozenset(),
        initial_poll_jitter=120.0,
        poll_dispatch="heap",
        push_policy=push_policy,
    )
    t0 = time.perf_counter()
    world = FleetWorld(
        n_applets,
        engine_config=config,
        realtime=mode == "hint",
        push=mode == "push",
        seed=SEED,
        with_trace=False,
        with_metrics=False,
        shared_user=True,
        warmup=True,
    )
    t1 = time.perf_counter()
    # request load over the measurement window only — warmup registration
    # polls are identical across modes and would dilute the comparison
    polls_before = world.engine.polls_sent
    result = world.run_publications(publications=PUBLICATIONS, spacing=SPACING)
    t2 = time.perf_counter()
    return {
        "mode": mode,
        "n_applets": n_applets,
        "publications": PUBLICATIONS,
        "spacing_sim_seconds": SPACING,
        "actions_executed": result.actions_executed,
        "t2a_quartiles": _quartiles(result.latencies),
        "requests_in_window": world.engine.polls_sent - polls_before,
        "push_stats": {
            key: value
            for key, value in world.engine.stats().items()
            if key.startswith("push_")
        } if mode == "push" else None,
        "setup_seconds": round(t1 - t0, 3),
        "run_seconds": round(t2 - t1, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def run_child(mode: str, n_applets: int) -> dict:
    payload = json.dumps({"mode": mode, "n_applets": n_applets})
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", payload],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {mode}@{n_applets} failed:\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run_full(sizes, output: str, isolate: bool = True) -> dict:
    report = {
        "benchmark": "push_scale",
        "description": "three-way delivery-mode comparison (ISSUE 8)",
        "python": sys.version.split()[0],
        "seed": SEED,
        "entries": [],
    }
    for size in sizes:
        for mode in MODES:
            print(f"[{mode}] {size} applets ...", flush=True)
            entry = run_child(mode, size) if isolate else measure_delivery(mode, size)
            report["entries"].append(entry)
            print(
                f"  t2a_quartiles={entry['t2a_quartiles']} "
                f"requests={entry['requests_in_window']} "
                f"run_seconds={entry['run_seconds']}",
                flush=True,
            )
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {output}")
    return report


# -- CI gate --------------------------------------------------------------------


def check_report(path: str) -> int:
    """Validate the committed JSON: fields, sizes, and the §6 headline."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench-push: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    errors = []
    entries = report.get("entries", [])
    by_key = {}
    for entry in entries:
        for field in ENTRY_FIELDS:
            if field not in entry:
                errors.append(
                    f"entry {entry.get('mode')}@{entry.get('n_applets')} "
                    f"missing {field!r}"
                )
        by_key[(entry.get("mode"), entry.get("n_applets"))] = entry
    for size in FLEET_SIZES:
        for mode in MODES:
            if (mode, size) not in by_key:
                errors.append(f"missing entry {mode}@{size}")
    if not errors:
        poll = by_key[("poll", HEADLINE_SIZE)]
        push = by_key[("push", HEADLINE_SIZE)]
        poll_median = poll["t2a_quartiles"][1]
        push_median = push["t2a_quartiles"][1]
        if push_median >= PUSH_MEDIAN_MAX:
            errors.append(
                f"push T2A median {push_median}s >= {PUSH_MEDIAN_MAX}s at "
                f"{HEADLINE_SIZE} applets"
            )
        if poll_median <= POLL_MEDIAN_MIN:
            errors.append(
                f"poll T2A median {poll_median}s <= {POLL_MEDIAN_MIN}s at "
                f"{HEADLINE_SIZE} applets (comparison baseline off)"
            )
        reduction = poll["requests_in_window"] / max(1, push["requests_in_window"])
        if reduction < REQUEST_REDUCTION_MIN:
            errors.append(
                f"request-load reduction {reduction:.2f}x < "
                f"{REQUEST_REDUCTION_MIN}x at {HEADLINE_SIZE} applets"
            )
    for err in errors:
        print(f"bench-push: {err}", file=sys.stderr)
    if not errors:
        print(
            f"bench-push: {path} ok (push median {push_median}s vs poll "
            f"{poll_median}s at {HEADLINE_SIZE} applets, request load "
            f"cut {reduction:.1f}x)"
        )
    return 1 if errors else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, in-process (smoke test)"
    )
    parser.add_argument(
        "--check", metavar="FILE", help="validate a committed report's fields"
    )
    parser.add_argument("--child", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        spec = json.loads(args.child)
        print(json.dumps(measure_delivery(spec["mode"], spec["n_applets"])))
        return 0
    if args.check:
        return check_report(args.check)
    sizes = QUICK_SIZES if args.quick else FLEET_SIZES
    run_full(sizes, args.output, isolate=not args.quick)
    return 0


# -- pytest-benchmark entry point ------------------------------------------------


def run_bench():
    return {
        mode: run_fleet_experiment(
            n_applets=150, publications=4, seed=5, delivery_mode=mode
        )
        for mode in MODES
    }


def test_bench_scalability_push(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print("\n§6 scalability — 150-applet fleet on one popular trigger")
    print(render_table(
        ["mode", "median T2A (s)", "engine requests", "peak polls/s", "peak/mean"],
        [
            [name, round(r.median_latency(), 2), r.polls_sent,
             r.peak_polls_per_second(), round(r.burstiness(), 1)]
            for name, r in results.items()
        ],
    ))
    print("-> hints win latency but turn every publication into an "
          "instantaneous fleet-wide poll spike (the §6 concern); the push "
          "contract keeps the latency win while batch coalescing absorbs "
          "the spike and drops the request load outright")

    poll, hint, push = results["poll"], results["hint"], results["push"]
    # every applet executed on every publication under all three modes
    assert poll.actions_executed == hint.actions_executed == 600
    assert push.actions_executed == 600
    # latency: hint and push are orders of magnitude faster than polling
    assert hint.median_latency() < 1.0
    assert push.median_latency() < 1.0
    assert poll.median_latency() > 30.0
    # load: the hint spike approaches the whole fleet size; push batches
    # it away and cuts total engine-originated requests at least 2x
    assert hint.peak_polls_per_second() > 100
    assert poll.peak_polls_per_second() < 30
    assert push.peak_polls_per_second() < 30
    assert hint.burstiness() > 5 * poll.burstiness()
    assert poll.polls_sent >= 2 * push.polls_sent


if __name__ == "__main__":
    sys.exit(main())
