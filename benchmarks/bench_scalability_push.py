"""§6 scalability: why IFTTT hasn't fully adopted push.

"if all trigger services perform push, the incurred instantaneous
workload may be too high: IoT workload is known to be highly bursty; for
IFTTT it is likely also the case (consider popular applets such as
'update wallpaper with new NASA photo')".

The bench runs a 150-applet fleet sharing one popular trigger under both
regimes and reports the latency / instantaneous-load trade-off: polling
smears requests across each applet's schedule (low peak rate, minutes of
latency); push delivers sub-second latency but every publication slams
the engine and trigger service with the whole fleet's polls at once.
"""

from repro.reporting import render_table
from repro.testbed.workload import run_fleet_experiment


def run_bench():
    return {
        "poll": run_fleet_experiment(n_applets=150, push=False, publications=4, seed=5),
        "push": run_fleet_experiment(n_applets=150, push=True, publications=4, seed=5),
    }


def test_bench_scalability_push(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print("\n§6 scalability — 150-applet fleet on one popular trigger")
    print(render_table(
        ["regime", "median latency (s)", "peak polls/s", "mean polls/s", "peak/mean"],
        [
            [name, round(r.median_latency(), 2), r.peak_polls_per_second(),
             round(r.mean_polls_per_second(), 2), round(r.burstiness(), 1)]
            for name, r in results.items()
        ],
    ))
    print("-> push wins latency by orders of magnitude but turns every "
          "publication into an instantaneous fleet-wide request spike, "
          "exactly the §6 concern")

    poll, push = results["poll"], results["push"]
    # every applet executed on every publication under both regimes
    assert poll.actions_executed == push.actions_executed == 150 * 4
    # latency: push is orders of magnitude faster
    assert push.median_latency() < 1.0
    assert poll.median_latency() > 30.0
    # load: push's instantaneous spike approaches the whole fleet size
    assert push.peak_polls_per_second() > 100
    assert poll.peak_polls_per_second() < 30
    assert push.burstiness() > 5 * poll.burstiness()
