"""Table 2: our dataset vs the dataset of Ur et al. [28].

The paper's point: their campaign collected a much larger corpus (320K vs
224K applets, 408 vs 220 channels, ...) over 25 weekly snapshots instead
of one.  We print both columns; at bench scale the applet-side counts are
scaled by 0.1, so the structural comparisons (channels, triggers, actions,
snapshot count) carry the assertion weight.
"""

from repro.analysis import table2, user_contribution_stats
from repro.reporting import render_table


def test_bench_table2(benchmark, bench_store):
    contributors = user_contribution_stats(bench_store.last()).user_channels
    result = benchmark(table2, bench_store, contributors)

    ours, theirs = result["ours"], result["ur_et_al"]
    print("\nTable 2 — Our dataset vs Ur et al. [28] (reproduced)")
    print(render_table(
        ["Aspect", "Ours", "Ur et al."],
        [[key, str(ours[key]), str(theirs[key])] for key in ours],
    ))

    assert ours["channels"] > theirs["channels"]
    assert ours["triggers"] > theirs["triggers"]
    assert ours["actions"] > theirs["actions"]
    assert ours["snapshots"] > theirs["snapshots"]
