#!/usr/bin/env python
"""Fleet-scale benchmark: the PR-over-PR perf trajectory for poll dispatch.

Produces ``BENCH_fleet_scale.json`` with three sections:

``fleet``
    The end-to-end fleet workload (:class:`~repro.testbed.workload.FleetWorld`,
    lean configuration) at 10K / 100K / 1M applets under the heap
    scheduler: simulator events/sec, polls/sec, and peak RSS.  Each size
    runs in its own subprocess so ``ru_maxrss`` (which is monotone over a
    process lifetime) and GC state cannot bleed between measurements.

``dispatch``
    The dispatch layer in isolation at 100K applets — the production
    scheduler classes driven with a minimal poll body, so the numbers
    measure scheduling cost rather than the (mode-independent) simulated
    HTTP exchange.  Two scenarios:

    * ``steady``: lognormal production intervals, reschedule per poll —
      the paper's §4 polling cadence.
    * ``hint_churn``: every poll cycle is rescheduled ``CHURN`` times
      before it fires, the shape realtime-hint storms impose (§6's
      bursty-IoT load model).  Under the seed's per-applet timers each
      reschedule allocates a fresh Event and leaves the dead one churning
      through a 100K-entry simulator heap; the heap scheduler's lazy
      cancellation makes it an O(1) generation bump.

    ``speedup_vs_timers`` (the acceptance headline) is the hint-churn
    ratio; per-scenario ratios are reported alongside.

``snapshot_gate``
    Determinism guard at 10K applets: the fully instrumented fleet
    workload run under both dispatch modes must produce *byte-identical*
    :func:`~repro.obs.metrics.dispatch_invariant_snapshot` blobs and
    identical action counts.  ``make bench-scale`` re-runs this gate (and
    validates the committed JSON's fields) in CI.

``parallel``
    Epoch-barriered sharded stepping
    (:class:`~repro.testbed.workload.ShardedFleetWorld` on a
    :class:`~repro.simcore.parallel.ShardedSimulator`, 4 shards) at the
    same 10K / 100K / 1M sizes: serial stepping (``jobs=1``) vs threaded
    stepping (``--jobs N``, default 4), with identical poll/event counts
    asserted between the two.  ``cpu_cores`` is recorded alongside the
    measured speedup because the stepping workers are *threads*: under
    the CPython GIL on few cores the measured ratio is ≈1x and the column
    documents exactly that — the determinism contract, not the wall
    clock, is what the architecture guarantees on this hardware (see
    docs/PERFORMANCE.md).

Usage::

    python benchmarks/bench_fleet_scale.py                  # full run, writes JSON
    python benchmarks/bench_fleet_scale.py --quick          # small sizes, smoke test
    python benchmarks/bench_fleet_scale.py --jobs 8         # threads for `parallel`
    python benchmarks/bench_fleet_scale.py --gate-only      # CI: snapshot gate only
    python benchmarks/bench_fleet_scale.py --check FILE     # CI: validate JSON fields
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_fleet_scale.json")
FLEET_SIZES = (10_000, 100_000, 1_000_000)
QUICK_SIZES = (1_000, 2_000)
DISPATCH_N = 100_000
CHURN = 4
SEED = 7
PARALLEL_SHARDS = 4
DEFAULT_JOBS = 4

#: Fields the CI gate requires of every committed ``fleet`` entry.
FLEET_FIELDS = ("n_applets", "events_per_sec", "polls_per_sec", "peak_rss_mb")


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set size in MiB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# -- child measurements (each runs in its own subprocess) -----------------------


def measure_fleet(n_applets: int, horizon: float) -> dict:
    """End-to-end fleet workload under the heap scheduler, lean config."""
    from repro.engine.config import EngineConfig
    from repro.testbed.workload import FleetWorld

    config = EngineConfig(initial_poll_jitter=120.0, poll_dispatch="heap")
    t0 = time.perf_counter()
    world = FleetWorld(
        n_applets,
        engine_config=config,
        seed=SEED,
        with_trace=False,
        with_metrics=False,
        shared_user=True,
        warmup=False,
    )
    t1 = time.perf_counter()
    world.sim.run_until(horizon)
    t2 = time.perf_counter()
    events = world.sim.fired_count
    polls = world.engine.polls_sent
    return {
        "n_applets": n_applets,
        "horizon_sim_seconds": horizon,
        "setup_seconds": round(t1 - t0, 3),
        "run_seconds": round(t2 - t1, 3),
        "sim_events_fired": events,
        "polls_sent": polls,
        "events_per_sec": round(events / (t2 - t1), 1),
        "polls_per_sec": round(polls / (t2 - t1), 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "scheduler": world.engine.poll_dispatch_stats(),
    }


class _DispatchHarness:
    """Minimal engine stand-in: the real schedulers, a counter for a poll body."""

    def __init__(self, mode: str, n: int) -> None:
        from repro.engine.applet import ActionRef, Applet, TriggerRef
        from repro.engine.engine import _AppletRuntime
        from repro.engine.poller import ProductionPollingPolicy
        from repro.engine.scheduler import make_poll_scheduler
        from repro.simcore.rng import Rng
        from repro.simcore.simulator import Simulator

        self.sim = Simulator()
        self.rng = Rng(seed=SEED, name="dispatch")
        self._scheduler = make_poll_scheduler(self, mode)
        self._applets = {}
        self.polls = 0
        self.churn = 0
        proto = ProductionPollingPolicy()
        trig = TriggerRef("svc", "t")
        act = ActionRef("svc", "a", {})
        self.runtimes = []
        for i in range(n):
            applet = Applet(
                applet_id=i, name=f"a{i}", user="u", trigger=trig, action=act
            )
            runtime = _AppletRuntime(applet=applet, policy=proto.clone())
            self.runtimes.append(runtime)
            self._applets[i] = runtime

    def _poll(self, runtime) -> None:
        self.polls += 1
        delay = runtime.policy.next_interval(self.rng)
        self._scheduler.schedule(runtime, delay)
        for _ in range(self.churn):
            # a realtime hint pulls the pending poll earlier: the seed
            # baseline cancels the timer and schedules a fresh Event
            delay *= 0.5
            self._scheduler.schedule(runtime, delay)


def measure_dispatch(mode: str, scenario: str, n: int, horizon: float) -> dict:
    """Dispatch-layer throughput for one (mode, scenario) pair."""
    harness = _DispatchHarness(mode, n)
    harness.churn = CHURN if scenario == "hint_churn" else 0
    for runtime in harness.runtimes:
        harness._scheduler.schedule(
            runtime, harness.rng.uniform(0, 300.0), initial=True
        )
    t0 = time.perf_counter()
    harness.sim.run_until(horizon)
    elapsed = time.perf_counter() - t0
    return {
        "mode": mode,
        "scenario": scenario,
        "n_applets": n,
        "horizon_sim_seconds": horizon,
        "polls": harness.polls,
        "run_seconds": round(elapsed, 3),
        "polls_per_sec": round(harness.polls / elapsed, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def measure_parallel(n_applets: int, horizon: float, num_shards: int, jobs: int) -> dict:
    """The sharded fleet workload stepped with ``jobs`` worker threads."""
    from repro.engine.config import EngineConfig
    from repro.testbed.workload import ShardedFleetWorld

    config = EngineConfig(initial_poll_jitter=120.0, poll_dispatch="heap")
    t0 = time.perf_counter()
    world = ShardedFleetWorld(
        n_applets,
        num_shards=num_shards,
        jobs=jobs,
        engine_config=config,
        seed=SEED,
        with_metrics=False,
        warmup=False,
    )
    t1 = time.perf_counter()
    world.run_until(horizon)
    t2 = time.perf_counter()
    world.shutdown()
    events = world.stepper.fired_count
    polls = world.fleet.stats()["polls_sent"]
    return {
        "n_applets": n_applets,
        "num_shards": num_shards,
        "jobs": jobs,
        "horizon_sim_seconds": horizon,
        "setup_seconds": round(t1 - t0, 3),
        "run_seconds": round(t2 - t1, 3),
        "sim_events_fired": events,
        "polls_sent": polls,
        "epochs": world.stepper.epochs,
        "events_per_sec": round(events / (t2 - t1), 1),
        "polls_per_sec": round(polls / (t2 - t1), 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def measure_snapshot_gate(n_applets: int) -> dict:
    """Both dispatch modes over the instrumented fleet; snapshots must match."""
    import hashlib

    from repro.engine.config import EngineConfig
    from repro.obs.metrics import dispatch_invariant_snapshot
    from repro.testbed.workload import FleetWorld

    outcomes = {}
    for mode in ("heap", "timers"):
        config = EngineConfig(initial_poll_jitter=120.0, poll_dispatch=mode)
        world = FleetWorld(n_applets, engine_config=config, seed=11)
        result = world.run_publications(publications=2, spacing=300.0)
        blob = json.dumps(
            dispatch_invariant_snapshot(world.metrics), sort_keys=True
        ).encode()
        outcomes[mode] = {
            "snapshot_sha256": hashlib.sha256(blob).hexdigest(),
            "actions_executed": result.actions_executed,
            "polls_sent": world.engine.polls_sent,
        }
    return {
        "n_applets": n_applets,
        "identical": (
            outcomes["heap"]["snapshot_sha256"]
            == outcomes["timers"]["snapshot_sha256"]
            and outcomes["heap"]["actions_executed"]
            == outcomes["timers"]["actions_executed"]
        ),
        **outcomes,
    }


# -- orchestration --------------------------------------------------------------

CHILD_MEASURES = {
    "fleet": measure_fleet,
    "dispatch": measure_dispatch,
    "parallel": measure_parallel,
    "snapshot_gate": measure_snapshot_gate,
}


def run_child(measure: str, *args) -> dict:
    """Re-exec this script to run one measurement in a fresh process."""
    payload = json.dumps({"measure": measure, "args": list(args)})
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", payload],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {measure}{args} failed:\n{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run_full(sizes, output: str, isolate: bool = True, jobs: int = DEFAULT_JOBS) -> dict:
    def run(measure, *args):
        if isolate:
            return run_child(measure, *args)
        return CHILD_MEASURES[measure](*args)

    report = {
        "benchmark": "fleet_scale",
        "description": "poll-dispatch hot path at fleet scale (ISSUE 6)",
        "python": sys.version.split()[0],
        "seed": SEED,
        "fleet": [],
        "dispatch": {"n_applets": DISPATCH_N, "churn": CHURN, "scenarios": {}},
        "parallel": {
            "num_shards": PARALLEL_SHARDS,
            "jobs": jobs,
            "cpu_cores": os.cpu_count(),
            "worker_model": "threads (CPython GIL applies)",
            "sizes": [],
        },
    }

    for size in sizes:
        print(f"[fleet] {size} applets ...", flush=True)
        entry = run("fleet", size, 250.0)
        report["fleet"].append(entry)
        print(
            f"  events/sec={entry['events_per_sec']} "
            f"polls/sec={entry['polls_per_sec']} "
            f"peak_rss_mb={entry['peak_rss_mb']}",
            flush=True,
        )

    for size in sizes:
        print(f"[parallel] {size} applets, serial vs jobs={jobs} ...", flush=True)
        serial = run("parallel", size, 250.0, PARALLEL_SHARDS, 1)
        threaded = run("parallel", size, 250.0, PARALLEL_SHARDS, jobs)
        speedup = round(
            threaded["events_per_sec"] / serial["events_per_sec"], 2
        )
        report["parallel"]["sizes"].append({
            "n_applets": size,
            "serial": serial,
            "parallel": threaded,
            "speedup": speedup,
            # the serial/parallel determinism contract, asserted on the
            # observable workload counts (the full byte-level snapshot
            # gate runs in `make parallel-check`)
            "identical_counts": (
                serial["sim_events_fired"] == threaded["sim_events_fired"]
                and serial["polls_sent"] == threaded["polls_sent"]
            ),
        })
        print(
            f"  serial={serial['events_per_sec']} ev/s "
            f"jobs={jobs}: {threaded['events_per_sec']} ev/s "
            f"speedup={speedup}x identical_counts="
            f"{report['parallel']['sizes'][-1]['identical_counts']}",
            flush=True,
        )

    dispatch_n = DISPATCH_N if not (set(sizes) == set(QUICK_SIZES)) else max(sizes)
    report["dispatch"]["n_applets"] = dispatch_n
    # hint_churn runs past the 0-300s poll-start spread: the timer
    # baseline only reaches its degraded steady state (a sim heap full
    # of cancelled events) once the whole fleet is churning.
    for scenario, horizon in (("steady", 300.0), ("hint_churn", 400.0)):
        pair = {}
        for mode in ("heap", "timers"):
            print(f"[dispatch] {scenario}/{mode} at {dispatch_n} ...", flush=True)
            pair[mode] = run("dispatch", mode, scenario, dispatch_n, horizon)
        speedup = round(
            pair["heap"]["polls_per_sec"] / pair["timers"]["polls_per_sec"], 2
        )
        report["dispatch"]["scenarios"][scenario] = {**pair, "speedup": speedup}
        print(f"  speedup {scenario}: {speedup}x", flush=True)
    report["speedup_vs_timers"] = report["dispatch"]["scenarios"]["hint_churn"][
        "speedup"
    ]

    gate_n = 10_000 if not (set(sizes) == set(QUICK_SIZES)) else min(sizes)
    print(f"[snapshot_gate] {gate_n} applets, heap vs timers ...", flush=True)
    report["snapshot_gate"] = run("snapshot_gate", gate_n)
    print(f"  identical: {report['snapshot_gate']['identical']}", flush=True)

    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {output}")
    return report


# -- CI gate --------------------------------------------------------------------


def check_report(path: str) -> int:
    """Validate the committed JSON: required fields at required sizes."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench-scale: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    errors = []
    sizes = {entry.get("n_applets") for entry in report.get("fleet", [])}
    for required in FLEET_SIZES:
        if required not in sizes:
            errors.append(f"fleet section missing size {required}")
    for entry in report.get("fleet", []):
        for field in FLEET_FIELDS:
            if field not in entry:
                errors.append(f"fleet[{entry.get('n_applets')}] missing {field!r}")
    if "speedup_vs_timers" not in report:
        errors.append("missing top-level 'speedup_vs_timers'")
    gate = report.get("snapshot_gate", {})
    if gate.get("identical") is not True:
        errors.append("snapshot_gate.identical is not true")
    parallel = report.get("parallel", {})
    if "cpu_cores" not in parallel:
        errors.append("parallel section missing 'cpu_cores'")
    parallel_sizes = {
        entry.get("n_applets") for entry in parallel.get("sizes", [])
    }
    for required in FLEET_SIZES:
        if required not in parallel_sizes:
            errors.append(f"parallel section missing size {required}")
    for entry in parallel.get("sizes", []):
        size = entry.get("n_applets")
        for field in ("serial", "parallel", "speedup"):
            if field not in entry:
                errors.append(f"parallel[{size}] missing {field!r}")
        if entry.get("identical_counts") is not True:
            errors.append(
                f"parallel[{size}] serial/parallel counts diverged "
                "(identical_counts is not true)"
            )
    for err in errors:
        print(f"bench-scale: {err}", file=sys.stderr)
    if not errors:
        print(
            f"bench-scale: {path} ok "
            f"(sizes={sorted(sizes)}, speedup_vs_timers={report['speedup_vs_timers']}x, "
            f"parallel sizes={sorted(parallel_sizes)} on "
            f"{parallel['cpu_cores']} core(s))"
        )
    return 1 if errors else 0


def run_gate(n_applets: int = 10_000) -> int:
    """Re-run the determinism gate live (CI): modes must agree at 10K."""
    outcome = measure_snapshot_gate(n_applets)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    if not outcome["identical"]:
        print(
            "bench-scale: deterministic-snapshot gate DIVERGED between "
            "heap and timers dispatch",
            file=sys.stderr,
        )
        return 1
    print(f"bench-scale: snapshot gate ok at {n_applets} applets")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, in-process (smoke test)"
    )
    parser.add_argument(
        "--gate-only",
        action="store_true",
        help="run only the 10K deterministic-snapshot gate (CI)",
    )
    parser.add_argument(
        "--gate-size", type=int, default=10_000, help="applets for --gate-only"
    )
    parser.add_argument(
        "--check", metavar="FILE", help="validate a committed report's fields"
    )
    parser.add_argument(
        "--jobs", type=int, default=DEFAULT_JOBS, metavar="N",
        help="worker threads for the parallel-stepping comparison "
             f"(default {DEFAULT_JOBS})",
    )
    parser.add_argument("--child", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        spec = json.loads(args.child)
        result = CHILD_MEASURES[spec["measure"]](*spec["args"])
        print(json.dumps(result))
        return 0
    if args.check:
        return check_report(args.check)
    if args.gate_only:
        return run_gate(args.gate_size)
    sizes = QUICK_SIZES if args.quick else FLEET_SIZES
    report = run_full(sizes, args.output, isolate=not args.quick, jobs=args.jobs)
    ok = report["snapshot_gate"]["identical"] and all(
        entry["identical_counts"] for entry in report["parallel"]["sizes"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
