"""Figure 6: sequential applet execution — clustered actions.

Paper: triggering every 5 seconds, actions arrive in *clusters* (one per
poll, up to k=50 buffered events each), with cluster times like 119/247/
351 s; under load the gap between clusters inflated to 14 minutes.
"""

from repro.testbed.sequential import run_sequential_experiment, run_sequential_extreme


def run_experiment():
    normal = run_sequential_experiment(applet_key="A4", triggers=30, interval=5.0, seed=7)
    extreme = run_sequential_extreme(seed=41)
    return normal, extreme


def test_bench_fig6(benchmark):
    normal, extreme = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print("\nFigure 6 — Sequential execution (reproduced)")
    print(f"triggers: {len(normal.trigger_times)} every 5 s")
    print(f"action clusters at t = "
          + ", ".join(f"{cluster[0]:.0f}s(x{len(cluster)})" for cluster in normal.clusters))
    print("paper (top): clusters at ~119 s, 247 s, 351 s")
    print(f"extreme case: max inter-cluster gap = {extreme.max_inter_cluster_gap:.0f} s "
          "(paper: ~14 min)")

    # every trigger eventually acted on, but compressed into fewer bursts
    assert len(normal.action_times) == len(normal.trigger_times)
    assert len(normal.clusters) < len(normal.trigger_times)
    # sequential mapping preserved: cluster sizes sum to the trigger count
    assert sum(normal.cluster_sizes) == len(normal.trigger_times)
    # the loaded engine shows a multi-minute inter-cluster gap
    assert extreme.max_inter_cluster_gap > 250.0
