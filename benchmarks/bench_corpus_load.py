"""Engine load under a realistic ecosystem applet mix.

Bridges the §3 corpus into the §4 engine: a popularity-weighted sample of
real-mix applets runs under production polling for a simulated hour, and
the bench reports where the poll volume goes — by trigger-service
category — plus the execution latency of injected events.  This connects
the two halves of the paper: the measured ecosystem shape *is* the
engine's load profile.
"""

from collections import Counter

from repro.ecosystem import EcosystemGenerator, EcosystemParams
from repro.ecosystem.categories import category
from repro.reporting import render_table, summarize_latencies
from repro.testbed.corpus_bridge import build_corpus_world


def run_bench():
    corpus = EcosystemGenerator(EcosystemParams(scale=0.02, seed=42)).generate()
    world = build_corpus_world(corpus, n_applets=120, seed=17)
    world.run_for(180.0)  # registration polls settle

    start_polls = world.engine.polls_sent
    start_time = world.sim.now
    # inject one upstream event for a subset of sampled applets
    latencies = []
    for index in range(0, 60, 3):
        action_service = world.services[world.corpus_applets[index].action_service_slug]
        before = len(action_service.executed_actions)
        fired_at = world.sim.now
        world.fire_trigger(index, payload=index)
        world.run_for(400.0)
        if len(action_service.executed_actions) > before:
            # approximate: action executed within this window
            executions = world.engine.trace.query(
                kind="engine_action_sent", since=fired_at,
                applet_id=world.applets[index].applet_id,
            )
            if executions:
                latencies.append(executions[0].time - fired_at)
    elapsed_hours = (world.sim.now - start_time) / 3600.0
    polls_per_hour = (world.engine.polls_sent - start_polls) / elapsed_hours

    by_category = Counter()
    for record in world.corpus_applets:
        cat = corpus.service(record.trigger_service_slug).category_index
        by_category[cat] += 1
    return world, latencies, polls_per_hour, by_category, corpus


def test_bench_corpus_load(benchmark):
    world, latencies, polls_per_hour, by_category, corpus = benchmark.pedantic(
        run_bench, rounds=1, iterations=1
    )

    print("\nEngine load under a realistic 120-applet corpus mix")
    print(f"poll volume: {polls_per_hour:.0f} polls/hour "
          f"(~{polls_per_hour / 120:.1f} per applet per hour)")
    stats = summarize_latencies(latencies)
    print(f"event-to-action latency: p50={stats['p50']:.1f}s max={stats['max']:.1f}s "
          "(the §4 polling residual, on the real mix)")
    print(render_table(
        ["trigger category", "sampled applets"],
        [[f"{index}. {category(index).name[:35]}", count]
         for index, count in by_category.most_common()],
    ))

    # production polling: each applet polls every ~2.5 min on average
    assert 120 * 15 <= polls_per_hour <= 120 * 40
    # the popularity-weighted mix leans on the hot trigger categories
    hot = {7, 10, 12, 9, 5, 1, 8}
    hot_count = sum(count for index, count in by_category.items() if index in hot)
    assert hot_count > 0.7 * 120
    # latency is the familiar poll residual
    assert 20 <= stats["p50"] <= 150
