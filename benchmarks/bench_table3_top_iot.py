"""Table 3: top trigger services, action services, triggers, and actions
involving IoT.

Paper: Alexa is the top IoT trigger service (1.2M adds) with "Say a
phrase" the top trigger; Philips Hue is the top action service (1.2M)
with "Turn on lights" the top action, followed by LIFX / Nest / Harmony.
"""

from repro.analysis import table3
from repro.reporting import render_table


def test_bench_table3(benchmark, bench_snapshot):
    result = benchmark(table3, bench_snapshot)

    print("\nTable 3 — Top IoT entities by add count (reproduced)")
    print(render_table(
        ["Top trigger services", "adds"],
        [[name, count] for name, count in result.top_trigger_services],
    ))
    print(render_table(
        ["Top action services", "adds"],
        [[name, count] for name, count in result.top_action_services],
    ))
    print(render_table(
        ["Top triggers", "service", "adds"],
        [list(entry) for entry in result.top_triggers],
    ))
    print(render_table(
        ["Top actions", "service", "adds"],
        [list(entry) for entry in result.top_actions],
    ))

    assert result.top_trigger_services[0][0] == "Amazon Alexa"
    assert result.top_action_services[0][0] == "Philips Hue"
    assert result.top_triggers[0][0] == "Say a phrase"
    trigger_service_names = [name for name, _ in result.top_trigger_services]
    assert "Fitbit" in trigger_service_names  # paper's #3
    action_service_names = [name for name, _ in result.top_action_services]
    # the paper's runner-up action services populate the list (sampling
    # noise can reorder the sub-1M tail, so membership is the claim)
    assert {"LIFX", "Nest Thermostat", "Harmony Hub"} & set(action_service_names)
    # Alexa dominance factor vs the #2 trigger service (paper: 1.2M vs 0.2M)
    assert result.top_trigger_services[0][1] > 3 * result.top_trigger_services[1][1]
