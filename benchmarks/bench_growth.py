"""§3.2 growth paragraph: the ecosystem keeps growing steadily.

Paper: between 11/24/2016 and 4/1/2017 services grew 11%, triggers 31%,
actions 27%, and applet add count 19%, across 25 weekly snapshots.
"""

from repro.analysis import growth_percentages, weekly_series
from repro.analysis.growthstats import monotonically_growing
from repro.reporting import render_table


def test_bench_growth(benchmark, bench_store):
    growth = benchmark(growth_percentages, bench_store)

    paper = {"services": 11.0, "triggers": 31.0, "actions": 27.0,
             "add_count": 19.0, "applets": None}
    print("\n§3.2 growth, first vs last snapshot (reproduced)")
    print(render_table(
        ["Quantity", "Measured %", "Paper %"],
        [[key, round(growth[key], 1), paper.get(key) or "-"] for key in growth],
    ))
    print("weekly applet counts:", weekly_series(bench_store, "applets"))

    assert abs(growth["services"] - 11.0) < 5.0
    assert abs(growth["triggers"] - 31.0) < 8.0
    assert abs(growth["actions"] - 27.0) < 8.0
    assert abs(growth["add_count"] - 19.0) < 5.0
    assert monotonically_growing(bench_store, "applets")
