"""Figure 4: T2A latency CDFs for applets A1-A4 vs A5-A7.

Paper: A1-A4 (poll-bound) have 25th/50th/75th percentiles of 58/84/122 s
with a tail to ~15 minutes; A5-A7 (Alexa-triggered, realtime hints
honoured) complete in seconds.  The bench runs the full experiment (paper
used 50 runs per applet over three days; we use 20 per applet) and prints
both groups' latency summaries and CDF landmarks.
"""

from repro.reporting import cdf_at, summarize_latencies
from repro.testbed.t2a import run_official_t2a


def run_experiment():
    return run_official_t2a(runs=20, seed=7, spacing=150.0)


def test_bench_fig4(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    poll_bound = results.group("A1-A4")
    alexa = results.group("A5-A7")
    print("\nFigure 4 — T2A latency, official services (reproduced)")
    for label, samples in (("A1-A4", poll_bound), ("A5-A7", alexa)):
        stats = summarize_latencies(samples)
        print(f"{label}: n={int(stats['n'])} p25={stats['p25']:.1f}s "
              f"p50={stats['p50']:.1f}s p75={stats['p75']:.1f}s max={stats['max']:.1f}s")
    print(f"paper A1-A4: p25=58s p50=84s p75=122s max~900s; A5-A7: seconds")
    print(f"CDF(A1-A4 <= 60s) = {cdf_at(poll_bound, 60.0):.2f}")
    print(f"CDF(A5-A7 <= 5s)  = {cdf_at(alexa, 5.0):.2f}")

    q25, q50, q75 = results.group_quartiles("A1-A4")
    assert 25 <= q25 <= 90         # paper 58
    assert 50 <= q50 <= 125        # paper 84
    assert 85 <= q75 <= 175        # paper 122
    assert results.maximum("A1-A4") > 250  # long tail
    assert results.group_quartiles("A5-A7")[1] < 5.0
