"""Figure 7: concurrent execution of two applets sharing one trigger.

Paper: the T2A latency *difference* between "turn on Hue light when email
arrives" and "activate WeMo switch when email arrives" ranges from −60 to
+140 s across 20 tests — IFTTT cannot guarantee simultaneous execution,
because each applet polls independently and poll responses are not shared.
"""

from repro.reporting import cdf_points
from repro.testbed.concurrent import run_concurrent_experiment


def run_experiment():
    return run_concurrent_experiment(runs=20, seed=13)


def test_bench_fig7(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    diffs = result.differences
    print("\nFigure 7 — T2A latency difference between same-trigger applets (reproduced)")
    print("CDF points (diff seconds, fraction):")
    for value, fraction in cdf_points(diffs):
        print(f"  {value:8.1f}  {fraction:.2f}")
    print(f"range: {min(diffs):.1f} .. {max(diffs):.1f} s (paper: -60 .. +140 s)")

    assert len(diffs) == 20
    assert result.spread > 60.0           # two-minute-scale divergence
    assert min(diffs) < 0 < max(diffs)    # neither applet always wins
