"""Table 5: the execution timeline of applet A2 under scenario E2.

Paper timeline: trigger at t=0; proxy observes at 0.04; service confirms
by 0.16; the engine's poll arrives at 81.1; action request 82.1; proxy
relays at 83.0; device confirmed at 83.8.  The reproduction asserts the
same structure: sub-second proxy/service path, a poll-dominated wait, and
a sub-3-second poll-to-device completion.
"""

from repro.testbed import capture_timeline
from repro.testbed.timeline import format_timeline


def test_bench_table5(benchmark):
    entries = benchmark.pedantic(capture_timeline, kwargs={"seed": 21}, rounds=1, iterations=1)

    print("\nTable 5 — Applet A2 execution timeline under E2 (reproduced)")
    print(format_timeline(entries))

    times = {entry.event: entry.t for entry in entries}
    proxy_observed = next(t for event, t in times.items() if "observes the trigger" in event)
    confirmed = next(t for event, t in times.items() if "confirmation" in event)
    polled = next(t for event, t in times.items() if "polls trigger service" in event)
    done = entries[-1].t

    assert proxy_observed < 0.5          # paper: 0.04 s
    assert confirmed < 1.0               # paper: 0.16 s
    assert polled > 10.0                 # paper: 81.1 s — the dominant wait
    assert done - polled < 3.0           # paper: 83.8 - 81.1 = 2.7 s
