"""Table 1: breakdown of IFTTT partner services.

Paper row format: category | % services | trigger AC % | action AC %.
Reproduction: keyword-classify the crawled services, aggregate applet add
counts onto trigger/action categories, print the same 14 rows, and check
the headline claims (51.7% IoT services; IoT shares small on both sides).
"""

from repro.analysis import table1
from repro.ecosystem.categories import CATEGORIES
from repro.reporting import render_table


def test_bench_table1(benchmark, bench_snapshot):
    rows = benchmark(table1, bench_snapshot)

    print("\nTable 1 — Breakdown of IFTTT partner services (reproduced)")
    print(render_table(
        ["#", "Category", "%Services", "Trigger AC%", "Action AC%",
         "paper %Svc", "paper T%", "paper A%"],
        [
            [row.category_index, row.category_name[:40], row.pct_services,
             row.trigger_ac_pct, row.action_ac_pct,
             cat.pct_services, cat.trigger_ac_pct, cat.action_ac_pct]
            for row, cat in zip(rows, CATEGORIES)
        ],
    ))

    iot_services = sum(r.pct_services for r in rows if r.category_index <= 4)
    assert abs(iot_services - 51.7) < 3.0  # "More than half of services are IoT"
    for row, cat in zip(rows, CATEGORIES):
        assert abs(row.pct_services - cat.pct_services) < 3.0
        assert abs(row.trigger_ac_pct - cat.trigger_ac_pct) < 5.0
        assert abs(row.action_ac_pct - cat.action_ac_pct) < 5.0
