"""§6 ablation: polling-policy design space.

The paper recommends replacing blind long-interval polling with push
(realtime hints) or with smart polling that predicts trigger activity —
"IoT workload is known to be highly bursty", so activity now predicts
activity soon.  This ablation drives applet A2 (E2 wiring) with a bursty
trigger train (bursts of activations separated by long idle gaps) under
four engines:

* production — the measured IFTTT behaviour (long, variable intervals);
* fixed-1s — experiment E3's engine (low latency, maximal poll volume);
* adaptive — §6's "poll smartly" (EWMA of trigger activity);
* push — realtime hints honoured for every service.
"""

from repro.engine import AdaptivePollingPolicy, EngineConfig, FixedPollingPolicy
from repro.reporting import render_table, summarize_latencies
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.applets import E2, applet_spec


def measure(engine_config, seed=17, custom_realtime=False, bursts=3, per_burst=8,
            intra_gap=15.0, idle_gap=900.0):
    """Bursty workload: `bursts` trains of `per_burst` activations."""
    config = TestbedConfig(
        seed=seed, engine_config=engine_config, custom_service_realtime=custom_realtime
    )
    testbed = Testbed(config).build()
    controller = TestController(testbed)
    controller.install("A2", variant=E2)
    testbed.run_for(5.0)
    spec = applet_spec("A2")
    start_polls = testbed.engine.polls_sent
    start_time = testbed.sim.now
    latencies = []
    for _ in range(bursts):
        for _ in range(per_burst):
            measurement = controller.run_once(spec, settle=intra_gap)
            if measurement.latency is not None:
                latencies.append(measurement.latency)
        testbed.run_for(idle_gap)
    elapsed_hours = (testbed.sim.now - start_time) / 3600.0
    polls_per_hour = (testbed.engine.polls_sent - start_polls) / max(elapsed_hours, 1e-9)
    return latencies, polls_per_hour


def run_ablation():
    return {
        "production": measure(EngineConfig()),
        "fixed-1s (E3)": measure(EngineConfig(poll_policy=FixedPollingPolicy(1.0))),
        "adaptive (§6)": measure(
            EngineConfig(poll_policy=AdaptivePollingPolicy(fast=5.0, slow=300.0, ewma_alpha=0.6))
        ),
        "push (hints honoured)": measure(
            EngineConfig(realtime_allowlist=None), custom_realtime=True
        ),
    }


def test_bench_ablation_polling(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print("\n§6 ablation — polling policy vs latency and overhead (A2, bursty triggers)")
    rows = []
    for name, (latencies, polls_per_hour) in results.items():
        stats = summarize_latencies(latencies)
        rows.append([name, round(stats["p50"], 2), round(stats["max"], 1),
                     round(polls_per_hour, 1)])
    print(render_table(["engine", "median T2A (s)", "max T2A (s)", "polls/hour"], rows))

    def median(name):
        return summarize_latencies(results[name][0])["p50"]

    def polls(name):
        return results[name][1]

    # E3 and push are both fast; push achieves it with far less polling.
    assert median("fixed-1s (E3)") < 5.0
    assert median("push (hints honoured)") < 5.0
    assert polls("fixed-1s (E3)") > 20 * polls("push (hints honoured)")
    # Adaptive exploits burstiness: better latency than production at a
    # small fraction of E3's poll volume.
    assert median("adaptive (§6)") < 0.7 * median("production")
    assert polls("adaptive (§6)") < 0.25 * polls("fixed-1s (E3)")
