"""Chaos-scenario bench: fault injection + resilience accounting cost.

Runs every built-in chaos scenario (60 s outage during a burst, 40 s
engine↔core partition, flappy-sensor soak) and times the full
inject→retry→shed→dead-letter→heal cycle.  The printed table is the
resilience story in numbers: delivered vs dead-lettered vs silently
lost (always zero), plus how hard the retry and breaker machinery
worked to get there (see docs/ROBUSTNESS.md).
"""

from repro.reporting import render_table
from repro.testbed.chaos import CHAOS_SCENARIOS, run_chaos_scenario


def run_all(seed=7):
    return {name: run_chaos_scenario(name, seed=seed) for name in CHAOS_SCENARIOS}


def test_bench_chaos_scenarios(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nchaos scenarios — delivery accounting under injected faults")
    rows = []
    for name, r in results.items():
        rows.append([
            name, r.events_injected, r.actions_delivered, r.actions_dead_lettered,
            r.actions_silently_lost, r.engine_stats["action_retries"],
            r.engine_stats["polls_shed"] + r.engine_stats["actions_shed"],
            round(r.t2a_max("after"), 2),
        ])
    print(render_table(
        ["scenario", "events", "delivered", "dead-letter", "lost",
         "retries", "shed", "post-heal max T2A (s)"],
        rows,
    ))

    for name, r in results.items():
        # The headline invariant: chaos may delay or dead-letter, never lose.
        assert r.actions_silently_lost == 0, name
        assert r.events_observed == r.events_injected, name
    outage = results["outage"]
    assert outage.actions_dead_lettered > 0
    assert any(new == "open" for _, _, _, new in outage.breaker_transitions)
    # Post-heal latency is polling-bound again, not retry-bound.
    assert outage.t2a_max("after") <= outage.t2a_max("before") + 5.0
    assert results["partition"].actions_delivered == results["partition"].events_injected
    assert results["flappy"].actions_silently_lost == 0
