"""Micro-benchmarks of the simulation substrate itself.

Unlike the table/figure benches (single-shot experiment reproductions),
these use pytest-benchmark's repeated timing to track the kernel's raw
performance: event throughput, network message delivery, and the cost of
one engine poll cycle.  They guard against performance regressions that
would make the larger experiments slow.
"""

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, IftttEngine, TriggerRef
from repro.engine.oauth import OAuthAuthority
from repro.net import Address, FixedLatency, HttpNode, Network, Node
from repro.services import ActionEndpoint, PartnerService, TriggerEndpoint
from repro.simcore import Rng, Simulator


def test_bench_event_throughput(benchmark):
    """Schedule-and-fire throughput of the bare event heap."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run()
        return sim.fired_count

    fired = benchmark(run)
    assert fired == 10_000


def test_bench_network_delivery(benchmark, bench_metrics):
    """End-to-end message delivery over a 3-hop path."""

    def run():
        sim = Simulator()
        net = Network(sim, Rng(1), metrics=bench_metrics)
        nodes = [net.add_node(Node(Address(f"n{i}.test"))) for i in range(4)]
        for a, b in zip(nodes, nodes[1:]):
            net.connect(a.address, b.address, FixedLatency(0.001))
        for _ in range(1_000):
            nodes[0].send(nodes[3].address, "test", {})
        sim.run()
        return net.messages_delivered

    delivered = benchmark(run)
    assert delivered == 1_000


def test_bench_http_round_trips(benchmark):
    """Request/response pairs through the HTTP layer."""

    def run():
        sim = Simulator()
        net = Network(sim, Rng(2))
        client = net.add_node(HttpNode(Address("c.test")))
        server = net.add_node(HttpNode(Address("s.test")))
        net.connect(client.address, server.address, FixedLatency(0.001))
        server.add_route("POST", "/x", lambda req: {"ok": True})
        done = []
        for _ in range(500):
            client.post(server.address, "/x", on_response=done.append)
        sim.run()
        return len(done)

    completed = benchmark(run)
    assert completed == 500


def test_bench_engine_poll_cycle(benchmark, bench_metrics):
    """Full poll->dedupe->action cycles of the engine."""

    def build():
        sim = Simulator()
        net = Network(sim, Rng(3), metrics=bench_metrics)
        engine = net.add_node(IftttEngine(
            Address("e.cloud"),
            config=EngineConfig(poll_policy=FixedPollingPolicy(1.0), initial_poll_delay=0.1),
            rng=Rng(4), service_time=0.0,
        ))
        service = net.add_node(PartnerService(Address("s.cloud"), slug="s", service_time=0.0))
        net.connect(engine.address, service.address, FixedLatency(0.001))
        service.add_trigger(TriggerEndpoint(slug="t", name="T"))
        hits = []
        service.add_action(ActionEndpoint(slug="a", name="A", executor=hits.append))
        engine.publish_service(service)
        authority = OAuthAuthority("s")
        authority.register_user("u", "pw")
        engine.connect_service("u", service, authority, "pw")
        engine.install_applet(user="u", name="p",
                              trigger=TriggerRef("s", "t"), action=ActionRef("s", "a"))
        return sim, service, hits

    def run():
        sim, service, hits = build()
        sim.run_until(1.0)
        for n in range(200):
            service.ingest_event("t", {"n": n})
            sim.run_until(sim.now + 1.0)
        return len(hits)

    executed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert executed == 200
