"""Table 4: the seven popular applets used in the controlled experiments.

The table itself is the experiment configuration; the bench verifies that
each applet installs against the engine and executes end-to-end on
official services (with a fast poller so the bench is quick), printing
the suite as the paper lists it.
"""

from repro.engine import EngineConfig, FixedPollingPolicy
from repro.reporting import render_table
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.applets import APPLET_SUITE, applet_spec


def run_suite():
    config = TestbedConfig(
        seed=4, engine_config=EngineConfig(poll_policy=FixedPollingPolicy(2.0), initial_poll_delay=0.5)
    )
    testbed = Testbed(config).build()
    controller = TestController(testbed, timeout=60.0)
    results = {}
    for key in sorted(APPLET_SUITE):
        controller.install(key)
        testbed.run_for(5.0)
        measurement = controller.run_once(applet_spec(key))
        results[key] = measurement
    return results


def test_bench_table4(benchmark):
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    print("\nTable 4 — Popular applets used in controlled experiments (reproduced)")
    print(render_table(
        ["Key", "Applet", "Flow", "Executed", "T2A (s)"],
        [
            [key, APPLET_SUITE[key].name[:55], APPLET_SUITE[key].flow,
             str(results[key].completed), round(results[key].latency or -1, 2)]
            for key in sorted(APPLET_SUITE)
        ],
    ))

    assert len(results) == 7
    assert all(m.completed for m in results.values())
