"""Figure 5: T2A latency for A2 under scenarios E1/E2 vs E3.

Paper: E1 (our trigger service) and E2 (our trigger+action services)
"exhibit similar performance", while E3 (our engine polling every 1 s)
"dramatically reduces the T2A latency" — localizing the bottleneck to the
IFTTT engine itself.  20 runs per scenario, as in the paper.
"""

from repro.reporting import summarize_latencies
from repro.testbed.scenarios import run_scenario_t2a


def run_experiment():
    return {
        name: run_scenario_t2a(name, runs=20, seed=11,
                               spacing=120.0 if name != "E3" else 20.0)
        for name in ("E1", "E2", "E3")
    }


def test_bench_fig5(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print("\nFigure 5 — T2A latency for A2 under E1/E2/E3 (reproduced)")
    for name in ("E1", "E2", "E3"):
        stats = summarize_latencies(results[name])
        print(f"{name}: p25={stats['p25']:.2f}s p50={stats['p50']:.2f}s "
              f"p75={stats['p75']:.2f}s max={stats['max']:.2f}s")
    print("paper: E1 ~ E2 (minutes, poll-bound); E3 ~ 1-2 s")

    def median(xs):
        return sorted(xs)[len(xs) // 2]

    e1, e2, e3 = (median(results[n]) for n in ("E1", "E2", "E3"))
    assert 0.3 < e1 / e2 < 3.0     # E1 and E2 similar
    assert e3 < 5.0                 # E3 in seconds
    assert e1 / e3 > 10             # the engine is the bottleneck
    assert e2 / e3 > 10
