"""§6 ablation: distributed (local) applet execution.

The paper proposes running eligible applets on a local engine (a phone or
tablet in the home) instead of the centralized cloud engine.  This bench
compares A2 (WeMo -> Hue, fully local-capable) under both placements:
T2A latency and WAN traffic per execution.
"""

from repro.engine import ActionRef, Applet, HybridScheduler, TriggerRef
from repro.reporting import render_table, summarize_latencies
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.applets import applet_spec


def measure_cloud(runs=10, seed=19):
    testbed = Testbed(TestbedConfig(seed=seed)).build()
    controller = TestController(testbed)
    uplink = testbed.network.link_between(testbed.gateway.address, testbed.internet.address)
    start_wan = uplink.messages_forwarded
    start_engine = testbed.engine.polls_sent + testbed.engine.actions_dispatched
    latencies = controller.measure_t2a("A2", runs=runs, spacing=90.0)
    wan_per_run = (uplink.messages_forwarded - start_wan) / runs
    engine_per_run = (
        testbed.engine.polls_sent + testbed.engine.actions_dispatched - start_engine
    ) / runs
    return latencies, wan_per_run, engine_per_run


def measure_local(runs=10, seed=19):
    testbed = Testbed(TestbedConfig(seed=seed, with_local_engine=True)).build()
    local = testbed.local_engine
    local.bridge_hue_hub(testbed.hue_hub.address)
    local.bridge_wemo(testbed.wemo.address)
    testbed.run_for(2.0)
    applet = Applet(
        applet_id=900001, name="A2 local", user="tester",
        trigger=TriggerRef("wemo", "switch_activated", {"device_id": "wemo1"}),
        action=ActionRef("philips_hue", "turn_on_lights", {"lamp_id": "lamp1"}),
    )

    def matcher(event):
        if event.get("device_id") == "wemo1" and event.get("state", {}).get("on") is True:
            return {}
        return None

    local.install_local_applet(applet, matcher, local.hue_command("lamp1"))
    uplink = testbed.network.link_between(testbed.gateway.address, testbed.internet.address)
    start_wan = uplink.messages_forwarded
    start_engine = testbed.engine.polls_sent + testbed.engine.actions_dispatched
    spec = applet_spec("A2")
    latencies = []
    for _ in range(runs):
        spec.reset(testbed)
        testbed.run_for(10.0)
        t0 = testbed.sim.now
        spec.activate(testbed)
        testbed.run_for(5.0)
        observed = spec.observe(testbed, t0)
        if observed is not None:
            latencies.append(observed - t0)
    wan_per_run = (uplink.messages_forwarded - start_wan) / runs
    engine_per_run = (
        testbed.engine.polls_sent + testbed.engine.actions_dispatched - start_engine
    ) / runs
    return latencies, wan_per_run, engine_per_run


def run_ablation():
    return {"cloud": measure_cloud(), "local": measure_local()}


def test_bench_ablation_local(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print("\n§6 ablation — centralized vs local execution of A2")
    rows = []
    for name, (latencies, wan_per_run, engine_per_run) in results.items():
        stats = summarize_latencies(latencies)
        rows.append([name, round(stats["p50"], 3), round(stats["max"], 2),
                     round(wan_per_run, 1), round(engine_per_run, 1)])
    print(render_table(
        ["placement", "median T2A (s)", "max T2A (s)", "WAN msgs/run", "engine msgs/run"],
        rows,
    ))
    print("(residual WAN traffic under local placement is vendor-cloud "
          "telemetry — device events still reach the official services)")

    scheduler = HybridScheduler({
        ("wemo", "switch_activated"), ("philips_hue", "turn_on_lights"),
    })
    a2_trigger, a2_action = applet_spec("A2").refs()
    a2 = Applet(applet_id=1, name="A2", user="t", trigger=a2_trigger, action=a2_action)
    a3_trigger, a3_action = applet_spec("A3").refs()
    a3 = Applet(applet_id=2, name="A3", user="t", trigger=a3_trigger, action=a3_action)
    print(f"hybrid scheduler placement: A2 -> {scheduler.placement(a2)}, "
          f"A3 -> {scheduler.placement(a3)} (gmail trigger cannot run locally)")

    cloud_median = summarize_latencies(results["cloud"][0])["p50"]
    local_median = summarize_latencies(results["local"][0])["p50"]
    assert local_median < 0.2            # LAN-only execution
    assert cloud_median / local_median > 100
    # the centralized engine's load vanishes for locally-placed applets
    # (this is §6's scalability argument)
    assert results["local"][2] == 0.0
    assert results["cloud"][2] > 1.0
    assert results["local"][1] <= results["cloud"][1]  # WAN traffic no worse
    assert scheduler.placement(a2) == "local"
    assert scheduler.placement(a3) == "cloud"
