"""§4 "Infinite Loop": explicit and implicit feedback loops.

Paper: chained applets can form loops IFTTT does not detect ("no syntax
check is performed"); a Sheets notification feature closes an *implicit*
loop invisible to offline analysis, so "some runtime detection techniques
are needed".  The bench runs both loops, the blind/informed static
analyses, and the runtime kill switch.
"""

from repro.reporting import render_table
from repro.testbed.loops import (
    run_explicit_loop_experiment,
    run_implicit_loop_experiment,
)


def run_experiments():
    return {
        "explicit": run_explicit_loop_experiment(duration=3600.0, seed=3),
        "implicit": run_implicit_loop_experiment(duration=3600.0, seed=3),
        "implicit+runtime": run_implicit_loop_experiment(
            duration=3600.0, seed=3, runtime_detection=True
        ),
    }


def test_bench_loops(benchmark):
    results = benchmark.pedantic(run_experiments, rounds=1, iterations=1)

    print("\n§4 Infinite Loop experiments (reproduced; 1h simulated each)")
    print(render_table(
        ["Experiment", "looped", "rows", "emails", "static(blind)",
         "static(informed)", "runtime-flagged"],
        [
            [name, str(r.looped), r.rows_added, r.emails_received,
             len(r.static_findings), len(r.static_findings_with_external_knowledge),
             len(r.runtime_flagged)]
            for name, r in results.items()
        ],
    ))

    explicit, implicit, guarded = (
        results["explicit"], results["implicit"], results["implicit+runtime"]
    )
    assert explicit.looped and implicit.looped          # both loops self-sustain
    assert len(explicit.static_findings) == 1            # explicit is analyzable offline
    assert implicit.static_findings == []                 # implicit is invisible...
    assert len(implicit.static_findings_with_external_knowledge) == 1  # ...unless declared
    assert guarded.runtime_flagged                        # runtime detection catches it
    assert guarded.rows_added < implicit.rows_added       # and actually stops it
