"""Extension bench: the §6 future-work features (queries & conditions).

Two measurements:

1. **Simultaneity** — Figure 7 showed two same-trigger applets diverging
   by ±minutes.  A single multi-action applet dispatches all actions
   from the same poll response; we measure the dispatch gap both ways.
2. **Overhead** — conditions require filter evaluation and queries add a
   round trip to the queried service at execution time; we measure the
   added T2A latency on applet A2 (it is negligible next to the polling
   delay).
"""

from repro.engine import ActionRef, EngineConfig, FixedPollingPolicy, QueryRef, TriggerRef
from repro.reporting import render_table, summarize_latencies
from repro.testbed import Testbed, TestbedConfig, TestController
from repro.testbed.applets import _deliver_email, applet_spec
from repro.testbed.concurrent import run_concurrent_experiment
from repro.testbed.testbed import TEST_USER


def measure_multi_action_gap(runs=10, seed=29):
    """Dispatch-time gap between the two actions of one multi-action applet."""
    testbed = Testbed(TestbedConfig(seed=seed)).build()
    testbed.engine.install_applet(
        user=TEST_USER,
        name="hue AND wemo when email arrives",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef("philips_hue", "turn_on_lights", {"lamp_id": "lamp1"}),
        extra_actions=(ActionRef("wemo", "activate_switch", {"device_id": "wemo1"}),),
    )
    testbed.run_for(10.0)
    gaps = []
    for _ in range(runs):
        before = len(testbed.trace.times("engine_action_sent"))
        _deliver_email(testbed)
        testbed.run_for(600.0)
        sent = testbed.trace.times("engine_action_sent")[before:]
        if len(sent) >= 2:
            gaps.append(abs(sent[1] - sent[0]))
        testbed.hue_lamp.apply_command({"on": False}, cause="reset")
        testbed.wemo.set_binary_state(False, cause="reset")
        testbed.run_for(30.0)
    return gaps


def measure_conditional_overhead(runs=10, seed=31):
    """A2 T2A with vs without a query + condition attached."""
    plain_testbed = Testbed(TestbedConfig(
        seed=seed, engine_config=EngineConfig(poll_policy=FixedPollingPolicy(5.0)),
    )).build()
    plain = TestController(plain_testbed, timeout=120.0)
    plain_lat = plain.measure_t2a("A2", runs=runs, spacing=30.0)

    cond_testbed = Testbed(TestbedConfig(
        seed=seed, engine_config=EngineConfig(poll_policy=FixedPollingPolicy(5.0)),
    )).build()
    trigger, action = applet_spec("A2").refs()
    cond_testbed.engine.install_applet(
        user=TEST_USER, name="A2 with query+condition",
        trigger=trigger, action=action,
        queries=(QueryRef("google_sheets", "row_count", {"sheet": "any"}),),
        filter_code="queries.row_count.rows >= 0",  # always true; pure overhead
    )
    cond = TestController(cond_testbed, timeout=120.0)
    cond_lat = cond.measure_t2a("A2", runs=runs, install=False, spacing=30.0)
    return plain_lat, cond_lat


def run_bench():
    return {
        "two_applet_divergence": run_concurrent_experiment(runs=10, seed=29),
        "multi_action_gaps": measure_multi_action_gap(),
        "overhead": measure_conditional_overhead(),
    }


def test_bench_extension_features(benchmark):
    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    diffs = results["two_applet_divergence"].differences
    gaps = results["multi_action_gaps"]
    plain_lat, cond_lat = results["overhead"]
    print("\nExtension features (paper §6 future work)")
    print(render_table(
        ["approach", "action-time divergence"],
        [
            ["two applets, same trigger (Figure 7)",
             f"{min(diffs):.1f} .. {max(diffs):.1f} s"],
            ["one multi-action applet",
             f"max {max(gaps)*1000:.1f} ms"],
        ],
    ))
    plain_stats = summarize_latencies(plain_lat)
    cond_stats = summarize_latencies(cond_lat)
    print(render_table(
        ["A2 variant", "median T2A (s)"],
        [
            ["plain", round(plain_stats["p50"], 2)],
            ["with query + condition", round(cond_stats["p50"], 2)],
        ],
    ))
    print("conditions/queries add one cloud round trip — negligible next "
          "to the polling delay that dominates §4")

    assert max(gaps) < 0.01                       # same-poll dispatch
    assert max(diffs) - min(diffs) > 30.0         # the Figure 7 problem
    assert cond_stats["p50"] < plain_stats["p50"] + 2.0  # tiny overhead
    assert len(cond_lat) == len(plain_lat)        # nothing filtered away
