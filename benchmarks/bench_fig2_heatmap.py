"""Figure 2: heat map of interactions between service categories.

Paper: IoT triggers pair mostly with action categories 1, 5, 9; IoT
actions with trigger categories 1, 7, 9, 12; social-network sync (10,10)
is the dominant non-IoT cell.  The bench regenerates the 14×14 add-count
matrix and prints a log-shaded ASCII rendering.
"""

from repro.analysis import interaction_heatmap
from repro.analysis.heatmap import col_sums, render_ascii, row_sums


def test_bench_fig2(benchmark, bench_snapshot):
    matrix = benchmark(interaction_heatmap, bench_snapshot)

    print("\nFigure 2 — Trigger-category x action-category heat map (reproduced)")
    print(render_ascii(matrix))

    total = sum(row_sums(matrix))
    # Social sync is a hot cell.
    assert matrix[9][9] > 0.03 * total
    # IoT trigger rows flow into action categories 1, 5, 9.
    iot_trigger_mass = sum(row_sums(matrix)[i] for i in range(4))
    iot_to_159 = sum(matrix[i][j] for i in range(4) for j in (0, 4, 8))
    assert iot_to_159 > 0.5 * iot_trigger_mass
    # IoT action columns are fed by trigger categories 1, 7, 9, 12.
    iot_action_mass = sum(col_sums(matrix)[j] for j in range(4))
    into_iot = sum(matrix[i][j] for i in (0, 6, 8, 11) for j in range(4))
    assert into_iot > 0.5 * iot_action_mass
    # Time/location exposes no actions: column 12 empty.
    assert col_sums(matrix)[11] == 0
