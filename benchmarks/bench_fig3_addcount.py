"""Figure 3: add count per applet (rank plot).

Paper: a heavy-tail distribution where "the top 1% (10%) of applets
contribute 84.1% (97.6%) of the overall add count".  The bench prints
log-spaced (rank, add count) samples — the Figure 3 curve — and asserts
the tail statistics.
"""

from repro.analysis import add_count_top_shares, log_rank_series
from repro.reporting import render_table


def test_bench_fig3(benchmark, bench_snapshot):
    series = benchmark(log_rank_series, bench_snapshot)

    print("\nFigure 3 — Add count per applet, rank-ordered (reproduced; log-spaced samples)")
    print(render_table(["rank", "add count"], [[rank, count] for rank, count in series]))

    shares = add_count_top_shares(bench_snapshot)
    print(f"top 1%  of applets hold {shares[0.01]:.1%} of adds (paper: 84.1%)")
    print(f"top 10% of applets hold {shares[0.10]:.1%} of adds (paper: 97.6%)")

    assert abs(shares[0.01] - 0.841) < 0.05
    assert abs(shares[0.10] - 0.976) < 0.04
    # monotone non-increasing curve spanning several decades
    values = [count for _, count in series]
    assert values == sorted(values, reverse=True)
    assert values[0] / max(1, values[-1]) > 100
