"""§3.2 "Applet Properties": crowdsourced contribution.

Paper: 135,544 user channels (orders of magnitude more than the ~400
services); 98% of applets are home-made by users; 86% of adds belong to
user-made applets; the top 1% (10%) of users contribute 18% (49%) of all
applets.
"""

from repro.analysis import user_contribution_stats
from repro.reporting import render_table


def test_bench_user_contrib(benchmark, bench_snapshot):
    stats = benchmark(user_contribution_stats, bench_snapshot)

    print("\n§3.2 user contribution (reproduced)")
    print(render_table(
        ["Statistic", "Measured", "Paper"],
        [
            ["user channels", stats.user_channels, "135,544 (x0.1 scale here)"],
            ["user-made applet fraction", round(stats.user_made_applet_fraction, 3), "0.98"],
            ["user-made add fraction", round(stats.user_made_add_fraction, 3), "0.86"],
            ["top 1% users' applet share", round(stats.top1pct_user_applet_share, 3), "0.18"],
            ["top 10% users' applet share", round(stats.top10pct_user_applet_share, 3), "0.49"],
        ],
    ))

    assert stats.user_channels > 1000  # orders of magnitude above 408 services
    assert abs(stats.user_made_applet_fraction - 0.98) < 0.02
    assert abs(stats.user_made_add_fraction - 0.86) < 0.06
    assert abs(stats.top1pct_user_applet_share - 0.18) < 0.08
    assert abs(stats.top10pct_user_applet_share - 0.49) < 0.12
