"""Anchor services: the real top-of-market services of Table 3.

The generator seeds the corpus with the services the paper names — the
top IoT trigger/action services (Alexa, Philips Hue, Fitbit, Nest,
Google Assistant, UP by Jawbone, Nest Protect, Automatic, LIFX, Harmony
Hub, WeMo Smart Plug, Android smartwatch) plus the signature triggers and
actions Table 3 lists — and steers popular applets onto them, so the §3
top-k analysis reproduces the table.

``trigger_weight`` / ``action_weight`` encode Table 3's add counts in
units of 0.1M (e.g. Alexa's 1.2M trigger adds → 12); they control how
often each anchor is chosen as the trigger/action service within its
category.  The asymmetry matters: Philips Hue is the top *action*
service but barely appears as a trigger, and vice versa for Alexa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class AnchorService:
    """One real service with its Table 3 signature endpoints."""

    name: str
    category_index: int
    triggers: Tuple[str, ...] = ()
    actions: Tuple[str, ...] = ()
    trigger_weight: float = 0.0
    action_weight: float = 0.0


ANCHOR_SERVICES: List[AnchorService] = [
    AnchorService(
        "Amazon Alexa", 1,
        triggers=(
            "Say a phrase",
            "Item added to todo list",
            "Ask what's on shopping list",
            "Item added to shopping list",
            "New song played",
        ),
        trigger_weight=12.0,
    ),
    AnchorService(
        "Philips Hue", 1,
        triggers=("Light turned on",),
        actions=("Turn on lights", "Change color", "Blink lights", "Turn on color loop"),
        trigger_weight=0.2, action_weight=12.0,
    ),
    AnchorService(
        "Fitbit", 3,
        triggers=("Daily activity summary", "New sleep logged", "Goal achieved"),
        trigger_weight=2.0, action_weight=0.2,
    ),
    AnchorService(
        "Nest Thermostat", 1,
        triggers=("Temperature rises above", "Temperature drops below"),
        actions=("Set temperature",),
        trigger_weight=1.0, action_weight=2.0,
    ),
    AnchorService(
        "Google Assistant", 1,
        triggers=("Say a phrase", "Say a phrase with a text ingredient"),
        trigger_weight=1.0,
    ),
    AnchorService(
        "UP by Jawbone", 3,
        triggers=("New sleep logged", "New workout logged"),
        actions=("Log a mood", "Set a reminder"),
        trigger_weight=1.0, action_weight=0.9,
    ),
    AnchorService(
        "Nest Protect", 1,
        triggers=("Smoke alarm emergency", "Carbon monoxide warning"),
        trigger_weight=0.7,
    ),
    AnchorService(
        "Automatic", 4,
        triggers=("Ignition turned on", "Low fuel"),
        trigger_weight=0.6,
    ),
    AnchorService(
        "LIFX", 1,
        actions=("Turn lights on", "Breathe lights", "Turn lights off"),
        trigger_weight=0.1, action_weight=2.0,
    ),
    AnchorService(
        "Harmony Hub", 2,
        actions=("Start activity", "End activity"),
        trigger_weight=0.1, action_weight=2.0,
    ),
    AnchorService(
        "WeMo Smart Plug", 1,
        triggers=("Switch turned on",),
        actions=("Turn on", "Turn off"),
        trigger_weight=0.4, action_weight=1.0,
    ),
    AnchorService(
        "Android Smartwatch", 3,
        actions=("Send a notification",),
        trigger_weight=0.1, action_weight=1.0,
    ),
    # Non-IoT anchors give the non-IoT categories recognizable leaders.
    AnchorService(
        "Weather Underground", 7,
        triggers=("It starts raining", "Sunrise", "Tomorrow's forecast"),
        trigger_weight=3.0,
    ),
    AnchorService(
        "Gmail", 13,
        triggers=("Any new email", "New attachment"),
        actions=("Send an email",),
        trigger_weight=3.0, action_weight=3.0,
    ),
    AnchorService(
        "Google Drive", 6,
        actions=("Upload file from URL", "Append to document"),
        trigger_weight=0.2, action_weight=3.0,
    ),
    AnchorService(
        "Google Sheets", 9,
        triggers=("New row added",),
        actions=("Add row to spreadsheet",),
        trigger_weight=1.0, action_weight=4.0,
    ),
    AnchorService(
        "Facebook", 10,
        triggers=("New status by you", "You are tagged in a photo"),
        actions=("Create a status", "Upload a photo"),
        trigger_weight=4.0, action_weight=3.0,
    ),
    AnchorService(
        "Twitter", 10,
        triggers=("New tweet by you", "New follower"),
        actions=("Post a tweet",),
        trigger_weight=4.0, action_weight=3.0,
    ),
    AnchorService("Instagram", 10, triggers=("Any new photo by you",), trigger_weight=3.0),
    AnchorService("NYTimes", 7, triggers=("New article in section",), trigger_weight=1.0),
    AnchorService(
        "YouTube", 7,
        triggers=("New liked video", "New video by channel"),
        trigger_weight=1.5,
    ),
    AnchorService(
        "Samsung SmartThings", 2,
        triggers=("Any device event",),
        actions=("Control a device",),
        trigger_weight=1.0, action_weight=1.0,
    ),
    AnchorService("Egg Minder", 1, triggers=("Eggs running low",), trigger_weight=0.05),
    AnchorService("NASA", 7, triggers=("New picture of the day",), trigger_weight=1.0),
]


def iot_anchor_names() -> List[str]:
    """Names of the IoT anchors (categories 1-4)."""
    return [anchor.name for anchor in ANCHOR_SERVICES if anchor.category_index <= 4]


def anchors_by_category() -> dict:
    """Anchors grouped by category index."""
    grouped: dict = {}
    for anchor in ANCHOR_SERVICES:
        grouped.setdefault(anchor.category_index, []).append(anchor)
    return grouped
