"""The study window and its measured growth rates.

§3.2: "Compared to 11/24/2016, on 4/1/2017, the number of services,
triggers, actions, and applet add count increase by 11%, 31%, 27%, and
19%, respectively."  The paper took 25 weekly snapshots (one per week,
Nov 2016 - Apr 2017); we index them week 0..24.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Number of weekly snapshots (Table 2: "25, one each week").
WEEKS_IN_STUDY = 25

#: Final snapshot index (week 24 ≈ 4/1/2017).
FINAL_WEEK = WEEKS_IN_STUDY - 1

#: The §3.2 growth of each quantity across the window.
GROWTH_TARGETS: Dict[str, float] = {
    "services": 0.11,
    "triggers": 0.31,
    "actions": 0.27,
    "add_count": 0.19,
    "applets": 0.16,  # not published; implied by add count and new-service growth
}


def in_window_fraction(growth: float) -> float:
    """Fraction of final-week entities created during the window.

    If the count grew by ``growth`` over the window, then
    ``1 - 1/(1+growth)`` of the final entities did not exist at week 0.
    """
    if growth < 0:
        raise ValueError(f"growth must be non-negative, got {growth}")
    return 1.0 - 1.0 / (1.0 + growth)


def conditional_fraction(child_growth: float, parent_growth: float) -> float:
    """In-window fraction for children of mostly-pre-window parents.

    A child entity (a trigger on a service) is forced in-window when its
    parent was created in-window.  To hit an overall in-window fraction
    ``f_child`` given the parent fraction ``f_parent`` (children are
    forced in-window for in-window parents), children of *pre-window*
    parents must be in-window with probability
    ``(f_child - f_parent) / (1 - f_parent)``.
    """
    f_child = in_window_fraction(child_growth)
    f_parent = in_window_fraction(parent_growth)
    if f_child <= f_parent:
        return 0.0
    return (f_child - f_parent) / (1.0 - f_parent)


@dataclass(frozen=True)
class GrowthSchedule:
    """Creation-week assignment policy for generated entities."""

    weeks: int = WEEKS_IN_STUDY

    def assign_created_week(self, rng, growth: float) -> int:
        """Week 0 for pre-window entities, else uniform in 1..final."""
        return self.assign_with_fraction(rng, in_window_fraction(growth))

    def assign_with_fraction(self, rng, fraction: float) -> int:
        """Week 0 with probability ``1 - fraction``, else uniform in-window."""
        if rng.bernoulli(fraction):
            return rng.randint(1, self.weeks - 1)
        return 0

    def snapshot_weeks(self) -> List[int]:
        """All snapshot indices, 0..final."""
        return list(range(self.weeks))


def snapshot_date(week: int) -> str:
    """ISO date of a weekly snapshot (week 0 = 2016-11-24, weekly steps)."""
    import datetime

    start = datetime.date(2016, 11, 24)
    return (start + datetime.timedelta(weeks=week)).isoformat()
