"""Synthetic IFTTT ecosystem, calibrated to §3.2.

The paper crawled ifttt.com weekly for six months; the production corpus
(408 services, 1490 triggers, 957 actions, ~320K public applets, ~23M
adds, 135K user channels as of the 3/25/2017 snapshot) is not available,
so this package generates a corpus with the same published statistics:

* Table 1's category mix (14 categories, 51.7% IoT services),
* heavy-tailed applet popularity (top 1% of applets ≈ 84% of adds),
* heavy-tailed user contribution (top 1% of users ≈ 18% of applets,
  98% of applets user-made carrying 86% of adds),
* the Figure 2 trigger-category × action-category interaction structure
  (fitted by iterative proportional fitting to Table 1's add-count
  marginals), and
* the measured weekly growth (+11% services, +31% triggers, +27%
  actions, +19% adds over the measurement window).

Every §3 analysis and the crawler pipeline run against this corpus.
"""

from repro.ecosystem.categories import Category, CATEGORIES, category, iot_categories
from repro.ecosystem.corpus import (
    ServiceRecord,
    TriggerRecord,
    ActionRecord,
    AppletRecord,
    Corpus,
)
from repro.ecosystem.model import EcosystemParams
from repro.ecosystem.popularity import zipf_add_counts, top_share, fit_zipf_alpha
from repro.ecosystem.interactions import fit_interaction_matrix
from repro.ecosystem.generator import EcosystemGenerator
from repro.ecosystem.growth import GrowthSchedule, WEEKS_IN_STUDY

__all__ = [
    "Category",
    "CATEGORIES",
    "category",
    "iot_categories",
    "ServiceRecord",
    "TriggerRecord",
    "ActionRecord",
    "AppletRecord",
    "Corpus",
    "EcosystemParams",
    "zipf_add_counts",
    "top_share",
    "fit_zipf_alpha",
    "fit_interaction_matrix",
    "EcosystemGenerator",
    "GrowthSchedule",
    "WEEKS_IN_STUDY",
]
