"""The Figure 2 interaction structure: trigger-category × action-category.

Figure 2's heat map shows which category pairs carry add count: IoT
services "serve as both triggers (usually paired with service categories
of 1, 5, 9) and actions (paired with service categories of 1, 7, 9, 12)";
social networks sync with each other; online services notify via personal
managers; and so on.

We encode those qualitative affinities in a base matrix and then run
iterative proportional fitting (IPF) so the row sums match Table 1's
trigger add-count marginals and the column sums match its action
add-count marginals exactly.  Sampling applet category pairs from the
fitted matrix reproduces both the marginals and the hot-spot structure.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ecosystem.categories import CATEGORIES, action_addcount_weights, trigger_addcount_weights

N_CATEGORIES = len(CATEGORIES)

#: Qualitative affinity boosts: (trigger category, action category, factor).
_AFFINITY_BOOSTS = [
    # IoT triggers pair with smarthome, smartphone, personal-manager actions.
    *[(i, 1, 6.0) for i in (1, 2, 3, 4)],
    *[(i, 5, 3.0) for i in (1, 2, 3, 4)],
    *[(i, 9, 3.0) for i in (1, 2, 3, 4)],
    # IoT actions pair with smarthome, online, personal, time/location triggers.
    *[(1, j, 6.0) for j in (2, 3, 4)],
    (7, 1, 4.0), (9, 1, 4.0), (12, 1, 5.0),
    (7, 2, 2.0), (9, 2, 2.0), (12, 2, 2.0),
    # Social-network sync (top non-IoT use case).
    (10, 10, 8.0),
    # Online services / RSS notify users and log to storage.
    (7, 9, 4.0), (8, 9, 3.0), (7, 6, 2.0), (8, 6, 2.0),
    # Time/location drives personal managers and phones.
    (12, 9, 4.0), (12, 5, 3.0),
    # Email to storage and personal managers; and back.
    (13, 6, 3.0), (13, 9, 3.0), (10, 6, 2.0),
    # Phones log to storage and notify.
    (5, 6, 2.0), (5, 9, 2.0),
]


def base_affinity_matrix() -> List[List[float]]:
    """The pre-IPF qualitative affinity matrix (1-indexed categories)."""
    matrix = [[1.0] * N_CATEGORIES for _ in range(N_CATEGORIES)]
    for trigger_cat, action_cat, factor in _AFFINITY_BOOSTS:
        matrix[trigger_cat - 1][action_cat - 1] *= factor
    return matrix


def ipf_fit(
    matrix: List[List[float]],
    row_targets: Sequence[float],
    col_targets: Sequence[float],
    iterations: int = 200,
    tolerance: float = 1e-9,
) -> List[List[float]]:
    """Iterative proportional fitting of a non-negative matrix.

    Scales rows then columns alternately until row sums match
    ``row_targets`` and column sums match ``col_targets`` (both target
    vectors are normalized to sum to 1 internally).  Zero targets zero
    out their row/column.
    """
    n_rows, n_cols = len(matrix), len(matrix[0])
    if len(row_targets) != n_rows or len(col_targets) != n_cols:
        raise ValueError("target vector lengths must match matrix shape")
    row_total = float(sum(row_targets))
    col_total = float(sum(col_targets))
    if row_total <= 0 or col_total <= 0:
        raise ValueError("targets must have positive sums")
    rows = [t / row_total for t in row_targets]
    cols = [t / col_total for t in col_targets]
    m = [list(row) for row in matrix]
    for _ in range(iterations):
        max_err = 0.0
        for i in range(n_rows):
            s = sum(m[i])
            factor = (rows[i] / s) if s > 0 else 0.0
            for j in range(n_cols):
                m[i][j] *= factor
        for j in range(n_cols):
            s = sum(m[i][j] for i in range(n_rows))
            factor = (cols[j] / s) if s > 0 else 0.0
            for i in range(n_rows):
                m[i][j] *= factor
        for i in range(n_rows):
            max_err = max(max_err, abs(sum(m[i]) - rows[i]))
        if max_err < tolerance:
            break
    return m


def fit_interaction_matrix() -> List[List[float]]:
    """The fitted Figure 2 matrix: cell (i, j) is the probability that an
    applet's add count flows from trigger category i+1 to action category
    j+1.  Rows/columns follow Table 1's add-count marginals."""
    return ipf_fit(
        base_affinity_matrix(),
        trigger_addcount_weights(),
        action_addcount_weights(),
    )


def flatten_cells(matrix: List[List[float]]):
    """(trigger_cat_index, action_cat_index, weight) triples, 1-indexed."""
    cells = []
    for i, row in enumerate(matrix):
        for j, weight in enumerate(row):
            if weight > 0:
                cells.append((i + 1, j + 1, weight))
    return cells
