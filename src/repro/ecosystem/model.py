"""Ecosystem generation parameters.

Defaults reproduce the paper's 3/25/2017 snapshot: 408 services, 1490
triggers, 957 actions, 320K applets, ~23M total adds, 135,544 user
channels.  ``scale`` shrinks applet/user counts proportionally for fast
tests and benches (distributional shape is scale-free; the calibration
tests verify the headline ratios hold at reduced scale).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EcosystemParams:
    """Knobs for :class:`~repro.ecosystem.generator.EcosystemGenerator`.

    Attributes
    ----------
    n_services, n_triggers, n_actions:
        Endpoint-universe sizes (not scaled — the service side is small).
    n_applets, total_add_count, n_user_channels:
        Corpus sizes at the final snapshot, before ``scale``.
    scale:
        Multiplier in (0, 1] applied to applets / adds / users.
    user_made_applet_fraction:
        Share of applets published by end users (98% in §3.2).
    user_made_add_fraction:
        Share of adds carried by user-made applets (86%).
    applet_zipf_alpha, applet_zipf_shift_frac:
        Popularity skew (shifted Zipf); fitted so the top 1% of applets
        carry ~84% of adds, the top 10% ~97%, and the top applet ~0.5%
        (Figure 3's plateau); the shift scales with the applet count.
    user_zipf_alpha:
        Contribution skew; top 1% of users publish ~18% of applets.
    seed:
        Master RNG seed.
    """

    n_services: int = 408
    n_triggers: int = 1490
    n_actions: int = 957
    n_applets: int = 320_000
    total_add_count: int = 23_000_000
    n_user_channels: int = 135_544
    scale: float = 1.0
    user_made_applet_fraction: float = 0.98
    user_made_add_fraction: float = 0.86
    applet_zipf_alpha: float = 1.5
    applet_zipf_shift_frac: float = 100.0 / 320_000.0
    user_zipf_alpha: float = 0.66
    seed: int = 2017

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        for name in ("n_services", "n_triggers", "n_actions", "n_applets",
                     "total_add_count", "n_user_channels"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0 <= self.user_made_applet_fraction <= 1:
            raise ValueError("user_made_applet_fraction must be in [0, 1]")

    @property
    def scaled_applets(self) -> int:
        """Applet count after scaling."""
        return max(100, int(self.n_applets * self.scale))

    @property
    def scaled_add_count(self) -> int:
        """Total add count after scaling."""
        return max(1000, int(self.total_add_count * self.scale))

    @property
    def scaled_users(self) -> int:
        """User-channel count after scaling."""
        return max(50, int(self.n_user_channels * self.scale))

    @staticmethod
    def small(scale: float = 0.02, seed: int = 2017) -> "EcosystemParams":
        """A fast test-sized parameter set (6400 applets at scale=0.02)."""
        return EcosystemParams(scale=scale, seed=seed)
