"""Corpus data model: services, triggers, actions, applets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TriggerRecord:
    """One trigger exposed by a service."""

    slug: str
    name: str
    service_slug: str
    created_week: int = 0


@dataclass
class ActionRecord:
    """One action exposed by a service."""

    slug: str
    name: str
    service_slug: str
    created_week: int = 0


@dataclass
class ServiceRecord:
    """One partner service in the ecosystem.

    ``category_index`` is the ground-truth Table 1 category assigned at
    generation time; the keyword classifier in
    :mod:`repro.analysis.classify` re-derives it from name/description,
    playing the paper's manual-classification role.
    """

    slug: str
    name: str
    description: str
    category_index: int
    created_week: int = 0
    triggers: List[TriggerRecord] = field(default_factory=list)
    actions: List[ActionRecord] = field(default_factory=list)

    @property
    def trigger_count(self) -> int:
        """Number of triggers the service exposes."""
        return len(self.triggers)

    @property
    def action_count(self) -> int:
        """Number of actions the service exposes."""
        return len(self.actions)


@dataclass
class AppletRecord:
    """One published applet as the crawler sees it.

    ``add_count`` is the final-snapshot install count; see
    :meth:`add_count_at` for the within-study interpolation used by
    earlier weekly snapshots.
    """

    applet_id: int
    name: str
    description: str
    trigger_slug: str
    trigger_service_slug: str
    action_slug: str
    action_service_slug: str
    author: str
    author_is_user: bool
    add_count: int
    created_week: int = 0

    def add_count_at(self, week: int, final_week: int) -> int:
        """Install count as of a study week.

        Applets existing before the study window ramp linearly from
        ``add_count / GROWTH`` to ``add_count``; applets created during
        the window ramp from 0 at their creation week.  The aggregate
        trajectory reproduces the measured +19% add-count growth.
        """
        if week >= final_week:
            return self.add_count
        if self.created_week > week:
            return 0
        if self.created_week <= 0:
            start = self.add_count / 1.19
            progress = week / final_week if final_week else 1.0
            return int(round(start + (self.add_count - start) * progress))
        age = week - self.created_week
        span = max(1, final_week - self.created_week)
        return int(round(self.add_count * age / span))


class Corpus:
    """The full ecosystem: services (with endpoints) and applets.

    Supports week-indexed views (what the crawler of week ``w`` can see)
    without materializing 25 separate corpora.
    """

    def __init__(self, final_week: int = 24) -> None:
        self.final_week = final_week
        self.services: Dict[str, ServiceRecord] = {}
        self.applets: Dict[int, AppletRecord] = {}

    # -- construction -------------------------------------------------------------

    def add_service(self, service: ServiceRecord) -> ServiceRecord:
        """Register a service; slug must be unique."""
        if service.slug in self.services:
            raise ValueError(f"duplicate service slug {service.slug!r}")
        self.services[service.slug] = service
        return service

    def add_applet(self, applet: AppletRecord) -> AppletRecord:
        """Register an applet; id must be unique."""
        if applet.applet_id in self.applets:
            raise ValueError(f"duplicate applet id {applet.applet_id}")
        self.applets[applet.applet_id] = applet
        return applet

    # -- week-indexed access ---------------------------------------------------------

    def services_at(self, week: Optional[int] = None) -> List[ServiceRecord]:
        """Services visible at a study week (all, when ``week`` is None)."""
        if week is None:
            return list(self.services.values())
        return [s for s in self.services.values() if s.created_week <= week]

    def applets_at(self, week: Optional[int] = None) -> List[AppletRecord]:
        """Applets visible at a study week."""
        if week is None:
            return list(self.applets.values())
        return [a for a in self.applets.values() if a.created_week <= week]

    def triggers_at(self, week: Optional[int] = None) -> List[TriggerRecord]:
        """Trigger records visible at a study week."""
        out: List[TriggerRecord] = []
        for service in self.services_at(week):
            for trigger in service.triggers:
                if week is None or trigger.created_week <= week:
                    out.append(trigger)
        return out

    def actions_at(self, week: Optional[int] = None) -> List[ActionRecord]:
        """Action records visible at a study week."""
        out: List[ActionRecord] = []
        for service in self.services_at(week):
            for action in service.actions:
                if week is None or action.created_week <= week:
                    out.append(action)
        return out

    def total_add_count(self, week: Optional[int] = None) -> int:
        """Sum of applet add counts at a study week."""
        if week is None:
            return sum(a.add_count for a in self.applets.values())
        return sum(
            a.add_count_at(week, self.final_week) for a in self.applets_at(week)
        )

    # -- lookups ------------------------------------------------------------------------

    def service(self, slug: str) -> ServiceRecord:
        """Service by slug."""
        return self.services[slug]

    def applet(self, applet_id: int) -> AppletRecord:
        """Applet by id."""
        return self.applets[applet_id]

    def category_of_service(self, slug: str) -> int:
        """Ground-truth category index of a service."""
        return self.services[slug].category_index

    def applet_id_bounds(self) -> Tuple[int, int]:
        """Smallest and largest allocated applet id."""
        if not self.applets:
            return (0, 0)
        ids = self.applets.keys()
        return (min(ids), max(ids))

    def summary(self, week: Optional[int] = None) -> Dict[str, int]:
        """Headline counts (the §3.2 snapshot characterization)."""
        return {
            "services": len(self.services_at(week)),
            "triggers": len(self.triggers_at(week)),
            "actions": len(self.actions_at(week)),
            "applets": len(self.applets_at(week)),
            "add_count": self.total_add_count(week),
        }

    # -- persistence ----------------------------------------------------------------

    def save(self, path) -> None:
        """Serialize the corpus to a JSON file (the shareable dataset).

        Mirrors the paper's data release: the full services/endpoints/
        applets tables, reloadable with :meth:`load`.
        """
        import json
        from pathlib import Path

        payload = {
            "final_week": self.final_week,
            "services": [
                {
                    "slug": s.slug,
                    "name": s.name,
                    "description": s.description,
                    "category_index": s.category_index,
                    "created_week": s.created_week,
                    "triggers": [vars(t) for t in s.triggers],
                    "actions": [vars(a) for a in s.actions],
                }
                for s in self.services.values()
            ],
            "applets": [vars(a) for a in self.applets.values()],
        }
        Path(path).write_text(json.dumps(payload))

    @staticmethod
    def load(path) -> "Corpus":
        """Load a corpus previously written by :meth:`save`."""
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text())
        corpus = Corpus(final_week=payload["final_week"])
        for raw in payload["services"]:
            service = ServiceRecord(
                slug=raw["slug"],
                name=raw["name"],
                description=raw["description"],
                category_index=raw["category_index"],
                created_week=raw["created_week"],
            )
            service.triggers = [TriggerRecord(**t) for t in raw["triggers"]]
            service.actions = [ActionRecord(**a) for a in raw["actions"]]
            corpus.add_service(service)
        for raw in payload["applets"]:
            corpus.add_applet(AppletRecord(**raw))
        return corpus

    def __repr__(self) -> str:
        return (
            f"<Corpus services={len(self.services)} applets={len(self.applets)} "
            f"adds={self.total_add_count()}>"
        )
