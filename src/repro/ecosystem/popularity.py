"""Heavy-tailed popularity: the Figure 3 add-count distribution.

§3.2: "the top 1% (10%) of applets contribute 84.1% (97.6%) of the
overall add count", and published-applets-per-user also follows a heavy
tail ("the top 1% (10%) of users contribute 18% (49%) of all applets").
We model both as Zipf rank distributions and fit the exponent to the
published top-share numbers.
"""

from __future__ import annotations

from typing import List, Sequence


def zipf_shares(n: int, alpha: float, shift: float = 0.0) -> List[float]:
    """Normalized (shifted) Zipf shares for ranks 1..n.

    ``share_i ∝ (i + shift)^-alpha``.  The shift flattens the head: the
    paper's Figure 3 shows a *plateau* of very popular applets (top applet
    ~10^5 adds out of 23M, i.e. only ~0.5% of the total) while the top 1%
    still carries 84% — which a pure Zipf cannot produce.  A shift of
    ~0.03% of n with alpha 1.5 fits all three published statistics.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if shift < 0:
        raise ValueError(f"shift must be non-negative, got {shift}")
    weights = [1.0 / ((rank + shift) ** alpha) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def top_share(values: Sequence[float], fraction: float) -> float:
    """Share of the total held by the top ``fraction`` of entries.

    ``top_share(add_counts, 0.01)`` is the paper's "top 1% of applets
    contribute X% of adds" statistic.
    """
    if not values:
        raise ValueError("values must be non-empty")
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(values, reverse=True)
    k = max(1, int(round(len(ordered) * fraction)))
    total = float(sum(ordered))
    if total == 0:
        return 0.0
    return sum(ordered[:k]) / total


def zipf_top_share(n: int, alpha: float, fraction: float, shift: float = 0.0) -> float:
    """Top-share statistic of an exact (shifted) Zipf distribution."""
    return top_share(zipf_shares(n, alpha, shift), fraction)


def fit_zipf_alpha(
    n: int, fraction: float, target_share: float, lo: float = 0.1, hi: float = 3.0,
    tolerance: float = 1e-3,
) -> float:
    """Binary-search the Zipf exponent hitting a target top-share.

    E.g. ``fit_zipf_alpha(320_000, 0.01, 0.841)`` recovers the exponent
    that makes the top 1% of applets carry 84.1% of adds.
    """
    if not 0 < target_share < 1:
        raise ValueError(f"target_share must be in (0, 1), got {target_share}")
    low, high = lo, hi
    for _ in range(60):
        mid = (low + high) / 2
        share = zipf_top_share(n, mid, fraction)
        if abs(share - target_share) < tolerance:
            return mid
        if share < target_share:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def zipf_add_counts(n: int, alpha: float, total: int, shift: float = 0.0) -> List[int]:
    """Integer add counts for n applets totalling ``total``, Zipf-shaped.

    Every applet gets at least 1 add; the remainder is distributed by
    (shifted) Zipf shares with largest-remainder rounding so the sum is
    exact.  Counts are returned in descending (rank) order.
    """
    if total < n:
        raise ValueError(f"total adds ({total}) must be >= n applets ({n})")
    shares = zipf_shares(n, alpha, shift)
    budget = total - n
    raw = [share * budget for share in shares]
    counts = [int(x) for x in raw]
    remainder = budget - sum(counts)
    fractional = sorted(range(n), key=lambda i: raw[i] - counts[i], reverse=True)
    for i in fractional[:remainder]:
        counts[i] += 1
    return [c + 1 for c in counts]
