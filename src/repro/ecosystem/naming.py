"""Name generation for synthetic services, triggers, actions, and applets.

Names matter for two consumers: the simulated ifttt.com frontend (pages
must read like real pages) and the keyword-based service classifier in
:mod:`repro.analysis.classify`, which plays the role of the authors'
manual categorization.  Each category's vocabulary therefore overlaps
with the classifier's keyword rules, the way real service names do.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.ecosystem.categories import Category
from repro.simcore.rng import Rng

_BRAND_PREFIXES = [
    "Aqua", "Nova", "Zen", "Blue", "Bright", "Echo", "Ever", "Flux", "Halo",
    "Iris", "Jolt", "Kite", "Luma", "Mesa", "Nimbus", "Opal", "Pixel",
    "Quanta", "Rove", "Sona", "Terra", "Ultra", "Vela", "Wisp", "Xeno",
    "Yara", "Zephyr", "Alto", "Brio", "Cedar", "Delta", "Ember", "Fable",
]

#: Per-category noun vocabulary; aligned with Category.example_keywords.
_CATEGORY_NOUNS: Dict[int, List[str]] = {
    1: ["Light", "Camera", "Thermostat", "Lock", "Switch", "Plug", "Doorbell",
        "Garage", "Sensor", "Sprinkler", "Blinds", "Vacuum", "Fridge", "Egg Tray"],
    2: ["Hub", "Home Control", "Bridge", "Integration", "Station"],
    3: ["Band", "Watch", "Tracker", "Fitness", "Sleep"],
    4: ["Car", "Vehicle", "Drive", "Auto"],
    5: ["Phone", "Android", "Battery", "NFC", "Wallpaper", "Ringtone"],
    6: ["Drive", "Storage", "Backup", "File Vault"],
    7: ["Weather", "News", "Stocks", "Sports", "Space", "Deals", "Video"],
    8: ["Feed", "RSS", "Digest", "Recommendation"],
    9: ["Notes", "Reminder", "Todo", "Calendar", "Tasks", "Journal", "List"],
    10: ["Social", "Photo", "Blog", "Share", "Moments", "Stream"],
    11: ["SMS", "Chat", "Messenger", "Team", "Call"],
    12: ["Time", "Location", "Geofence", "Sunrise"],
    13: ["Mail", "Email", "Inbox"],
    14: ["Tools", "Utility", "Labs", "Box"],
}

#: Trigger verb templates per category (rendered with a noun).
_TRIGGER_TEMPLATES: Dict[int, List[str]] = {
    1: ["{noun} turned on", "{noun} turned off", "Motion detected by {noun}",
        "{noun} state changed", "{noun} battery low"],
    2: ["Any device event on {noun}", "Scene started on {noun}"],
    3: ["Daily summary from {noun}", "Goal reached on {noun}", "New sleep logged"],
    4: ["{noun} ignition on", "{noun} low fuel", "{noun} arrived home"],
    5: ["Battery drops below level", "NFC tag scanned", "Phone call ended"],
    6: ["New file in folder", "File updated"],
    7: ["New story published", "Conditions change", "Score update"],
    8: ["New feed item", "New recommendation"],
    9: ["Reminder due", "New task added", "Calendar event starts"],
    10: ["New post by you", "You are tagged", "New photo uploaded"],
    11: ["New message received", "Missed call"],
    12: ["Every day at", "You enter an area", "Sunrise"],
    13: ["Any new email", "New email from", "New attachment"],
    14: ["Event logged", "Button pressed"],
}

_ACTION_TEMPLATES: Dict[int, List[str]] = {
    1: ["Turn {noun} on", "Turn {noun} off", "Set {noun} level", "Blink {noun}"],
    2: ["Run a scene on {noun}", "Control a device via {noun}"],
    3: ["Send notification to {noun}", "Log an activity"],
    4: ["Precondition the {noun}"],
    5: ["Send a notification", "Change wallpaper", "Set ringtone volume"],
    6: ["Upload file", "Append to file"],
    7: ["Save story for later"],
    8: ["Add item to digest"],
    9: ["Add a reminder", "Create a task", "Add calendar event", "Create a note"],
    10: ["Create a post", "Share a photo", "Update status"],
    11: ["Send a message", "Post to channel"],
    12: [],
    13: ["Send an email", "Send yourself an email"],
    14: ["Log event", "Trigger webhook"],
}


def slugify(name: str) -> str:
    """Lower-case, underscore-joined slug of a human name."""
    return re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")


def service_name(cat: Category, index: int, rng: Rng) -> str:
    """A brand-like service name whose vocabulary matches its category."""
    prefix = _BRAND_PREFIXES[index % len(_BRAND_PREFIXES)]
    nouns = _CATEGORY_NOUNS[cat.index]
    noun = nouns[(index // len(_BRAND_PREFIXES)) % len(nouns)]
    serial = index // (len(_BRAND_PREFIXES) * len(nouns))
    suffix = f" {serial + 2}" if serial else ""
    return f"{prefix} {noun}{suffix}"


def trigger_names(cat: Category, service: str, count: int, rng: Rng) -> List[str]:
    """``count`` distinct trigger names for one service."""
    templates = _TRIGGER_TEMPLATES[cat.index] or ["Event on {noun}"]
    noun = service.split()[-1] if service else "device"
    names: List[str] = []
    for i in range(count):
        template = templates[i % len(templates)]
        rendered = template.format(noun=noun)
        serial = i // len(templates)
        names.append(f"{rendered} #{serial + 2}" if serial else rendered)
    return names


def action_names(cat: Category, service: str, count: int, rng: Rng) -> List[str]:
    """``count`` distinct action names for one service."""
    templates = _ACTION_TEMPLATES[cat.index] or ["Do something with {noun}"]
    noun = service.split()[-1] if service else "device"
    names: List[str] = []
    for i in range(count):
        template = templates[i % len(templates)]
        rendered = template.format(noun=noun)
        serial = i // len(templates)
        names.append(f"{rendered} #{serial + 2}" if serial else rendered)
    return names


def applet_name(trigger_name: str, trigger_service: str, action_name: str, action_service: str) -> str:
    """An applet title in the crowdsourced style."""
    return f"If {trigger_name} ({trigger_service}), then {action_name} ({action_service})"


def service_description(cat: Category, name: str) -> str:
    """A one-sentence service description mentioning category keywords.

    The Table 1 category itself is deliberately *not* named: the keyword
    classifier in :mod:`repro.analysis.classify` must recover it from the
    vocabulary, the way the authors classified services manually.
    """
    keywords = ", ".join(cat.example_keywords[:3])
    return f"{name} connects your {keywords} workflows to IFTTT."
