"""The ecosystem generator.

Produces a :class:`~repro.ecosystem.corpus.Corpus` whose final-week
snapshot reproduces the paper's published §3.2 statistics; see the
package docstring for the list.  The pipeline:

1. Apportion services to the 14 categories by Table 1's service shares
   (largest-remainder), seeding each category with its real anchor
   services (Table 3).
2. Apportion the trigger/action universes (1490 / 957) across services,
   weighting trigger-rich and action-rich categories accordingly.
3. Draw applet add counts from the fitted shifted-Zipf law (Figure 3).
4. Assign each applet a (trigger-category, action-category) cell by
   greedy add-mass allocation against the IPF-fitted Figure 2 matrix, so
   the realized *add-weighted* marginals match Table 1.
5. Pick concrete services/endpoints within the cell (anchors carry the
   Table 3 weights), an author (user channels with heavy-tailed
   contribution; ~2% of applets are service-made but they skew popular,
   carrying ~14% of adds), and a creation week (§3.2 growth).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ecosystem.anchors import ANCHOR_SERVICES, AnchorService
from repro.ecosystem.categories import CATEGORIES
from repro.ecosystem.corpus import (
    ActionRecord,
    AppletRecord,
    Corpus,
    ServiceRecord,
    TriggerRecord,
)
from repro.ecosystem.growth import FINAL_WEEK, GROWTH_TARGETS, GrowthSchedule, conditional_fraction
from repro.ecosystem.interactions import fit_interaction_matrix
from repro.ecosystem.model import EcosystemParams
from repro.ecosystem.naming import (
    action_names,
    applet_name,
    service_description,
    service_name,
    slugify,
    trigger_names,
)
from repro.ecosystem.popularity import zipf_add_counts
from repro.simcore.rng import Rng

#: How strongly anchors dominate endpoint selection within their category.
ANCHOR_BOOST = 50.0


class _WeightedSampler:
    """O(log n) sampling from a fixed weight vector."""

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        self._cumulative = list(itertools.accumulate(weights))
        if self._cumulative[-1] <= 0:
            raise ValueError("weights must sum to a positive value")

    def sample(self, rng: Rng) -> int:
        target = rng.random() * self._cumulative[-1]
        return bisect.bisect_right(self._cumulative, target)


def _largest_remainder(total: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``total`` integer slots proportionally to ``weights``."""
    weight_sum = float(sum(weights))
    raw = [total * w / weight_sum for w in weights]
    counts = [int(x) for x in raw]
    leftover = total - sum(counts)
    order = sorted(range(len(weights)), key=lambda i: raw[i] - counts[i], reverse=True)
    for i in order[:leftover]:
        counts[i] += 1
    return counts


class EcosystemGenerator:
    """Generates calibrated synthetic IFTTT corpora."""

    def __init__(
        self,
        params: Optional[EcosystemParams] = None,
        schedule: Optional[GrowthSchedule] = None,
    ) -> None:
        self.params = params or EcosystemParams()
        self.schedule = schedule or GrowthSchedule()
        self.rng = Rng(seed=self.params.seed, name="ecosystem")

    # -- public API ---------------------------------------------------------------

    def generate(self) -> Corpus:
        """Build the full corpus."""
        corpus = Corpus(final_week=FINAL_WEEK)
        by_category = self._generate_services(corpus)
        self._apportion_endpoints(corpus, by_category)
        self._generate_applets(corpus, by_category)
        return corpus

    # -- services --------------------------------------------------------------------

    def _generate_services(self, corpus: Corpus) -> Dict[int, List[ServiceRecord]]:
        rng = self.rng.fork("services")
        counts = _largest_remainder(
            self.params.n_services, [cat.pct_services for cat in CATEGORIES]
        )
        by_category: Dict[int, List[ServiceRecord]] = {cat.index: [] for cat in CATEGORIES}
        anchors_by_cat: Dict[int, List[AnchorService]] = {}
        for anchor in ANCHOR_SERVICES:
            anchors_by_cat.setdefault(anchor.category_index, []).append(anchor)

        for cat, count in zip(CATEGORIES, counts):
            anchors = anchors_by_cat.get(cat.index, [])
            for anchor in anchors[:count]:
                record = ServiceRecord(
                    slug=slugify(anchor.name),
                    name=anchor.name,
                    description=service_description(cat, anchor.name),
                    category_index=cat.index,
                    created_week=0,  # market leaders predate the study window
                )
                corpus.add_service(record)
                by_category[cat.index].append(record)
            for i in range(max(0, count - len(anchors))):
                name = service_name(cat, i, rng)
                slug = slugify(f"{name} c{cat.index}")
                record = ServiceRecord(
                    slug=slug,
                    name=name,
                    description=service_description(cat, name),
                    category_index=cat.index,
                    created_week=self.schedule.assign_created_week(rng, GROWTH_TARGETS["services"]),
                )
                corpus.add_service(record)
                by_category[cat.index].append(record)
        return by_category

    # -- endpoints ---------------------------------------------------------------------

    def _apportion_endpoints(
        self, corpus: Corpus, by_category: Dict[int, List[ServiceRecord]]
    ) -> None:
        rng = self.rng.fork("endpoints")
        anchors = {slugify(a.name): a for a in ANCHOR_SERVICES}
        services = list(corpus.services.values())

        # Anchor endpoints are fixed by Table 3.
        for service in services:
            anchor = anchors.get(service.slug)
            if anchor is None:
                continue
            for name in anchor.triggers:
                service.triggers.append(
                    TriggerRecord(
                        slug=f"{service.slug}.{slugify(name)}",
                        name=name,
                        service_slug=service.slug,
                        created_week=0,
                    )
                )
            for name in anchor.actions:
                service.actions.append(
                    ActionRecord(
                        slug=f"{service.slug}.{slugify(name)}",
                        name=name,
                        service_slug=service.slug,
                        created_week=0,
                    )
                )

        self._distribute_endpoint_counts(corpus, rng, kind="trigger")
        self._distribute_endpoint_counts(corpus, rng, kind="action")

    def _distribute_endpoint_counts(self, corpus: Corpus, rng: Rng, kind: str) -> None:
        services = list(corpus.services.values())
        categories = {cat.index: cat for cat in CATEGORIES}
        if kind == "trigger":
            total = self.params.n_triggers
            existing = sum(len(s.triggers) for s in services)
            def cat_weight(cat):
                return cat.trigger_ac_pct + 1.0
            growth_key = "triggers"
        else:
            total = self.params.n_actions
            existing = sum(len(s.actions) for s in services)
            def cat_weight(cat):
                return cat.action_ac_pct + 0.5
            growth_key = "actions"

        # Baseline: one endpoint per service (actions skipped for
        # time/location, which exposes none — Table 1 shows 0.0%).
        eligible = [
            s for s in services
            if not (kind == "action" and categories[s.category_index].action_ac_pct == 0.0)
        ]
        budget = total - existing
        weights = [cat_weight(categories[s.category_index]) for s in eligible]
        base = [1] * len(eligible)
        budget -= len(eligible)
        if budget < 0:
            base = [0] * len(eligible)
            budget += len(eligible)
        extra = _largest_remainder(max(0, budget), weights)

        def grow(service: ServiceRecord, want_more: int) -> None:
            if want_more <= 0:
                return
            cat = categories[service.category_index]
            endpoints = service.triggers if kind == "trigger" else service.actions
            have = len(endpoints)
            names = (
                trigger_names(cat, service.name, have + want_more, rng)
                if kind == "trigger"
                else action_names(cat, service.name, have + want_more, rng)
            )
            taken = {e.slug for e in endpoints}
            added = 0
            for name in names:
                if added >= want_more:
                    break
                slug = f"{service.slug}.{slugify(name)}"
                if slug in taken:
                    continue
                taken.add(slug)
                week = max(
                    service.created_week,
                    self.schedule.assign_with_fraction(
                        rng,
                        conditional_fraction(
                            GROWTH_TARGETS[growth_key], GROWTH_TARGETS["services"]
                        ),
                    ),
                )
                record_cls = TriggerRecord if kind == "trigger" else ActionRecord
                endpoints.append(
                    record_cls(slug=slug, name=name, service_slug=service.slug, created_week=week)
                )
                added += 1

        for service, base_count, extra_count in zip(eligible, base, extra):
            have = len(service.triggers) if kind == "trigger" else len(service.actions)
            grow(service, base_count + extra_count - have)

        # Top up any remaining deficit (anchor surpluses, slug dedupe) so
        # the universe sizes land exactly on the published totals.
        def current_total() -> int:
            return sum(
                len(s.triggers if kind == "trigger" else s.actions)
                for s in services
            )

        cursor = 0
        while current_total() < total and eligible:
            grow(eligible[cursor % len(eligible)], 1)
            cursor += 1

    # -- applets -----------------------------------------------------------------------------

    def _generate_applets(
        self, corpus: Corpus, by_category: Dict[int, List[ServiceRecord]]
    ) -> None:
        rng = self.rng.fork("applets")
        params = self.params
        n = params.scaled_applets
        add_counts = zipf_add_counts(
            n,
            params.applet_zipf_alpha,
            max(params.scaled_add_count, n),
            shift=params.applet_zipf_shift_frac * n,
        )

        matrix = fit_interaction_matrix()
        cells, targets = self._usable_cells(corpus, matrix)
        total_adds = float(sum(add_counts))
        remaining = [t * total_adds for t in targets]

        trigger_samplers = self._endpoint_samplers(by_category, side="trigger")
        action_samplers = self._endpoint_samplers(by_category, side="action")
        user_sampler = _WeightedSampler(
            [1.0 / ((i + 1) ** params.user_zipf_alpha) for i in range(params.scaled_users)]
        )

        next_id = 100000
        for rank, adds in enumerate(add_counts):
            # Greedy add-mass allocation keeps the realized add-weighted
            # category marginals on Table 1 despite the heavy tail.
            cell_index = max(range(len(cells)), key=lambda i: remaining[i])
            remaining[cell_index] -= adds
            trigger_cat, action_cat = cells[cell_index]

            t_service, trigger = self._pick_endpoint(trigger_samplers[trigger_cat], rng)
            a_service, action = self._pick_endpoint(action_samplers[action_cat], rng)

            author_is_user = not self._service_made(rank, n, rng)
            if author_is_user:
                author = f"user{user_sampler.sample(rng) + 1:06d}"
            else:
                author = t_service.slug
            created_week = (
                0
                if rank < max(1, int(0.05 * n))
                else self.schedule.assign_created_week(rng, GROWTH_TARGETS["applets"])
            )
            name = applet_name(trigger.name, t_service.name, action.name, a_service.name)
            corpus.add_applet(
                AppletRecord(
                    applet_id=next_id,
                    name=name,
                    description=f"{name}. Published on {author}'s channel.",
                    trigger_slug=trigger.slug,
                    trigger_service_slug=t_service.slug,
                    action_slug=action.slug,
                    action_service_slug=a_service.slug,
                    author=author,
                    author_is_user=author_is_user,
                    add_count=adds,
                    created_week=created_week,
                )
            )
            # Sparse six-digit id space, as the paper's enumeration found.
            next_id += 1 if rng.random() < 0.6 else rng.randint(2, 4)

    def _usable_cells(self, corpus: Corpus, matrix: List[List[float]]):
        has_triggers = {cat.index: False for cat in CATEGORIES}
        has_actions = {cat.index: False for cat in CATEGORIES}
        for service in corpus.services.values():
            if service.triggers:
                has_triggers[service.category_index] = True
            if service.actions:
                has_actions[service.category_index] = True
        cells: List[Tuple[int, int]] = []
        targets: List[float] = []
        for i, row in enumerate(matrix):
            for j, weight in enumerate(row):
                if weight > 0 and has_triggers[i + 1] and has_actions[j + 1]:
                    cells.append((i + 1, j + 1))
                    targets.append(weight)
        total = sum(targets)
        return cells, [t / total for t in targets]

    def _endpoint_samplers(
        self, by_category: Dict[int, List[ServiceRecord]], side: str
    ) -> Dict[int, Tuple[List[ServiceRecord], _WeightedSampler]]:
        anchors = {slugify(a.name): a for a in ANCHOR_SERVICES}
        samplers: Dict[int, Tuple[List[ServiceRecord], _WeightedSampler]] = {}
        for cat_index, services in by_category.items():
            candidates = [
                s for s in services if (s.triggers if side == "trigger" else s.actions)
            ]
            if not candidates:
                continue
            weights = []
            for i, service in enumerate(candidates):
                anchor = anchors.get(service.slug)
                if anchor is not None:
                    weight = ANCHOR_BOOST * (
                        anchor.trigger_weight if side == "trigger" else anchor.action_weight
                    )
                    weight = max(weight, 0.05)
                else:
                    weight = 1.0 / ((i + 1) ** 0.8)
                weights.append(weight)
            samplers[cat_index] = (candidates, _WeightedSampler(weights), side)
        return samplers

    def _pick_endpoint(self, sampler_entry, rng: Rng):
        services, sampler, side = sampler_entry
        service = services[sampler.sample(rng)]
        endpoints = service.triggers if side == "trigger" else service.actions
        return service, self._zipf_pick(endpoints, rng)

    @staticmethod
    def _zipf_pick(items, rng: Rng):
        weights = [1.0 / ((i + 1) ** 1.1) for i in range(len(items))]
        total = sum(weights)
        target = rng.random() * total
        cursor = 0.0
        for item, weight in zip(items, weights):
            cursor += weight
            if target < cursor:
                return item
        return items[-1]

    def _service_made(self, rank: int, n: int, rng: Rng) -> bool:
        """Whether this applet is published by a service (not a user).

        Service-made applets are rare (~2% of applets) but
        disproportionately popular (they carry ~14% of adds, leaving 86%
        to user-made applets, per §3.2): the probability of being
        service-made decays with popularity rank.
        """
        if rank < max(1, int(0.001 * n)):
            probability = 0.20
        elif rank < max(1, int(0.01 * n)):
            probability = 0.08
        else:
            probability = 0.012
        return rng.bernoulli(probability)
