"""The 14 service categories of Table 1, with their published marginals.

The percentages below are transcribed from Table 1 of the paper: the
share of services in each category, and the category's share of trigger
and action add count (the total add count of applets whose trigger /
action belongs to a service of the category).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Category:
    """One Table 1 service category."""

    index: int
    name: str
    short: str
    pct_services: float
    trigger_ac_pct: float
    action_ac_pct: float
    iot: bool
    example_keywords: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.index}. {self.name}"


CATEGORIES: List[Category] = [
    Category(1, "Smarthome devices", "smarthome", 37.7, 6.4, 7.9, True,
             ("light", "camera", "thermostat", "lock", "switch", "plug", "doorbell", "garage")),
    Category(2, "Smarthome hub / integration solution", "hub", 9.3, 0.8, 1.0, True,
             ("hub", "smartthings", "home control", "integration", "bridge")),
    Category(3, "Wearables", "wearables", 2.7, 1.6, 1.0, True,
             ("watch", "band", "tracker", "fitness", "wearable", "sleep")),
    Category(4, "Connected cars", "cars", 2.0, 0.5, 0.1, True,
             ("car", "vehicle", "drive", "auto", "garage door opener")),
    Category(5, "Smartphones", "smartphone", 3.7, 11.0, 13.8, False,
             ("phone", "android", "ios", "battery", "nfc", "wallpaper", "ringtone")),
    Category(6, "Cloud storage", "storage", 2.5, 0.6, 13.6, False,
             ("drive", "dropbox", "storage", "file", "backup")),
    Category(7, "Online service and content providers", "online", 8.8, 20.0, 1.9, False,
             ("weather", "news", "video", "stock", "sports", "deals", "space")),
    Category(8, "RSS feeds, online recommendation", "rss", 2.2, 9.8, 0.1, False,
             ("rss", "feed", "recommendation", "digest")),
    Category(9, "Personal data & schedule manager", "personal", 10.3, 11.2, 27.4, False,
             ("note", "reminder", "todo", "calendar", "task", "list", "journal")),
    Category(10, "Social networking, blogging, photo/video sharing", "social", 5.6, 17.7, 17.3, False,
             ("social", "photo", "blog", "share", "post", "tweet", "video sharing")),
    Category(11, "SMS, instant messaging, team collaboration, VoIP", "messaging", 4.7, 0.8, 3.1, False,
             ("sms", "message", "chat", "voip", "call", "team")),
    Category(12, "Time and location", "timeloc", 1.2, 14.1, 0.0, False,
             ("time", "date", "location", "geofence", "sunrise")),
    Category(13, "Email", "email", 1.0, 4.4, 12.8, False,
             ("email", "mail", "inbox")),
    Category(14, "Other", "other", 8.3, 1.3, 0.2, False,
             ("misc", "tool", "utility")),
]

_BY_INDEX: Dict[int, Category] = {cat.index: cat for cat in CATEGORIES}


def category(index: int) -> Category:
    """Look up a category by its Table 1 index (1-14)."""
    try:
        return _BY_INDEX[index]
    except KeyError:
        raise KeyError(f"category index must be 1..14, got {index}") from None


def iot_categories() -> List[Category]:
    """Categories 1-4: the IoT-related half of the ecosystem."""
    return [cat for cat in CATEGORIES if cat.iot]


def iot_service_share() -> float:
    """Published share of services that are IoT-related (51.7%)."""
    return sum(cat.pct_services for cat in iot_categories())


def service_share_weights() -> List[float]:
    """Per-category service-count weights (sums to ~100)."""
    return [cat.pct_services for cat in CATEGORIES]


def trigger_addcount_weights() -> List[float]:
    """Per-category trigger add-count weights."""
    return [cat.trigger_ac_pct for cat in CATEGORIES]


def action_addcount_weights() -> List[float]:
    """Per-category action add-count weights."""
    return [cat.action_ac_pct for cat in CATEGORIES]
