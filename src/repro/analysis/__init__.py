"""The §3.2 analyses over crawled snapshots.

Everything here consumes :class:`~repro.crawler.snapshot.CrawlSnapshot`
objects (what the crawler scraped), not the generator's ground truth —
the same separation the paper had between collection and analysis.

* :mod:`repro.analysis.classify` — keyword service classification into
  the 14 Table 1 categories (standing in for the authors' manual pass).
* :mod:`repro.analysis.tables` — Tables 1, 2, and 3.
* :mod:`repro.analysis.heatmap` — Figure 2's interaction matrix.
* :mod:`repro.analysis.distributions` — Figure 3's add-count tail and
  the user-contribution tail.
* :mod:`repro.analysis.usercontrib` — user channels vs services (§3.2
  "Applet Properties").
* :mod:`repro.analysis.growthstats` — the weekly growth paragraph.
"""

from repro.analysis.classify import ServiceClassifier
from repro.analysis.tables import table1, table2, table3, UR_ET_AL_DATASET
from repro.analysis.heatmap import interaction_heatmap, heatmap_intensity
from repro.analysis.distributions import (
    ranked_add_counts,
    add_count_top_shares,
    log_rank_series,
)
from repro.analysis.usercontrib import user_contribution_stats, UserContribution
from repro.analysis.growthstats import growth_percentages, weekly_series
from repro.analysis.iotstats import iot_shares, IotShares
from repro.analysis.churn import churn_between, weekly_churn, ChurnReport
from repro.analysis.permissions_study import run_permission_study, PermissionStudyResult
from repro.analysis.history import fit_exponential, GrowthFit, STUDY_POINTS

__all__ = [
    "ServiceClassifier",
    "table1",
    "table2",
    "table3",
    "UR_ET_AL_DATASET",
    "interaction_heatmap",
    "heatmap_intensity",
    "ranked_add_counts",
    "add_count_top_shares",
    "log_rank_series",
    "user_contribution_stats",
    "UserContribution",
    "growth_percentages",
    "weekly_series",
    "iot_shares",
    "IotShares",
    "churn_between",
    "weekly_churn",
    "ChurnReport",
    "run_permission_study",
    "PermissionStudyResult",
    "fit_exponential",
    "GrowthFit",
    "STUDY_POINTS",
]
