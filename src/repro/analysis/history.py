"""The public-applet count across the three measurement studies.

§3.2: "We also notice the significant increase of the applet size
compared to prior studies: 67K in 6/2013 [27], 224K in 9/2015 [28], and
~320K in our dataset [3/2017]."  This module fits that trajectory and
exposes growth-rate/doubling-time/projection helpers — the longitudinal
context for the paper's "fast growth of the IFTTT ecosystem" conclusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

#: (decimal year, public applet count, source)
STUDY_POINTS: List[Tuple[float, int, str]] = [
    (2013.0 + 5.5 / 12.0, 67_000, "Ur et al. CHI'14 [27]"),
    (2015.0 + 8.5 / 12.0, 224_000, "Ur et al. CHI'16 [28]"),
    (2017.0 + 2.8 / 12.0, 320_000, "this paper (3/25/2017 snapshot)"),
]


@dataclass(frozen=True)
class GrowthFit:
    """An exponential fit ``count(t) = exp(a + b * t)``."""

    a: float
    b: float

    @property
    def annual_growth(self) -> float:
        """Relative growth per year, e.g. 0.5 = +50%/year."""
        return math.exp(self.b) - 1.0

    @property
    def doubling_time_years(self) -> float:
        """Years for the applet count to double under the fit."""
        if self.b <= 0:
            return math.inf
        return math.log(2.0) / self.b

    def project(self, year: float) -> int:
        """Projected applet count at a decimal year."""
        return int(round(math.exp(self.a + self.b * year)))


def fit_exponential(points: List[Tuple[float, int, str]] = STUDY_POINTS) -> GrowthFit:
    """Least-squares fit of log(count) against year."""
    if len(points) < 2:
        raise ValueError("need at least two study points")
    xs = [year for year, _, _ in points]
    ys = [math.log(count) for _, count, _ in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("study points must span more than one year value")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    b = sxy / sxx
    a = mean_y - b * mean_x
    return GrowthFit(a=a, b=b)


def fit_residuals(points: List[Tuple[float, int, str]] = STUDY_POINTS) -> List[float]:
    """Relative error of the fit at each study point (for sanity checks)."""
    fit = fit_exponential(points)
    return [
        (fit.project(year) - count) / count for year, count, _ in points
    ]
