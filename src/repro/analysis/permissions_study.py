"""Ecosystem-scale permission study (§6, quantified over the §3 corpus).

§6's permission observation is anecdotal (the Gmail example).  With the
generated corpus we can quantify it across the whole ecosystem: sample a
user population installing applets with popularity-weighted preferences,
grant scopes under IFTTT's coarse service-level model and under the
per-endpoint alternative, and measure the excess privilege users carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.ecosystem.corpus import Corpus, ServiceRecord
from repro.simcore.rng import Rng

#: Extra provider-side scopes per category beyond the IFTTT-visible
#: endpoints (the Gmail example: delete/manage exist even though no
#: trigger or action needs them).
_EXTRA_SCOPES_BY_CATEGORY: Dict[int, int] = {
    6: 2,    # cloud storage: delete, share
    9: 1,    # personal managers: manage
    10: 3,   # social: post-as-you, friends list, profile
    11: 2,   # messaging: contacts, call history
    13: 3,   # email: delete, send-as, manage (the §6 example)
}


def scope_universe(service: ServiceRecord) -> int:
    """Number of grantable scopes a service defines.

    One read scope per trigger, one write scope per action, plus the
    category's provider-side extras.
    """
    return (
        len(service.triggers)
        + len(service.actions)
        + _EXTRA_SCOPES_BY_CATEGORY.get(service.category_index, 0)
    )


@dataclass
class PermissionStudyResult:
    """Aggregate excess-privilege statistics over the sampled population."""

    n_users: int
    mean_installs: float
    mean_scopes_needed: float
    mean_scopes_granted_coarse: float
    mean_excess_ratio: float
    worst_excess_ratio: float
    users_with_excess: float

    @property
    def mean_overgrant_factor(self) -> float:
        """How many times more scopes the coarse model grants than needed."""
        if self.mean_scopes_needed == 0:
            return 0.0
        return self.mean_scopes_granted_coarse / self.mean_scopes_needed


def run_permission_study(
    corpus: Corpus,
    n_users: int = 500,
    mean_installs: float = 5.0,
    seed: int = 11,
) -> PermissionStudyResult:
    """Sample installing users and measure coarse-model excess privilege.

    Users install a Poisson-distributed number of applets (at least one),
    chosen with probability proportional to applet add count — matching
    how installs actually concentrate on popular applets.
    """
    if n_users <= 0:
        raise ValueError(f"n_users must be positive, got {n_users}")
    rng = Rng(seed=seed, name="permission-study")
    applets = corpus.applets_at()
    if not applets:
        raise ValueError("corpus has no applets")
    weights = [a.add_count for a in applets]

    import bisect
    import itertools

    cumulative = list(itertools.accumulate(weights))
    total_weight = cumulative[-1]

    def sample_applet():
        return applets[bisect.bisect_right(cumulative, rng.random() * total_weight)]

    total_needed = 0
    total_granted = 0
    excess_ratios: List[float] = []
    users_with_excess = 0
    total_installs = 0
    for _ in range(n_users):
        installs = max(1, rng.poisson(mean_installs))
        total_installs += installs
        needed: Set[Tuple[str, str]] = set()
        touched_services: Set[str] = set()
        for _ in range(installs):
            applet = sample_applet()
            needed.add((applet.trigger_service_slug, applet.trigger_slug))
            needed.add((applet.action_service_slug, applet.action_slug))
            touched_services.add(applet.trigger_service_slug)
            touched_services.add(applet.action_service_slug)
        granted = sum(scope_universe(corpus.service(slug)) for slug in touched_services)
        total_needed += len(needed)
        total_granted += granted
        excess = max(0, granted - len(needed))
        excess_ratios.append(excess / granted if granted else 0.0)
        if excess > 0:
            users_with_excess += 1

    return PermissionStudyResult(
        n_users=n_users,
        mean_installs=total_installs / n_users,
        mean_scopes_needed=total_needed / n_users,
        mean_scopes_granted_coarse=total_granted / n_users,
        mean_excess_ratio=sum(excess_ratios) / n_users,
        worst_excess_ratio=max(excess_ratios),
        users_with_excess=users_with_excess / n_users,
    )
