"""The headline IoT statistics: 52% of services, 16% of applet usage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.analysis.classify import ServiceClassifier
from repro.crawler.snapshot import CrawlSnapshot


@dataclass(frozen=True)
class IotShares:
    """IoT shares of the ecosystem (abstract + §3.2)."""

    iot_service_fraction: float
    iot_add_fraction: float
    iot_trigger_add_fraction: float
    iot_action_add_fraction: float


def iot_shares(
    snapshot: CrawlSnapshot, classifier: Optional[ServiceClassifier] = None
) -> IotShares:
    """Compute the IoT shares from a crawled snapshot.

    An applet counts toward IoT usage when *either* its trigger or its
    action service is IoT-related (categories 1-4) — the paper's
    definition of "IoT applets".
    """
    classifier = classifier or ServiceClassifier()
    categories = classifier.classify_all(snapshot.services.values())
    iot: Set[str] = {slug for slug, index in categories.items() if index <= 4}
    total_adds = sum(a.add_count for a in snapshot.applets.values()) or 1
    iot_adds = trigger_adds = action_adds = 0
    for applet in snapshot.applets.values():
        is_trigger_iot = applet.trigger_service_slug in iot
        is_action_iot = applet.action_service_slug in iot
        if is_trigger_iot or is_action_iot:
            iot_adds += applet.add_count
        if is_trigger_iot:
            trigger_adds += applet.add_count
        if is_action_iot:
            action_adds += applet.add_count
    return IotShares(
        iot_service_fraction=len(iot) / max(1, len(snapshot.services)),
        iot_add_fraction=iot_adds / total_adds,
        iot_trigger_add_fraction=trigger_adds / total_adds,
        iot_action_add_fraction=action_adds / total_adds,
    )
