"""§3.2 "Applet Properties": user channels and crowdsourced contribution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crawler.snapshot import CrawlSnapshot
from repro.ecosystem.popularity import top_share


@dataclass(frozen=True)
class UserContribution:
    """The §3.2 user-contribution statistics."""

    user_channels: int
    user_made_applet_fraction: float
    user_made_add_fraction: float
    top1pct_user_applet_share: float
    top10pct_user_applet_share: float

    def dominated_by_users(self) -> bool:
        """The paper's conclusion: user-made applets dominate usage."""
        return self.user_made_applet_fraction > 0.9 and self.user_made_add_fraction > 0.5


def user_contribution_stats(snapshot: CrawlSnapshot) -> UserContribution:
    """Compute the §3.2 contribution statistics from one snapshot."""
    applets = list(snapshot.applets.values())
    if not applets:
        raise ValueError("snapshot has no applets")
    per_user: Dict[str, int] = {}
    user_made = 0
    user_adds = 0
    total_adds = 0
    for applet in applets:
        total_adds += applet.add_count
        if applet.author_is_user:
            user_made += 1
            user_adds += applet.add_count
            per_user[applet.author] = per_user.get(applet.author, 0) + 1
    published_counts = list(per_user.values())
    return UserContribution(
        user_channels=len(per_user),
        user_made_applet_fraction=user_made / len(applets),
        user_made_add_fraction=user_adds / total_adds if total_adds else 0.0,
        top1pct_user_applet_share=top_share(published_counts, 0.01),
        top10pct_user_applet_share=top_share(published_counts, 0.10),
    )
