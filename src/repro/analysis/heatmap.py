"""Figure 2: the trigger-category × action-category heat map."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.classify import ServiceClassifier
from repro.crawler.snapshot import CrawlSnapshot
from repro.ecosystem.categories import CATEGORIES


def interaction_heatmap(
    snapshot: CrawlSnapshot, classifier: Optional[ServiceClassifier] = None
) -> List[List[int]]:
    """The 14×14 add-count matrix: cell [i][j] sums the add count of
    applets whose trigger service is in category i+1 and action service
    in category j+1 (Figure 2's color intensity)."""
    classifier = classifier or ServiceClassifier()
    categories = classifier.classify_all(snapshot.services.values())
    n = len(CATEGORIES)
    matrix = [[0] * n for _ in range(n)]
    for applet in snapshot.applets.values():
        i = categories.get(applet.trigger_service_slug, 14) - 1
        j = categories.get(applet.action_service_slug, 14) - 1
        matrix[i][j] += applet.add_count
    return matrix


def heatmap_intensity(matrix: List[List[int]]) -> List[List[float]]:
    """Normalize a heat map to [0, 1] by its maximum cell."""
    peak = max((cell for row in matrix for cell in row), default=0)
    if peak == 0:
        return [[0.0] * len(matrix[0]) for _ in matrix]
    return [[cell / peak for cell in row] for row in matrix]


def row_sums(matrix: List[List[int]]) -> List[int]:
    """Per-trigger-category totals (Table 1's trigger AC marginals)."""
    return [sum(row) for row in matrix]


def col_sums(matrix: List[List[int]]) -> List[int]:
    """Per-action-category totals (Table 1's action AC marginals)."""
    return [sum(matrix[i][j] for i in range(len(matrix))) for j in range(len(matrix[0]))]


def render_ascii(matrix: List[List[int]], shades: str = " .:-=+*#%@") -> str:
    """A terminal rendering of the heat map (log-scaled shading)."""
    import math

    peak = max((cell for row in matrix for cell in row), default=0)
    if peak == 0:
        return "(empty heat map)"
    lines = ["    " + " ".join(f"{j + 1:>2}" for j in range(len(matrix[0])))]
    for i, row in enumerate(matrix):
        cells = []
        for cell in row:
            if cell <= 0:
                cells.append(" ")
            else:
                level = math.log1p(cell) / math.log1p(peak)
                cells.append(shades[min(len(shades) - 1, int(level * (len(shades) - 1)))])
        lines.append(f"{i + 1:>3} " + "  ".join(cells))
    return "\n".join(lines)
