"""Keyword-based service classification.

"For each service, we examine its service description, trigger list,
action list, and its external website if needed.  We then classify the
service into one of the 13 categories ... based on our domain knowledge.
Given the number of services is moderate (~400), the classification was
done manually to ensure its accuracy." (§3.2)

Manual classification is replaced by a transparent keyword scorer over
the same evidence (name, description, trigger/action names).  Ground
truth lives in the generator, so ``tests/test_analysis.py`` measures the
classifier's accuracy directly — it must stay high for the Table 1
reproduction to be meaningful.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.crawler.snapshot import CrawledService

#: Per-category keyword lists (lowercase).  Order matters only for ties.
_KEYWORDS: Dict[int, Tuple[str, ...]] = {
    1: ("light", "lamp", "camera", "thermostat", "lock", "switch", "plug",
        "doorbell", "garage", "sensor", "sprinkler", "blinds", "vacuum",
        "fridge", "egg", "alexa", "echo", "speaker", "smoke", "alarm", "bulb",
        "motion", "hue", "lifx", "wemo", "nest", "assistant"),
    2: ("hub", "smartthings", "home control", "bridge", "integration",
        "scene", "station", "harmony"),
    3: ("watch", "band", "tracker", "fitness", "wearable", "sleep", "workout",
        "steps", "fitbit", "jawbone", "activity"),
    4: ("car", "vehicle", "ignition", "fuel", "drive ", "automatic", "bmw"),
    5: ("phone", "android", "battery", "nfc", "wallpaper", "ringtone", "ios",
        "call ended", "device"),
    6: ("storage", "file", "backup", "upload", "folder", "vault", "dropbox",
        "document"),
    7: ("weather", "news", "stock", "sports", "video", "deals", "space",
        "story", "article", "forecast", "score", "channel", "picture of the day"),
    8: ("rss", "feed", "digest", "recommendation"),
    9: ("note", "reminder", "todo", "to-do", "calendar", "task", "journal",
        "list", "spreadsheet", "row", "sheet"),
    10: ("social", "photo", "blog", "share", "post", "tweet", "status",
         "follower", "tagged", "instagram", "facebook", "twitter", "moments",
         "stream"),
    11: ("sms", "message", "chat", "voip", "team", "messenger", "slack",
         "skype", "channel post"),
    12: ("time", "location", "geofence", "sunrise", "every day", "area",
         "date"),
    13: ("email", "mail", "inbox", "attachment", "gmail"),
    14: ("tool", "utility", "webhook", "labs", "box", "misc"),
}

#: Categories whose keywords are high-precision: a name hit decides.
_NAME_WEIGHT = 4.0
_ENDPOINT_WEIGHT = 1.0
_DESCRIPTION_WEIGHT = 2.0


class ServiceClassifier:
    """Scores a service's text evidence against category vocabularies."""

    def __init__(self, keywords: Dict[int, Tuple[str, ...]] = _KEYWORDS) -> None:
        self.keywords = keywords

    def classify(self, service: CrawledService) -> int:
        """The best-scoring Table 1 category index for a crawled service."""
        name = service.name.lower()
        description = service.description.lower()
        endpoints = " ".join(
            entry["name"].lower()
            for entry in list(service.triggers) + list(service.actions)
        )
        scores = {index: 0.0 for index in self.keywords}
        for index, words in self.keywords.items():
            for word in words:
                if word in name:
                    scores[index] += _NAME_WEIGHT * len(word.split())
                if word in description:
                    scores[index] += _DESCRIPTION_WEIGHT * len(word.split())
                scores[index] += _ENDPOINT_WEIGHT * endpoints.count(word)
        best = max(scores, key=lambda index: (scores[index], -index))
        if scores[best] == 0:
            return 14  # Other
        return best

    def classify_all(self, services: Iterable[CrawledService]) -> Dict[str, int]:
        """Category index per service slug."""
        return {service.slug: self.classify(service) for service in services}

    def accuracy(self, services: Iterable[CrawledService], truth: Dict[str, int]) -> float:
        """Fraction of services classified into their ground-truth category."""
        services = list(services)
        if not services:
            raise ValueError("no services to classify")
        hits = sum(
            1 for service in services if self.classify(service) == truth.get(service.slug)
        )
        return hits / len(services)

    def confusion(
        self, services: Iterable[CrawledService], truth: Dict[str, int]
    ) -> Dict[Tuple[int, int], int]:
        """(true, predicted) -> count, for classifier diagnostics."""
        table: Dict[Tuple[int, int], int] = {}
        for service in services:
            key = (truth.get(service.slug, 14), self.classify(service))
            table[key] = table.get(key, 0) + 1
        return table
