"""Cross-snapshot churn: what changed between two crawls.

The paper reports aggregate growth; with 25 weekly snapshots the natural
next question (and an easy win of the longitudinal dataset) is *churn* —
which services/endpoints/applets appeared or disappeared week over week,
and where the new add count accrued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crawler.snapshot import CrawlSnapshot
from repro.crawler.store import SnapshotStore


@dataclass
class ChurnReport:
    """Differences between an earlier and a later snapshot."""

    earlier_week: int
    later_week: int
    services_added: List[str]
    services_removed: List[str]
    triggers_added: int
    actions_added: int
    applets_added: List[int]
    applets_removed: List[int]
    add_count_delta: int
    top_gainers: List[Tuple[int, str, int]]  # (applet_id, name, gained adds)

    @property
    def applet_birth_rate(self) -> float:
        """New applets per week between the snapshots."""
        weeks = max(1, self.later_week - self.earlier_week)
        return len(self.applets_added) / weeks


def churn_between(earlier: CrawlSnapshot, later: CrawlSnapshot, top_k: int = 10) -> ChurnReport:
    """Compute the churn report between two snapshots of one campaign."""
    if earlier.week >= later.week:
        raise ValueError(
            f"need earlier.week < later.week, got {earlier.week} >= {later.week}"
        )
    early_services = set(earlier.services)
    late_services = set(later.services)

    def endpoint_count(snapshot: CrawlSnapshot, kind: str) -> int:
        return sum(
            len(getattr(s, kind)) for s in snapshot.services.values()
        )

    early_applets = set(earlier.applets)
    late_applets = set(later.applets)
    gains: List[Tuple[int, str, int]] = []
    for applet_id in early_applets & late_applets:
        gained = later.applets[applet_id].add_count - earlier.applets[applet_id].add_count
        if gained > 0:
            gains.append((applet_id, later.applets[applet_id].name, gained))
    gains.sort(key=lambda entry: entry[2], reverse=True)

    return ChurnReport(
        earlier_week=earlier.week,
        later_week=later.week,
        services_added=sorted(late_services - early_services),
        services_removed=sorted(early_services - late_services),
        triggers_added=endpoint_count(later, "triggers") - endpoint_count(earlier, "triggers"),
        actions_added=endpoint_count(later, "actions") - endpoint_count(earlier, "actions"),
        applets_added=sorted(late_applets - early_applets),
        applets_removed=sorted(early_applets - late_applets),
        add_count_delta=later.summary()["add_count"] - earlier.summary()["add_count"],
        top_gainers=gains[:top_k],
    )


def weekly_churn(store: SnapshotStore, top_k: int = 5) -> List[ChurnReport]:
    """Churn reports between each pair of consecutive archived snapshots."""
    weeks = store.weeks()
    return [
        churn_between(store.get(a), store.get(b), top_k=top_k)
        for a, b in zip(weeks, weeks[1:])
    ]
