"""Figure 3: the applet add-count distribution."""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.crawler.snapshot import CrawlSnapshot
from repro.ecosystem.popularity import top_share


def ranked_add_counts(snapshot: CrawlSnapshot) -> List[int]:
    """Add counts sorted descending (Figure 3's Y values by rank)."""
    return sorted((a.add_count for a in snapshot.applets.values()), reverse=True)


def add_count_top_shares(
    snapshot: CrawlSnapshot, fractions: Tuple[float, ...] = (0.01, 0.10)
) -> Dict[float, float]:
    """The paper's headline tail statistics (top 1% → 84.1%, top 10% → 97.6%)."""
    counts = [a.add_count for a in snapshot.applets.values()]
    return {fraction: top_share(counts, fraction) for fraction in fractions}


def log_rank_series(
    snapshot: CrawlSnapshot, points_per_decade: int = 10
) -> List[Tuple[int, int]]:
    """(rank, add_count) samples at log-spaced ranks — Figure 3's curve.

    Log-spaced sampling keeps the series small regardless of corpus size
    while preserving the visual shape on log-log axes.
    """
    ranked = ranked_add_counts(snapshot)
    if not ranked:
        return []
    series: List[Tuple[int, int]] = []
    max_rank = len(ranked)
    decades = math.ceil(math.log10(max_rank)) if max_rank > 1 else 1
    seen = set()
    for step in range(decades * points_per_decade + 1):
        rank = int(round(10 ** (step / points_per_decade)))
        rank = min(max(1, rank), max_rank)
        if rank not in seen:
            seen.add(rank)
            series.append((rank, ranked[rank - 1]))
    return series
