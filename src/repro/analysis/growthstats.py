"""The §3.2 growth paragraph: ecosystem trajectories across snapshots."""

from __future__ import annotations

from typing import Dict, List

from repro.crawler.store import SnapshotStore


def growth_percentages(store: SnapshotStore) -> Dict[str, float]:
    """First-to-last growth of each headline count, in percent.

    The paper reports +11% services, +31% triggers, +27% actions, +19%
    add count between 11/24/2016 and 4/1/2017.
    """
    return {key: 100.0 * value for key, value in store.growth().items()}


def weekly_series(store: SnapshotStore, key: str) -> List[int]:
    """One headline count per archived week (for trend plots)."""
    series = []
    for summary in store.weekly_summaries():
        if key not in summary:
            raise KeyError(f"unknown summary key {key!r}")
        series.append(summary[key])
    return series


def monotonically_growing(store: SnapshotStore, key: str, slack: float = 0.02) -> bool:
    """Whether a count grows (within slack) week over week.

    §3.2: "services and applets kept growing steadily."
    """
    series = weekly_series(store, key)
    return all(
        later >= earlier * (1.0 - slack) for earlier, later in zip(series, series[1:])
    )
