"""Tables 1, 2, and 3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.classify import ServiceClassifier
from repro.crawler.snapshot import CrawlSnapshot
from repro.crawler.store import SnapshotStore
from repro.ecosystem.categories import CATEGORIES


@dataclass(frozen=True)
class Table1Row:
    """One category row: service share and add-count shares."""

    category_index: int
    category_name: str
    pct_services: float
    trigger_ac_pct: float
    action_ac_pct: float


def table1(
    snapshot: CrawlSnapshot, classifier: Optional[ServiceClassifier] = None
) -> List[Table1Row]:
    """Reproduce Table 1 from one crawled snapshot.

    Services are classified by keyword (standing in for the authors'
    manual pass); trigger/action add-count shares aggregate each applet's
    add count onto its trigger/action service's category.
    """
    classifier = classifier or ServiceClassifier()
    categories = classifier.classify_all(snapshot.services.values())
    n_services = len(snapshot.services)
    total_adds = sum(a.add_count for a in snapshot.applets.values()) or 1
    service_counts = {cat.index: 0 for cat in CATEGORIES}
    trigger_adds = {cat.index: 0 for cat in CATEGORIES}
    action_adds = {cat.index: 0 for cat in CATEGORIES}
    for slug, index in categories.items():
        service_counts[index] += 1
    for applet in snapshot.applets.values():
        trigger_adds[categories.get(applet.trigger_service_slug, 14)] += applet.add_count
        action_adds[categories.get(applet.action_service_slug, 14)] += applet.add_count
    return [
        Table1Row(
            category_index=cat.index,
            category_name=cat.name,
            pct_services=100.0 * service_counts[cat.index] / n_services,
            trigger_ac_pct=100.0 * trigger_adds[cat.index] / total_adds,
            action_ac_pct=100.0 * action_adds[cat.index] / total_adds,
        )
        for cat in CATEGORIES
    ]


#: The comparison dataset of Ur et al. (CHI'16 note, ref [28]) from Table 2.
UR_ET_AL_DATASET: Dict[str, object] = {
    "applets": 224_000,
    "channels": 220,
    "triggers": 768,
    "actions": 368,
    "adoptions": 12_000_000,
    "applet_contributors": 106_000,
    "snapshots": 1,
    "duration": "Sep 2015",
}


def table2(store: SnapshotStore, contributors: int) -> Dict[str, Dict[str, object]]:
    """Reproduce Table 2: our campaign vs the dataset of Ur et al. [28]."""
    last = store.last().summary()
    ours: Dict[str, object] = {
        "applets": last["applets"],
        "channels": last["services"],
        "triggers": last["triggers"],
        "actions": last["actions"],
        "adoptions": last["add_count"],
        "applet_contributors": contributors,
        "snapshots": len(store),
        "duration": f"{store.first().date} to {store.last().date}",
    }
    return {"ours": ours, "ur_et_al": dict(UR_ET_AL_DATASET)}


@dataclass(frozen=True)
class Table3:
    """Top IoT trigger/action services, triggers, and actions."""

    top_trigger_services: List[tuple]
    top_action_services: List[tuple]
    top_triggers: List[tuple]
    top_actions: List[tuple]


def table3(
    snapshot: CrawlSnapshot,
    classifier: Optional[ServiceClassifier] = None,
    k: int = 7,
) -> Table3:
    """Reproduce Table 3: top-k IoT entities by add count.

    Entries are ``(name, add_count)`` for services and
    ``(endpoint_name, service_name, add_count)`` for triggers/actions.
    """
    classifier = classifier or ServiceClassifier()
    categories = classifier.classify_all(snapshot.services.values())
    iot = {slug for slug, index in categories.items() if index <= 4}

    trigger_service_adds: Dict[str, int] = {}
    action_service_adds: Dict[str, int] = {}
    trigger_adds: Dict[tuple, int] = {}
    action_adds: Dict[tuple, int] = {}
    for applet in snapshot.applets.values():
        if applet.trigger_service_slug in iot:
            trigger_service_adds[applet.trigger_service_slug] = (
                trigger_service_adds.get(applet.trigger_service_slug, 0) + applet.add_count
            )
            key = (applet.trigger_name, applet.trigger_service_slug)
            trigger_adds[key] = trigger_adds.get(key, 0) + applet.add_count
        if applet.action_service_slug in iot:
            action_service_adds[applet.action_service_slug] = (
                action_service_adds.get(applet.action_service_slug, 0) + applet.add_count
            )
            key = (applet.action_name, applet.action_service_slug)
            action_adds[key] = action_adds.get(key, 0) + applet.add_count

    def service_name(slug: str) -> str:
        service = snapshot.services.get(slug)
        return service.name if service else slug

    def top_services(adds: Dict[str, int]) -> List[tuple]:
        ranked = sorted(adds.items(), key=lambda kv: kv[1], reverse=True)[:k]
        return [(service_name(slug), count) for slug, count in ranked]

    def top_endpoints(adds: Dict[tuple, int]) -> List[tuple]:
        ranked = sorted(adds.items(), key=lambda kv: kv[1], reverse=True)[:k]
        return [(name, service_name(slug), count) for (name, slug), count in ranked]

    return Table3(
        top_trigger_services=top_services(trigger_service_adds),
        top_action_services=top_services(action_service_adds),
        top_triggers=top_endpoints(trigger_adds),
        top_actions=top_endpoints(action_adds),
    )
