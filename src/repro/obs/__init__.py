"""Metrics & observability for the reproduction (`repro.obs`).

A production-scale simulation needs more than the forensic
:class:`~repro.simcore.trace.Trace`: hot paths (the engine poll loop,
the HTTP layer, the network, the simulator kernel) update O(1)-memory
counters, gauges, and histograms in a shared
:class:`~repro.obs.metrics.MetricsRegistry`; histograms embed a P²
streaming-quantile sketch so p50/p95/p99 stay cheap at million-event
scale.  Snapshots are JSON-able, mergeable across shards, and exported
by the CLI's ``--metrics`` flag.

See ``docs/OBSERVABILITY.md`` for naming conventions and usage.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    DISPATCH_SENSITIVE_METRICS,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
    WALLCLOCK_METRICS,
    deterministic_snapshot,
    dispatch_invariant_snapshot,
    merge_snapshots,
    snapshot_from_json_lines,
    snapshot_to_json_lines,
)
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    P2Quantile,
    P2_RANK_ERROR_BOUND,
    QuantileSketch,
    ReservoirSample,
    rank_error,
)
from repro.obs.bridge import bridge_trace, poll_latency_summary

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DISPATCH_SENSITIVE_METRICS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "P2_RANK_ERROR_BOUND",
    "QuantileSketch",
    "ReservoirSample",
    "ScopedRegistry",
    "WALLCLOCK_METRICS",
    "bridge_trace",
    "deterministic_snapshot",
    "dispatch_invariant_snapshot",
    "merge_snapshots",
    "poll_latency_summary",
    "rank_error",
    "snapshot_from_json_lines",
    "snapshot_to_json_lines",
]
