"""Streaming quantile estimation in O(1) memory.

The §4 latency analyses need p50/p95/p99 over event streams that, at the
production scale the roadmap targets (millions of simulated users), are
far too large to keep in memory and sort.  This module provides two
classic sketches, both dependency-free and deterministic:

* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtac (CACM 1985):
  a single quantile tracked with five markers whose heights are adjusted
  by a piecewise-parabolic interpolation.  Exactly five floats of state
  per quantile, regardless of stream length.
* :class:`ReservoirSample` — Vitter's algorithm R: a fixed-capacity
  uniform sample of the stream, from which *any* quantile can be read.
  Mergeable (unlike P²), at the cost of sampling noise.

Error bounds (empirically verified by ``tests/test_obs_quantiles.py``):
for streams of ≥ 2000 observations from smooth distributions (lognormal,
exponential, uniform) — and for adversarially pre-sorted input — the P²
estimate's *rank error* stays within :data:`P2_RANK_ERROR_BOUND`: the
fraction of samples below the estimate differs from the target quantile
by at most 0.05.  Reservoir estimates with capacity ``k`` carry
O(1/sqrt(k)) rank noise; the tests use the same 0.05 bound at k = 1024.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.simcore.rng import Rng, quantiles as exact_quantiles

#: Documented rank-error bound for the P² sketch (see module docstring).
P2_RANK_ERROR_BOUND = 0.05

#: Quantile points tracked by default (registry histograms use these).
DEFAULT_QUANTILES = (0.5, 0.9, 0.95, 0.99)


class P2Quantile:
    """P² (piecewise-parabolic) estimator for one quantile.

    Keeps five markers: the minimum, the maximum, the target quantile,
    and the two mid-quantiles between them.  Each observation shifts the
    markers' desired positions; markers whose actual position drifts off
    by ≥ 1 are moved one step and their heights re-interpolated.

    >>> sketch = P2Quantile(0.5)
    >>> for v in range(1, 1001):
    ...     sketch.observe(float(v))
    >>> abs(sketch.value() - 500.5) < 25
    True
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._count = 0
        # Marker heights, actual positions (1-based), and desired-position
        # increments, in the 5-marker layout of the original paper.
        self._heights: List[float] = []
        self._positions: List[float] = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired: List[float] = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments: Tuple[float, ...] = (0.0, q / 2, q, (1 + q) / 2, 1.0)

    @property
    def count(self) -> int:
        """Number of observations absorbed."""
        return self._count

    def observe(self, value: float) -> None:
        """Absorb one observation."""
        self._count += 1
        if len(self._heights) < 5:
            # Initialization phase: collect the first five values sorted.
            self._heights.append(float(value))
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = float(value)
            cell = 0
        elif value >= heights[4]:
            heights[4] = float(value)
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers if they drifted.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate of the tracked quantile.

        Falls back to the exact quantile while fewer than five
        observations have arrived; raises ``ValueError`` on an empty
        sketch.
        """
        if not self._heights:
            raise ValueError("no observations yet")
        if self._count < 5:
            return exact_quantiles(self._heights, [self.q])[0]
        return self._heights[2]

    def __repr__(self) -> str:
        return f"<P2Quantile q={self.q} n={self._count}>"


class QuantileSketch:
    """A bank of :class:`P2Quantile` markers sharing one input stream.

    This is what :class:`~repro.obs.metrics.Histogram` embeds: one
    ``observe`` feeds every tracked quantile, so p50/p95/p99 of a
    million-event latency stream cost 5 floats each.
    """

    def __init__(self, points: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not points:
            raise ValueError("need at least one quantile point")
        self.points = tuple(sorted(points))
        self._sketches = {q: P2Quantile(q) for q in self.points}
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations absorbed."""
        return self._count

    def observe(self, value: float) -> None:
        """Absorb one observation into every tracked quantile."""
        self._count += 1
        for sketch in self._sketches.values():
            sketch.observe(value)

    def quantile(self, q: float) -> float:
        """Estimate for one of the tracked points."""
        try:
            return self._sketches[q].value()
        except KeyError:
            raise KeyError(f"quantile {q} is not tracked (have {self.points})") from None

    def values(self) -> Dict[float, float]:
        """All tracked estimates, or an empty dict before any observation."""
        if self._count == 0:
            return {}
        return {q: sketch.value() for q, sketch in self._sketches.items()}

    def __repr__(self) -> str:
        return f"<QuantileSketch points={self.points} n={self._count}>"


class ReservoirSample:
    """Fixed-capacity uniform sample of a stream (Vitter's algorithm R).

    Deterministic given its seed.  Unlike P², two reservoirs can be
    merged, which makes this the sketch of choice for sharded runs.
    """

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = Rng(seed=seed, name="reservoir")
        self._sample: List[float] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Number of observations absorbed (not the sample size)."""
        return self._count

    @property
    def sample(self) -> List[float]:
        """A copy of the current sample."""
        return list(self._sample)

    def observe(self, value: float) -> None:
        """Absorb one observation."""
        self._count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(float(value))
            return
        slot = self._rng.randint(0, self._count - 1)
        if slot < self.capacity:
            self._sample[slot] = float(value)

    def quantile(self, q: float) -> float:
        """Estimate any quantile from the sample."""
        if not self._sample:
            raise ValueError("no observations yet")
        return exact_quantiles(self._sample, [q])[0]

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """A new reservoir approximating the union of both streams.

        Items are drawn from the two samples proportionally to the
        stream counts they stand for, so the merge is unbiased.
        """
        merged = ReservoirSample(capacity=self.capacity, seed=self._rng.seed)
        merged._count = self._count + other.count
        pool: List[Tuple[float, float]] = []
        for source in (self, other):
            if not source._sample:
                continue
            weight = source.count / len(source._sample)
            pool.extend((value, weight) for value in source._sample)
        if not pool:
            return merged
        take = min(merged.capacity, len(pool))
        values = [entry[0] for entry in pool]
        weights = [entry[1] for entry in pool]
        for _ in range(take):
            index = merged._rng.weighted_index(weights)
            merged._sample.append(values[index])
            weights[index] = 0.0
            if not any(weights):
                break
        return merged

    def __repr__(self) -> str:
        return f"<ReservoirSample {len(self._sample)}/{self.capacity} n={self._count}>"


def rank_error(values: Sequence[float], estimate: float, q: float) -> float:
    """|empirical CDF(estimate) - q| — the rank error of a quantile estimate.

    This is the metric the documented :data:`P2_RANK_ERROR_BOUND` is
    stated in; the property tests use it because it is scale-free and
    meaningful for arbitrary distributions (unlike relative value error,
    which blows up near zero or on flat regions of the CDF).
    """
    if not values:
        raise ValueError("cannot compute rank error against an empty sample")
    below = sum(1 for v in values if v <= estimate)
    return abs(below / len(values) - q)
