"""Counters, gauges, histograms, and the registry that owns them.

The paper's measurement methodology (§4) is multi-vantage-point: every
entity of the testbed observes and records.  The raw
:class:`~repro.simcore.trace.Trace` keeps that role for *forensic*
queries; this module adds the *pre-aggregated* layer a production-scale
deployment needs — O(1)-memory metrics that hot paths update in place and
analyses read without scanning millions of records.

Naming conventions (see ``docs/OBSERVABILITY.md``):

* metric names are dotted ``subsystem.measure[_unit]`` strings, e.g.
  ``engine.t2a_seconds`` or ``net.messages_delivered``;
* labels are lowercase keyword dimensions with *bounded* cardinality
  (service slugs, status classes — never user ids or event ids);
* counters only go up, gauges are set to the latest level, histograms
  absorb samples into fixed buckets plus a P² quantile sketch.

Snapshots are plain JSON-able dicts.  :func:`merge_snapshots` is
commutative and associative (counters add, gauges take the max,
histogram buckets add), so shard-per-process runs can be combined in any
order.  Quantiles of merged histograms are re-derived from the merged
buckets (bucket-resolution error); unmerged snapshots carry the sharper
P² estimates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.quantiles import DEFAULT_QUANTILES, QuantileSketch

LabelItems = Tuple[Tuple[str, Any], ...]

#: Default histogram buckets: log-spaced upper bounds covering sub-ms
#: network hops through the paper's 15-minute T2A tail (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Buckets for small non-negative counts (poll batch sizes and the like).
COUNT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 250, 500)


#: Interned label tuples: hot paths pass the same few label dicts
#: millions of times, and re-sorting them per call shows up in fleet-
#: scale profiles.  Zero- and one-label dicts (the overwhelming
#: majority) skip the sort entirely; multi-label keys are interned via
#: the cache below so equal label sets share one tuple object — which
#: also makes the registry's ``(name, key)`` dict lookups compare by
#: identity first.
_label_key_cache: Dict[LabelItems, LabelItems] = {}


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    if not labels:
        return ()
    if len(labels) == 1:
        return tuple(labels.items())
    key = tuple(sorted(labels.items()))
    try:
        return _label_key_cache.setdefault(key, key)
    except TypeError:  # unhashable label value: fall back, uncached
        return key


class Metric:
    """Common identity for all metric kinds."""

    kind = "metric"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able dict describing the current state."""
        raise NotImplementedError

    def __repr__(self) -> str:
        tags = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"<{type(self).__name__} {self.name}{{{tags}}}>"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative — counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "labels": self.labels,
                "value": self.value}


class Gauge(Metric):
    """A level that can move both ways (queue depth, rate, clock)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the latest level."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the level by ``delta`` (may be negative)."""
        self.value += float(delta)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "labels": self.labels,
                "value": self.value}


class Histogram(Metric):
    """Fixed log-spaced buckets plus a P² streaming-quantile sketch.

    ``bounds`` are bucket *upper* edges; one overflow bucket catches
    everything above the last edge, so ``len(bucket_counts) ==
    len(bounds) + 1``.  The sketch gives O(1)-memory p50/p95/p99 that the
    buckets alone could only resolve to bucket width.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Dict[str, Any],
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        quantile_points: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        super().__init__(name, labels)
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"bounds must be strictly increasing, got {bounds}")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sketch = QuantileSketch(quantile_points)

    def observe(self, value: float) -> None:
        """Absorb one sample."""
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.sketch.observe(value)

    def mean(self) -> float:
        """Arithmetic mean of all samples (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """P² estimate for one of the tracked quantile points."""
        return self.sketch.quantile(q)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "name": self.name,
            "labels": self.labels,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "quantiles": {str(q): v for q, v in self.sketch.values().items()},
        }


class MetricsRegistry:
    """The root owner of all metrics for one run.

    Hot paths call :meth:`counter` / :meth:`gauge` / :meth:`histogram`,
    which get-or-create the named instrument; repeated calls with the
    same name and labels return the same object, so call sites need not
    cache (though they may, for the hottest loops).

    ``scoped`` provides hierarchical naming: a scope prefixes every
    metric name with ``<prefix>.`` and merges its base labels into every
    call, while writing into the shared underlying store.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}

    # -- instrument accessors ------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs: Any) -> Metric:
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        metric = cls(name, labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        """Get or create a histogram (``bounds`` only applies on creation)."""
        return self._get(Histogram, name, labels, bounds=bounds)

    def scoped(self, prefix: str, **labels: Any) -> "ScopedRegistry":
        """A view that prefixes names with ``prefix.`` and adds ``labels``."""
        return ScopedRegistry(self, prefix, labels)

    # -- inspection ----------------------------------------------------------

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: Any) -> Optional[Metric]:
        """Look up an existing metric, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0, **labels: Any) -> float:
        """Counter/gauge value by name, or ``default`` when absent."""
        metric = self.get(name, **labels)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read its snapshot instead")
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter across all of its label sets."""
        return sum(
            m.value for (n, _), m in self._metrics.items()
            if n == name and isinstance(m, Counter)
        )

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as one JSON-able dict, deterministically ordered."""
        entries = [metric.snapshot() for metric in self._metrics.values()]
        entries.sort(key=_entry_sort_key)
        return {"metrics": entries}

    def to_json_lines(self) -> str:
        """One JSON object per metric, one per line (for file export)."""
        return snapshot_to_json_lines(self.snapshot())

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._metrics)} metrics>"


class ScopedRegistry:
    """A hierarchical view over a :class:`MetricsRegistry`.

    >>> reg = MetricsRegistry()
    >>> engine = reg.scoped("engine", service="hue")
    >>> engine.counter("polls_sent").inc()
    >>> reg.value("engine.polls_sent", service="hue")
    1
    """

    def __init__(self, root: MetricsRegistry, prefix: str, labels: Dict[str, Any]) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self.root = root
        self.prefix = prefix
        self.base_labels = dict(labels)

    def _merged(self, labels: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(self.base_labels)
        merged.update(labels)
        return merged

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter under this scope."""
        return self.root.counter(f"{self.prefix}.{name}", **self._merged(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge under this scope."""
        return self.root.gauge(f"{self.prefix}.{name}", **self._merged(labels))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        """Get or create a histogram under this scope."""
        return self.root.histogram(
            f"{self.prefix}.{name}", bounds=bounds, **self._merged(labels)
        )

    def scoped(self, prefix: str, **labels: Any) -> "ScopedRegistry":
        """A deeper scope (prefixes compose with dots)."""
        return ScopedRegistry(self.root, f"{self.prefix}.{prefix}", self._merged(labels))

    def __repr__(self) -> str:
        return f"<ScopedRegistry {self.prefix!r} on {self.root!r}>"


# -- snapshot algebra --------------------------------------------------------


def _entry_sort_key(entry: Dict[str, Any]) -> Tuple[str, str]:
    # Label values may mix types (ints, strings); compare their JSON form.
    return entry["name"], json.dumps(entry["labels"], sort_keys=True)


def _quantiles_from_buckets(
    bounds: List[float], bucket_counts: List[int], points: Sequence[float]
) -> Dict[str, float]:
    """Quantiles interpolated from bucket counts (merged-snapshot path).

    Assumes samples are uniform within a bucket; the overflow bucket
    reports its lower edge (the best available bound).
    """
    total = sum(bucket_counts)
    if total == 0:
        return {}
    edges = [0.0] + list(bounds)
    out: Dict[str, float] = {}
    for q in points:
        target = q * total
        seen = 0.0
        estimate = bounds[-1]
        for index, count in enumerate(bucket_counts):
            if count and seen + count >= target:
                lo = edges[index] if index < len(bounds) else bounds[-1]
                hi = bounds[index] if index < len(bounds) else bounds[-1]
                frac = (target - seen) / count
                estimate = lo + (hi - lo) * frac
                break
            seen += count
        out[str(q)] = estimate
    return out


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Combine registry snapshots from independent shards.

    Commutative and associative: counters add; gauges keep the maximum
    (the only symmetric choice that is meaningful for the high-watermark
    gauges the library emits); histograms add bucket counts, sums, and
    counts, take min/max envelopes, and re-derive quantiles from the
    merged buckets.  Histograms with differing bounds cannot be merged.
    """
    merged: Dict[Tuple[str, LabelItems], Dict[str, Any]] = {}
    for snapshot in snapshots:
        for entry in snapshot["metrics"]:
            key = (entry["name"], _label_key(entry["labels"]))
            current = merged.get(key)
            if current is None:
                merged[key] = json.loads(json.dumps(entry))  # deep copy
                continue
            if current["type"] != entry["type"]:
                raise ValueError(
                    f"cannot merge {entry['name']!r}: {current['type']} vs {entry['type']}"
                )
            if entry["type"] == "counter":
                current["value"] += entry["value"]
            elif entry["type"] == "gauge":
                current["value"] = max(current["value"], entry["value"])
            else:
                if current["bounds"] != entry["bounds"]:
                    raise ValueError(
                        f"cannot merge histogram {entry['name']!r}: bucket bounds differ"
                    )
                current["count"] += entry["count"]
                current["sum"] += entry["sum"]
                mins = [m for m in (current["min"], entry["min"]) if m is not None]
                maxes = [m for m in (current["max"], entry["max"]) if m is not None]
                current["min"] = min(mins) if mins else None
                current["max"] = max(maxes) if maxes else None
                current["bucket_counts"] = [
                    a + b for a, b in zip(current["bucket_counts"], entry["bucket_counts"])
                ]
                points = sorted(
                    {float(q) for q in current["quantiles"]}
                    | {float(q) for q in entry["quantiles"]}
                ) or list(DEFAULT_QUANTILES)
                current["quantiles"] = _quantiles_from_buckets(
                    current["bounds"], current["bucket_counts"], points
                )
    entries = list(merged.values())
    entries.sort(key=_entry_sort_key)
    return {"metrics": entries}


#: Metric names measured against the host's wall clock rather than the
#: simulation clock.  They vary run to run on the same seed, so any
#: byte-identical determinism check must exclude them.
WALLCLOCK_METRICS = frozenset({"sim.events_per_wallsec"})

#: Kernel metrics that legitimately differ between poll-dispatch modes
#: (``EngineConfig.poll_dispatch``): the heap scheduler fires one wake
#: event per *batch* of due polls where the per-applet-timer baseline
#: fires one per poll, so raw simulator event counts diverge even
#: though every poll, RNG draw, trace record, and engine metric is
#: identical.  The heap/timers equivalence gate compares snapshots with
#: these (and :data:`WALLCLOCK_METRICS`) removed; within one mode they
#: are fully deterministic and stay in :func:`deterministic_snapshot`.
DISPATCH_SENSITIVE_METRICS = frozenset({"sim.events_fired", "sim.runs"})


def deterministic_snapshot(source: Any) -> Dict[str, Any]:
    """A snapshot with wall-clock-dependent metrics filtered out.

    ``source`` may be a :class:`MetricsRegistry` or an already-taken
    snapshot dict.  Two runs of the same scenario with the same seed and
    fault plan serialize the result byte-identically (see
    ``make chaos-check``); the raw :meth:`MetricsRegistry.snapshot`
    does not, because of :data:`WALLCLOCK_METRICS`.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    return {
        "metrics": [
            entry
            for entry in snapshot["metrics"]
            if entry["name"] not in WALLCLOCK_METRICS
        ]
    }


def dispatch_invariant_snapshot(source: Any) -> Dict[str, Any]:
    """A :func:`deterministic_snapshot` that is also poll-dispatch-invariant.

    Drops :data:`DISPATCH_SENSITIVE_METRICS` on top of the wall-clock
    filter, so the same seeded scenario run under ``poll_dispatch="heap"``
    and ``poll_dispatch="timers"`` serializes byte-identically — the
    equivalence gate used by ``tests/test_scheduler_equivalence.py`` and
    ``make bench-scale`` (see ``docs/PERFORMANCE.md``).
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    excluded = WALLCLOCK_METRICS | DISPATCH_SENSITIVE_METRICS
    return {
        "metrics": [
            entry for entry in snapshot["metrics"] if entry["name"] not in excluded
        ]
    }


def snapshot_to_json_lines(snapshot: Dict[str, Any]) -> str:
    """Serialize a snapshot as one JSON object per line."""
    return "\n".join(
        json.dumps(entry, sort_keys=True) for entry in snapshot["metrics"]
    )


def snapshot_from_json_lines(text: str) -> Dict[str, Any]:
    """Parse :func:`snapshot_to_json_lines` output back into a snapshot."""
    entries = [json.loads(line) for line in text.splitlines() if line.strip()]
    entries.sort(key=_entry_sort_key)
    return {"metrics": entries}
