"""Bridge from the raw :class:`~repro.simcore.trace.Trace` to metrics.

The §4 analyses were written as full scans over the trace; at roadmap
scale (millions of users) those scans dominate runtime.  The bridge
folds a trace into a :class:`~repro.obs.metrics.MetricsRegistry` in one
pass, so downstream consumers (reporting, dashboards, benches) read
pre-aggregated counters and histograms instead.

Everything the bridge derives is also available live — the engine, the
network, and the services emit the same families directly when built
with a registry — which makes the bridge double as a *cross-check*:
``tests/test_obs_integration.py`` asserts the folded trace and the live
instrumentation agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.simcore.trace import Trace

#: Record kinds whose per-applet sent -> response pairing yields a
#: round-trip latency histogram.
_PAIRED_KINDS: Tuple[Tuple[str, str, str], ...] = (
    ("engine_poll_sent", "engine_poll_response", "poll_rtt_seconds"),
    ("engine_action_sent", "engine_action_ack", "action_rtt_seconds"),
)


def bridge_trace(
    trace: Trace,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "trace",
) -> MetricsRegistry:
    """Fold a trace into pre-aggregated metrics (single pass).

    Produces, under ``<prefix>.``:

    * ``records{kind=,source=}`` — counter per record kind and vantage
      point (the :meth:`~repro.simcore.trace.Trace.kinds` histogram,
      labelled);
    * ``poll_rtt_seconds`` / ``action_rtt_seconds`` — round-trip
      histograms from per-applet FIFO pairing of sent/response records
      (the engine serializes polls per applet, so FIFO pairing is exact
      for polls; overlapping actions of one applet pair approximately);
    * ``poll_interval_seconds`` — gaps between successive polls of the
      same applet, the quantity §4 blames for T2A latency;
    * ``poll_batch_new`` — new-events-per-poll, from the response
      records' ``new`` detail.

    Returns the registry (a fresh one unless ``registry`` is given).
    """
    registry = registry or MetricsRegistry()
    scope = registry.scoped(prefix)
    pending: Dict[Tuple[str, int], List[float]] = {}
    last_poll_at: Dict[int, float] = {}
    rtt_names = {sent: (response, name) for sent, response, name in _PAIRED_KINDS}
    responses = {response: name for _, response, name in _PAIRED_KINDS}
    for rec in trace:
        scope.counter("records", kind=rec.kind, source=rec.source).inc()
        applet_id = rec.get("applet_id")
        if applet_id is None:
            continue
        if rec.kind in rtt_names:
            pending.setdefault((rec.kind, applet_id), []).append(rec.time)
            if rec.kind == "engine_poll_sent":
                previous = last_poll_at.get(applet_id)
                if previous is not None:
                    scope.histogram("poll_interval_seconds").observe(rec.time - previous)
                last_poll_at[applet_id] = rec.time
        elif rec.kind in responses:
            sent_kind = {resp: sent for sent, resp, _ in _PAIRED_KINDS}[rec.kind]
            queue = pending.get((sent_kind, applet_id))
            if queue:
                scope.histogram(responses[rec.kind]).observe(rec.time - queue.pop(0))
            if rec.kind == "engine_poll_response":
                scope.histogram("poll_batch_new", bounds=COUNT_BUCKETS).observe(
                    rec.get("new", 0)
                )
    return registry


def poll_latency_summary(trace: Trace, prefix: str = "trace") -> Dict[str, float]:
    """Convenience: §4 poll-latency landmarks from a folded trace.

    Returns ``{"n": ..., "p50": ..., "p95": ..., "p99": ...}`` for the
    poll round-trip histogram (empty dict when the trace has no polls).
    """
    registry = bridge_trace(trace, prefix=prefix)
    histogram = registry.get(f"{prefix}.poll_rtt_seconds")
    if histogram is None or histogram.count == 0:
        return {}
    return {
        "n": float(histogram.count),
        "p50": histogram.quantile(0.5),
        "p95": histogram.quantile(0.95),
        "p99": histogram.quantile(0.99),
    }
