"""Rendering and export of metrics snapshots.

The CLI's ``--metrics PATH`` flag funnels through here: a run's
:class:`~repro.obs.metrics.MetricsRegistry` snapshot is written as
JSON-lines (one metric per line — trivially ``grep``-able and
stream-parsable) and a human summary of the most informative entries is
printed alongside the experiment's own output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, snapshot_to_json_lines
from repro.reporting.table import render_table

Snapshot = Dict[str, Any]


def _as_snapshot(source: Union[MetricsRegistry, Snapshot]) -> Snapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def write_metrics_json(source: Union[MetricsRegistry, Snapshot], path: str) -> str:
    """Write a snapshot as JSON-lines; returns the path written."""
    with open(path, "w") as handle:
        handle.write(snapshot_to_json_lines(_as_snapshot(source)))
        handle.write("\n")
    return path


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_metrics_summary(
    source: Union[MetricsRegistry, Snapshot], limit: Optional[int] = None
) -> str:
    """A compact table of every non-empty metric in a snapshot.

    Counters and gauges render their value; histograms render count,
    mean, and the sketched p50/p95/p99.
    """
    snapshot = _as_snapshot(source)
    rows: List[List[str]] = []
    for entry in snapshot["metrics"]:
        name = entry["name"] + _format_labels(entry["labels"])
        if entry["type"] in ("counter", "gauge"):
            value = entry["value"]
            if value == 0:
                continue
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            rows.append([name, entry["type"], rendered])
        else:
            count = entry["count"]
            if count == 0:
                continue
            mean = entry["sum"] / count
            quantiles = entry.get("quantiles", {})
            landmarks = " ".join(
                f"p{float(q) * 100:g}={quantiles[q]:.3g}"
                for q in sorted(quantiles, key=float)
                if float(q) in (0.5, 0.95, 0.99)
            )
            rows.append([name, "histogram", f"n={count} mean={mean:.3g} {landmarks}"])
    if limit is not None:
        rows = rows[:limit]
    if not rows:
        return "(no metrics recorded)"
    return render_table(["metric", "type", "value"], rows)
