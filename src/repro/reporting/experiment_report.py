"""Render an experiment matrix's aggregated results.

The text form is one row per cell — sweep, swept parameters, sample
count, T2A quartiles, and the median confidence interval — grouped by
sweep in cell order, the same order ``results.json`` carries.  The JSON
form is the results dict itself (already canonical); ``render_experiment_json``
just re-serializes it byte-stably for printing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.reporting.table import render_table

#: Axis order for the params column (matches the spec vocabulary order).
_PARAM_ORDER = (
    "scenario",
    "applet",
    "fault_plan",
    "shards",
    "shard_strategy",
    "corpus_size",
    "delivery_mode",
    "poll_dispatch",
)


def _params_label(params: Mapping[str, Any]) -> str:
    ordered = [key for key in _PARAM_ORDER if key in params]
    ordered += [key for key in sorted(params) if key not in _PARAM_ORDER]
    return " ".join(f"{key}={params[key]}" for key in ordered)


def _fmt_seconds(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value):.2f}"


def _fmt_ci(ci: Any) -> str:
    if not ci:
        return "-"
    return (
        f"{_fmt_seconds(ci['center'])} "
        f"[{_fmt_seconds(ci['lo'])}, {_fmt_seconds(ci['hi'])}]"
    )


def render_experiment_table(results: Mapping[str, Any]) -> str:
    """Plain-text table of a matrix results dict (``results.json``)."""
    headers = [
        "cell",
        "sweep",
        "params",
        "n",
        "p25",
        "p50",
        "p75",
        "median ci95",
    ]
    rows: List[List[Any]] = []
    for cell in results.get("cells", []):
        quartiles = cell.get("t2a_quartiles") or (None, None, None)
        rows.append(
            [
                cell["index"],
                cell["sweep"],
                _params_label(cell.get("params", {})),
                cell.get("n", 0),
                _fmt_seconds(quartiles[0]),
                _fmt_seconds(quartiles[1]),
                _fmt_seconds(quartiles[2]),
                _fmt_ci(cell.get("median_ci")),
            ]
        )
    title = (
        f"experiment matrix {results.get('spec_name', '?')!r} "
        f"({len(rows)} cells, spec {results.get('spec_sha256', '')[:12]})"
    )
    return title + "\n" + render_table(headers, rows)


def render_experiment_json(results: Mapping[str, Any]) -> str:
    """Canonical JSON of a matrix results dict."""
    return json.dumps(results, indent=2, sort_keys=True)


def experiment_fault_comparison(results: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Pair each t2a cell's fault-plan slice with its baseline.

    Returns one record per (applet, fault_plan != baseline) cell with
    the baseline quartiles of the same applet alongside — the
    "T2A-under-faults next to the Figure 4 baseline" view.
    """
    baselines: Dict[str, Any] = {}
    for cell in results.get("cells", []):
        if cell.get("kind") != "t2a":
            continue
        params = cell.get("params", {})
        if params.get("fault_plan") == "baseline":
            baselines[params.get("applet")] = cell
    comparison: List[Dict[str, Any]] = []
    for cell in results.get("cells", []):
        if cell.get("kind") != "t2a":
            continue
        params = cell.get("params", {})
        if params.get("fault_plan") == "baseline":
            continue
        base = baselines.get(params.get("applet"))
        comparison.append(
            {
                "applet": params.get("applet"),
                "fault_plan": params.get("fault_plan"),
                "quartiles": cell.get("t2a_quartiles"),
                "median_ci": cell.get("median_ci"),
                "baseline_quartiles": base.get("t2a_quartiles") if base else None,
                "baseline_median_ci": base.get("median_ci") if base else None,
            }
        )
    return comparison
