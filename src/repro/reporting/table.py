"""Plain-text table rendering."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a left-padded ASCII table.

    Numbers are right-aligned; everything else left-aligned.  Floats are
    shown with one decimal (the paper's tables use percentages at that
    precision).
    """
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    text_rows: List[List[str]] = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, width: int, value: Any) -> str:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cell.rjust(width)
        return cell.ljust(width)

    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for raw, row in zip(rows, text_rows):
        lines.append("  ".join(align(cell, w, value) for cell, w, value in zip(row, widths, raw)))
    return "\n".join(lines)
