"""Figure-data export: write every reproduced figure's series to disk.

Plotting libraries are not a dependency of this repository, so the
figures are exported as plain CSV series (one file per figure) that any
tool can render.  ``export_all_figures`` is the one-call driver that
regenerates the data behind Figures 2-7.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from repro.reporting.cdf import cdf_points


def write_csv(path, header: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write one CSV series; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return target


def export_cdf(path, samples: Sequence[float], label: str = "value") -> Path:
    """Export an empirical CDF as (value, fraction) rows."""
    return write_csv(path, [label, "cdf"], cdf_points(samples))


def export_heatmap(path, matrix: List[List[int]]) -> Path:
    """Export a category-interaction matrix as (row, col, value) triples."""
    rows = [
        (i + 1, j + 1, cell)
        for i, row in enumerate(matrix)
        for j, cell in enumerate(row)
    ]
    return write_csv(path, ["trigger_category", "action_category", "add_count"], rows)


def export_rank_series(path, series: Sequence) -> Path:
    """Export Figure 3's (rank, add_count) samples."""
    return write_csv(path, ["rank", "add_count"], series)


def export_all_figures(
    output_dir,
    corpus_scale: float = 0.05,
    t2a_runs: int = 20,
    seed: int = 7,
) -> Dict[str, Path]:
    """Regenerate and export the data behind Figures 2-7.

    Returns a mapping from figure key to the CSV path written.  This is
    the heavyweight driver (it runs the §3 crawl and the §4 experiments);
    expect tens of seconds at the default sizes.
    """
    from repro.analysis import interaction_heatmap, log_rank_series
    from repro.crawler import IftttCrawler
    from repro.ecosystem import EcosystemGenerator, EcosystemParams
    from repro.frontend import SimulatedIftttSite
    from repro.testbed.concurrent import run_concurrent_experiment
    from repro.testbed.scenarios import run_scenario_t2a
    from repro.testbed.sequential import run_sequential_experiment
    from repro.testbed.t2a import run_official_t2a

    output = Path(output_dir)
    written: Dict[str, Path] = {}

    corpus = EcosystemGenerator(EcosystemParams(scale=corpus_scale, seed=seed)).generate()
    snapshot = IftttCrawler(SimulatedIftttSite(corpus)).crawl()
    written["fig2_heatmap"] = export_heatmap(
        output / "fig2_heatmap.csv", interaction_heatmap(snapshot)
    )
    written["fig3_addcount"] = export_rank_series(
        output / "fig3_addcount.csv", log_rank_series(snapshot)
    )

    t2a = run_official_t2a(runs=t2a_runs, seed=seed)
    written["fig4_a1_a4"] = export_cdf(
        output / "fig4_a1_a4_cdf.csv", t2a.group("A1-A4"), label="t2a_seconds"
    )
    written["fig4_a5_a7"] = export_cdf(
        output / "fig4_a5_a7_cdf.csv", t2a.group("A5-A7"), label="t2a_seconds"
    )

    for name in ("E1", "E2", "E3"):
        latencies = run_scenario_t2a(
            name, runs=t2a_runs, seed=seed, spacing=20.0 if name == "E3" else 120.0
        )
        written[f"fig5_{name}"] = export_cdf(
            output / f"fig5_{name.lower()}_cdf.csv", latencies, label="t2a_seconds"
        )

    sequential = run_sequential_experiment(seed=seed)
    written["fig6_triggers"] = write_csv(
        output / "fig6_triggers.csv", ["t_seconds"],
        [[t] for t in sequential.trigger_times],
    )
    written["fig6_actions"] = write_csv(
        output / "fig6_actions.csv", ["t_seconds"],
        [[t] for t in sequential.action_times],
    )

    concurrent = run_concurrent_experiment(runs=t2a_runs, seed=seed)
    written["fig7_diff"] = export_cdf(
        output / "fig7_diff_cdf.csv", concurrent.differences, label="diff_seconds"
    )
    return written
