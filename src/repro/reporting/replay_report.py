"""Rendering for dead-letter replay catch-up-burst comparisons.

``repro chaos --replay`` runs the same scenario twice — once with
batched action dispatch, once single-shot — and prints the two
catch-up bursts side by side.  §6's fleet-load argument is about
exactly this shape of traffic: recovery wants to send everything at
once, and batching (one request per ``batch_limit`` actions, the
paper's polling ``limit`` k) is what keeps the instantaneous request
spike survivable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from repro.reporting.table import render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testbed.chaos import ReplayReport


def _fmt_rate(value: float) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}"


def render_replay_comparison(batched: "ReplayReport", unbatched: "ReplayReport") -> str:
    """A side-by-side table of the batched vs unbatched catch-up burst."""
    rows: List[List[Any]] = [
        ["dead letters replayed", batched.replayed, unbatched.replayed],
        ["requests sent", batched.requests_sent, unbatched.requests_sent],
        ["delivered", batched.delivered, unbatched.delivered],
        ["re-failed", batched.refailed, unbatched.refailed],
        ["burst duration (s)", f"{batched.duration:.2f}", f"{unbatched.duration:.2f}"],
        [
            "burst req/s",
            _fmt_rate(batched.requests_per_second),
            _fmt_rate(unbatched.requests_per_second),
        ],
        [
            "burst/steady ratio",
            _fmt_rate(batched.burst_ratio),
            _fmt_rate(unbatched.burst_ratio),
        ],
        [
            "replayed t2a mean (s)",
            f"{batched.t2a_mean():.2f}",
            f"{unbatched.t2a_mean():.2f}",
        ],
        [
            "replayed t2a max (s)",
            f"{batched.t2a_max():.2f}",
            f"{unbatched.t2a_max():.2f}",
        ],
    ]
    header = f"batched (limit={batched.batch_limit})"
    return render_table(["catch-up burst", header, "unbatched"], rows)
