"""Rendering and acceptance checks for adaptive-delivery comparisons.

``repro chaos --adaptive`` runs the same scenario twice — once with a
:class:`~repro.engine.delivery.DeliveryPolicy` installed, once with the
plain (non-adaptive) engine — and prints the two runs side by side:
how hard each one hammered the browning-out victim, what the retry and
shed counters did, and whether the adaptive run's poll-interval
distribution returned to the base policy's after the heal (the §4
restoration property).

The same module holds the machine-checkable acceptance criteria
(:func:`adaptive_delivery_violations`) that ``make degrade-check``
enforces: ≥3× victim request-rate drop during a brownout, zero
``overload`` dead letters on healthy services, stretch fully decayed
after heal, and post-heal quartile drift within tolerance.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.reporting.table import render_table

#: Acceptance floor for the brownout request-rate drop (ISSUE 7).
MIN_DROP_RATIO = 3.0
#: Acceptance ceiling for post-heal interval-quartile drift.
MAX_QUARTILE_DRIFT = 0.10


def _stats(result: Any) -> Dict[str, int]:
    """The engine counter dict of a plain or sharded chaos result."""
    stats = getattr(result, "engine_stats", None)
    return stats if stats is not None else result.fleet_stats


def _t2a_by_phase(result: Any) -> Dict[str, List[float]]:
    """Fault-phase T2A samples, folded across shards when needed."""
    by_phase = getattr(result, "t2a_by_phase", None)
    if by_phase is not None:
        return by_phase
    merged: Dict[str, List[float]] = {}
    for shard_phases in result.t2a_by_shard.values():
        for phase, values in shard_phases.items():
            merged.setdefault(phase, []).extend(values)
    return merged


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _fmt_quartiles(quartiles: Optional[Tuple[float, float, float]]) -> str:
    if quartiles is None:
        return "-"
    return "/".join(f"{q:.1f}" for q in quartiles)


def drop_ratio(baseline: Any, adaptive: Any, slug: str) -> float:
    """How many times fewer requests the victim saw with adaptation on.

    Computed from the exact fault-window arrival counts both runs
    sampled; ``inf`` when the adaptive run sent none, 0.0 when the
    window was never measured.
    """
    base = baseline.fault_window_requests.get(slug, 0)
    adap = adaptive.fault_window_requests.get(slug, 0)
    if base == 0:
        return 0.0
    return float("inf") if adap == 0 else base / adap


def render_adaptive_comparison(adaptive: Any, baseline: Any) -> str:
    """A side-by-side table of the adaptive vs plain chaos run."""
    a_stats, b_stats = _stats(adaptive), _stats(baseline)
    a_t2a, b_t2a = _t2a_by_phase(adaptive), _t2a_by_phase(baseline)
    rows: List[List[Any]] = []
    for slug in sorted(set(adaptive.fault_window_requests) | set(baseline.fault_window_requests)):
        ratio = drop_ratio(baseline, adaptive, slug)
        ratio_text = "inf" if ratio == float("inf") else f"{ratio:.1f}x"
        rows.append([
            f"fault-window requests [{slug}]",
            f"{adaptive.fault_window_requests.get(slug, 0)} (drop {ratio_text})",
            baseline.fault_window_requests.get(slug, 0),
        ])
    rows.extend([
        ["poll retries", a_stats["poll_retries"], b_stats["poll_retries"]],
        ["action retries", a_stats["action_retries"], b_stats["action_retries"]],
        ["hints deferred", a_stats.get("delivery_hints_deferred", 0), 0],
        ["hints shed", a_stats.get("delivery_hints_shed", 0), 0],
        ["retries deferred", a_stats.get("delivery_retries_deferred", 0), 0],
        [
            "overload dead letters",
            a_stats.get("delivery_overload_dead_letters", 0),
            0,
        ],
        [
            "stretched poll intervals",
            a_stats.get("delivery_intervals_stretched", 0),
            0,
        ],
        [
            "t2a mean during fault (s)",
            f"{_mean(a_t2a.get('during', [])):.2f}",
            f"{_mean(b_t2a.get('during', [])):.2f}",
        ],
        [
            "t2a mean after heal (s)",
            f"{_mean(a_t2a.get('after', [])):.2f}",
            f"{_mean(b_t2a.get('after', [])):.2f}",
        ],
    ])
    if adaptive.post_heal_stretch:
        worst = max(adaptive.post_heal_stretch.values())
        rows.append(["post-heal stretch (max)", f"{worst:.2f}", "1.00"])
    rows.append([
        "post-heal interval quartiles (s)",
        _fmt_quartiles(adaptive.post_heal_quartiles),
        _fmt_quartiles(adaptive.baseline_quartiles),
    ])
    if adaptive.post_heal_quartiles is not None:
        rows.append([
            "quartile drift",
            f"{adaptive.post_heal_quartile_drift:.1%}",
            f"<= {MAX_QUARTILE_DRIFT:.0%}",
        ])
    return render_table(["adaptive delivery", "adaptive", "baseline"], rows)


def adaptive_delivery_violations(
    adaptive: Any,
    baseline: Any,
    brownout_services: Iterable[str],
    min_drop_ratio: float = MIN_DROP_RATIO,
    max_quartile_drift: float = MAX_QUARTILE_DRIFT,
) -> List[str]:
    """Every acceptance criterion the adaptive run failed (empty = pass).

    ``brownout_services`` names the victims whose request-rate drop is
    enforced; overload dead letters are checked on every *other*
    (healthy) service, and the stretch-decay and quartile-restoration
    checks apply to the whole run.
    """
    victims = set(brownout_services)
    violations: List[str] = []
    for slug in sorted(victims):
        ratio = drop_ratio(baseline, adaptive, slug)
        if ratio < min_drop_ratio:
            violations.append(
                f"victim {slug}: fault-window request drop {ratio:.2f}x "
                f"< required {min_drop_ratio:g}x"
            )
    for slug, count in sorted(adaptive.overload_dead_letters_by_service.items()):
        if slug not in victims and count:
            violations.append(
                f"healthy service {slug}: {count} overload dead letter(s), expected 0"
            )
    for slug, stretch in sorted(adaptive.post_heal_stretch.items()):
        if stretch > 1.0:
            violations.append(
                f"service {slug}: post-heal stretch {stretch:.2f} did not decay to 1.0"
            )
    drift = adaptive.post_heal_quartile_drift
    if drift > max_quartile_drift:
        violations.append(
            f"post-heal interval quartile drift {drift:.1%} exceeds "
            f"{max_quartile_drift:.0%} (§4 distribution not restored)"
        )
    return violations
