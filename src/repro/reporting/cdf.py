"""CDF series for the latency figures (4, 5, and 7)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.simcore.rng import quantiles


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF as (value, cumulative fraction) steps."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def cdf_at(samples: Sequence[float], value: float) -> float:
    """Empirical CDF evaluated at one value (fraction of samples <= it)."""
    if not samples:
        raise ValueError("samples must be non-empty")
    return sum(1 for s in samples if s <= value) / len(samples)


def summarize_latencies(samples: Sequence[float]) -> Dict[str, float]:
    """The summary statistics the paper quotes for latency figures."""
    if not samples:
        raise ValueError("samples must be non-empty")
    q25, q50, q75 = quantiles(samples, (0.25, 0.5, 0.75))
    return {
        "n": float(len(samples)),
        "p25": q25,
        "p50": q50,
        "p75": q75,
        "min": min(samples),
        "max": max(samples),
        "mean": sum(samples) / len(samples),
    }
