"""Rendering helpers for tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that presentation code out of the analysis layer.
"""

from repro.reporting.table import render_table
from repro.reporting.cdf import cdf_points, cdf_at, summarize_latencies
from repro.reporting.figures import (
    write_csv,
    export_cdf,
    export_heatmap,
    export_rank_series,
    export_all_figures,
)
from repro.reporting.metrics_report import (
    render_metrics_summary,
    write_metrics_json,
)
from repro.reporting.experiment_report import (
    experiment_fault_comparison,
    render_experiment_json,
    render_experiment_table,
)
from repro.reporting.replay_report import render_replay_comparison
from repro.reporting.adaptive_report import (
    adaptive_delivery_violations,
    render_adaptive_comparison,
)

__all__ = [
    "render_table",
    "render_experiment_table",
    "render_experiment_json",
    "experiment_fault_comparison",
    "render_replay_comparison",
    "render_adaptive_comparison",
    "adaptive_delivery_violations",
    "cdf_points",
    "cdf_at",
    "summarize_latencies",
    "write_csv",
    "export_cdf",
    "export_heatmap",
    "export_rank_series",
    "export_all_figures",
    "render_metrics_summary",
    "write_metrics_json",
]
