"""Command-line interface: rerun the paper's measurements from a shell.

Examples::

    python -m repro ecosystem --scale 0.05
    python -m repro t2a --applet A2 --runs 20
    python -m repro t2a --applet A2 --scenario E3 --runs 10
    python -m repro timeline
    python -m repro loops --kind implicit --runtime-detection
    python -m repro fleet --applets 150 --push
    python -m repro chaos --scenario outage --snapshot chaos.jsonl
    python -m repro chaos --scenario partition --faults plan.json
    python -m repro chaos --scenario outage --shards 4 --snapshot fleet.jsonl
    python -m repro chaos --scenario outage --replay --snapshot replay.jsonl
    python -m repro chaos --scenario brownout --adaptive
    python -m repro chaos --scenario outage --delivery push --shards 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _cmd_ecosystem(args: argparse.Namespace) -> int:
    from repro.analysis import growth_percentages, iot_shares, table1, user_contribution_stats
    from repro.crawler import IftttCrawler, SnapshotStore
    from repro.ecosystem import EcosystemGenerator, EcosystemParams
    from repro.frontend import SimulatedIftttSite
    from repro.reporting import render_table

    corpus = EcosystemGenerator(EcosystemParams(scale=args.scale, seed=args.seed)).generate()
    site = SimulatedIftttSite(corpus)
    crawler = IftttCrawler(site)
    store = SnapshotStore()
    for week in (0, 12, 24):
        store.add(crawler.crawl(week=week))
    final = store.last()
    print(f"snapshot {final.date}: {final.summary()}")
    print()
    print(render_table(
        ["#", "Category", "%Svc", "Trig AC%", "Act AC%"],
        [[r.category_index, r.category_name[:38], r.pct_services,
          r.trigger_ac_pct, r.action_ac_pct] for r in table1(final)],
    ))
    shares = iot_shares(final)
    contrib = user_contribution_stats(final)
    print(f"\nIoT: {shares.iot_service_fraction:.1%} of services, "
          f"{shares.iot_add_fraction:.1%} of usage")
    print(f"user channels: {contrib.user_channels}; user-made applets: "
          f"{contrib.user_made_applet_fraction:.1%} ({contrib.user_made_add_fraction:.1%} of adds)")
    growth = growth_percentages(store)
    print("growth:", ", ".join(f"{k} {v:+.1f}%" for k, v in growth.items()))
    if args.save:
        store.save(args.save)
        print(f"snapshots saved to {args.save}")
    return 0


def _emit_metrics(source, path: str) -> None:
    """Print a metrics summary and write the JSON-lines report."""
    from repro.reporting import render_metrics_summary, write_metrics_json

    print()
    print(render_metrics_summary(source))
    written = write_metrics_json(source, path)
    print(f"metrics written to {written}")


def _cmd_t2a(args: argparse.Namespace) -> int:
    from repro.reporting import summarize_latencies
    from repro.testbed.scenarios import SCENARIOS, build_scenario

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; choose from {sorted(SCENARIOS)}",
              file=sys.stderr)
        return 2
    testbed, controller, chosen = build_scenario(args.scenario, seed=args.seed)
    latencies = controller.measure_t2a(
        args.applet, runs=args.runs, variant=chosen.applet_variant,
        spacing=20.0 if chosen.fast_engine else 150.0,
    )
    stats = summarize_latencies(latencies)
    print(f"{args.applet} under {args.scenario} ({chosen.description})")
    print(f"  n={int(stats['n'])} p25={stats['p25']:.2f}s p50={stats['p50']:.2f}s "
          f"p75={stats['p75']:.2f}s max={stats['max']:.2f}s")
    if args.metrics:
        _emit_metrics(testbed.metrics, args.metrics)
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.testbed.timeline import capture_timeline, format_timeline

    print(format_timeline(capture_timeline(seed=args.seed)))
    return 0


def _cmd_loops(args: argparse.Namespace) -> int:
    from repro.testbed.loops import (
        run_explicit_loop_experiment,
        run_implicit_loop_experiment,
    )

    runner = (run_explicit_loop_experiment if args.kind == "explicit"
              else run_implicit_loop_experiment)
    result = runner(duration=args.duration, seed=args.seed,
                    runtime_detection=args.runtime_detection)
    print(f"{args.kind} loop over {args.duration/60:.0f} simulated minutes:")
    print(f"  rows added: {result.rows_added}, emails: {result.emails_received}, "
          f"self-sustained: {result.looped}")
    print(f"  static analysis (blind): {len(result.static_findings)} cycle(s); "
          f"with external knowledge: {len(result.static_findings_with_external_knowledge)}")
    if args.runtime_detection:
        print(f"  runtime detector flagged: {result.runtime_flagged}, "
              f"disabled: {result.disabled_applets}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.testbed.workload import run_fleet_experiment

    result = run_fleet_experiment(
        n_applets=args.applets, push=args.push,
        publications=args.publications, seed=args.seed,
    )
    regime = "push" if args.push else "poll"
    print(f"{args.applets}-applet fleet under {regime}:")
    print(f"  actions executed: {result.actions_executed}")
    print(f"  median latency:   {result.median_latency():.2f} s")
    print(f"  peak polls/s:     {result.peak_polls_per_second()}")
    print(f"  mean polls/s:     {result.mean_polls_per_second():.2f}")
    print(f"  peak/mean:        {result.burstiness():.1f}")
    if args.metrics:
        _emit_metrics(result.metrics_snapshot, args.metrics)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, FaultPlanError
    from repro.obs.metrics import snapshot_to_json_lines
    from repro.testbed.chaos import (
        CHAOS_SCENARIOS,
        SENSOR_SLUG,
        SINK_SLUG,
        run_chaos_scenario,
        run_sharded_chaos_scenario,
    )

    if args.scenario not in CHAOS_SCENARIOS:
        print(f"unknown chaos scenario {args.scenario!r}; "
              f"choose from {sorted(CHAOS_SCENARIOS)}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.parallel and args.shards < 2:
        print("--parallel requires --shards >= 2", file=sys.stderr)
        return 2
    if args.replay_batch_limit < 1:
        print(f"--replay-batch-limit must be >= 1, got {args.replay_batch_limit}",
              file=sys.stderr)
        return 2
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.from_file(args.faults)
        except (OSError, FaultPlanError) as exc:
            print(f"cannot load fault plan {args.faults}: {exc}", file=sys.stderr)
            return 2
    replay_policies = [None, None]
    if args.replay:
        from repro.engine.resilience import ReplayPolicy

        # Batched first (its result is the one reported/snapshotted),
        # then the single-shot baseline for the comparison table.
        replay_policies = [
            ReplayPolicy(batch_limit=args.replay_batch_limit, batching=True),
            ReplayPolicy(batch_limit=args.replay_batch_limit, batching=False),
        ]
    delivery = None
    if args.adaptive:
        from repro.engine.delivery import DeliveryPolicy

        delivery = DeliveryPolicy()

    def _run(replay_policy, delivery_policy):
        if args.shards > 1:
            return run_sharded_chaos_scenario(
                args.scenario, seed=args.seed, plan=plan,
                num_shards=args.shards, shard_strategy=args.shard_strategy,
                replay=replay_policy, delivery=delivery_policy,
                delivery_mode=args.delivery,
                parallel=args.parallel, jobs=args.jobs,
            )
        return run_chaos_scenario(
            args.scenario, seed=args.seed, plan=plan,
            replay=replay_policy, delivery=delivery_policy,
            delivery_mode=args.delivery,
        )

    result = _run(replay_policies[0], delivery)
    results = [result]
    print(result.summary())
    if args.replay:
        from repro.reporting import render_replay_comparison

        unbatched = _run(replay_policies[1], delivery)
        results.append(unbatched)
        print()
        print(render_replay_comparison(result.replay, unbatched.replay))
    adaptive_violations = []
    if args.adaptive:
        from repro.faults.plan import SERVICE_BROWNOUT
        from repro.reporting import (
            adaptive_delivery_violations,
            render_adaptive_comparison,
        )

        baseline = _run(replay_policies[0], None)
        results.append(baseline)
        print()
        print(render_adaptive_comparison(result, baseline))
        effective_plan = plan if plan is not None else CHAOS_SCENARIOS[args.scenario].plan
        victims = {
            spec.service for spec in effective_plan
            if spec.kind == SERVICE_BROWNOUT and spec.service
        }
        if args.shards > 1:
            # Sharded worlds retarget the unsharded vocabulary at pair 0.
            victims = {
                f"{slug}0" if slug in (SENSOR_SLUG, SINK_SLUG) else slug
                for slug in victims
            }
        adaptive_violations = adaptive_delivery_violations(result, baseline, victims)
    exit_code = 0
    for run in results:
        if run.actions_silently_lost:
            print(f"INVARIANT VIOLATED: {run.actions_silently_lost} action(s) "
                  "silently lost", file=sys.stderr)
            exit_code = 1
    for violation in adaptive_violations:
        print(f"ADAPTIVE ACCEPTANCE VIOLATED: {violation}", file=sys.stderr)
        exit_code = 1
    if exit_code:
        return exit_code
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as handle:
            handle.write(snapshot_to_json_lines(result.snapshot) + "\n")
        print(f"deterministic metrics snapshot written to {args.snapshot}")
    if args.metrics:
        _emit_metrics(result.snapshot, args.metrics)
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.reporting import render_table
    from repro.testbed.decomposition import mean_shares, run_decomposition

    breakdowns = run_decomposition(runs=args.runs, seed=args.seed)
    shares = mean_shares(breakdowns)
    print(f"T2A decomposition over {len(breakdowns)} runs of A2/E2:")
    print(render_table(
        ["stage", "mean share"],
        [[stage, f"{share:.1%}"] for stage, share in shares.items()],
    ))
    return 0


def _cmd_export_figures(args: argparse.Namespace) -> int:
    from repro.reporting import export_all_figures

    written = export_all_figures(
        args.output, corpus_scale=args.scale, t2a_runs=args.runs, seed=args.seed
    )
    for key, path in sorted(written.items()):
        print(f"  {key:16s} -> {path}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSpecError, expand_cells, load_spec
    from repro.experiments.runner import MatrixRunError, run_cell_to_file, run_matrix
    from repro.reporting import render_experiment_table

    try:
        spec = load_spec(args.spec)
    except ExperimentSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cells = expand_cells(spec)
    if args.list:
        print(f"spec {spec.name!r}: {len(cells)} cells (sha256 {spec.sha256[:12]})")
        for cell in cells:
            print(f"  [{cell.index:4d}] {cell.sweep.name} ({cell.sweep.kind}): {cell.label()}")
        return 0

    if args.cell is not None:
        try:
            path = run_cell_to_file(spec, args.cell, args.output)
        except IndexError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(path)
        return 0

    def _progress(index: int, cell) -> None:
        print(f"  cell {index:4d}/{len(cells) - 1} done: "
              f"{cell.sweep.name} {cell.label()}")

    try:
        results = run_matrix(
            spec,
            spec_path=args.spec,
            output_dir=args.output,
            jobs=args.jobs,
            isolate=not args.in_process,
            progress=_progress if not args.quiet else None,
        )
    except MatrixRunError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_experiment_table(results.to_dict()))
    print(f"results: {args.output}/results.json")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rerun the IMC'17 IFTTT characterization experiments.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    ecosystem = sub.add_parser("ecosystem", help="generate, crawl, and analyze the §3 corpus")
    ecosystem.add_argument("--scale", type=float, default=0.05,
                           help="corpus scale factor in (0, 1] (default 0.05)")
    ecosystem.add_argument("--seed", type=int, default=2017)
    ecosystem.add_argument("--save", metavar="PATH", help="save crawled snapshots as JSON")
    ecosystem.set_defaults(func=_cmd_ecosystem)

    t2a = sub.add_parser("t2a", help="measure trigger-to-action latency (§4)")
    t2a.add_argument("--applet", default="A2", choices=[f"A{i}" for i in range(1, 8)])
    t2a.add_argument("--scenario", default="official",
                     help="official, E1, E2, or E3 (default official)")
    t2a.add_argument("--runs", type=int, default=20)
    t2a.add_argument("--seed", type=int, default=7)
    t2a.add_argument("--metrics", metavar="PATH",
                     help="write the run's metrics report as JSON lines")
    t2a.set_defaults(func=_cmd_t2a)

    timeline = sub.add_parser("timeline", help="print a Table 5 execution timeline")
    timeline.add_argument("--seed", type=int, default=21)
    timeline.set_defaults(func=_cmd_timeline)

    loops = sub.add_parser("loops", help="run an infinite-loop experiment (§4)")
    loops.add_argument("--kind", choices=("explicit", "implicit"), default="explicit")
    loops.add_argument("--duration", type=float, default=3600.0,
                       help="simulated seconds (default 3600)")
    loops.add_argument("--runtime-detection", action="store_true",
                       help="enable the runtime loop kill switch")
    loops.add_argument("--seed", type=int, default=3)
    loops.set_defaults(func=_cmd_loops)

    fleet = sub.add_parser("fleet", help="fleet-scale poll-vs-push experiment (§6)")
    fleet.add_argument("--applets", type=int, default=150)
    fleet.add_argument("--push", action="store_true",
                       help="honour realtime hints for everyone (full push)")
    fleet.add_argument("--publications", type=int, default=4)
    fleet.add_argument("--seed", type=int, default=5)
    fleet.add_argument("--metrics", metavar="PATH",
                       help="write the run's metrics report as JSON lines")
    fleet.set_defaults(func=_cmd_fleet)

    chaos = sub.add_parser("chaos", help="run a fault-injection chaos scenario")
    chaos.add_argument("--scenario", default="outage",
                       help="outage, partition, flappy, or brownout (default outage)")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--shards", type=int, default=1, metavar="N",
                       help="run against a sharded engine fleet of N shards "
                            "(1 = the single-engine world)")
    chaos.add_argument("--shard-strategy", default="service_hash",
                       choices=("service_hash", "round_robin", "popularity_balanced"),
                       help="applet-to-shard assignment strategy (see docs/SHARDING.md)")
    chaos.add_argument("--parallel", action="store_true",
                       help="step shards on per-shard simulators with epoch "
                            "barriers (requires --shards >= 2; byte-identical "
                            "snapshots for any --jobs; see docs/SHARDING.md)")
    chaos.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker threads for --parallel epoch stepping "
                            "(default 1 = serial stepping of the same world)")
    chaos.add_argument("--replay", action="store_true",
                       help="enable dead-letter replay on heal and report the "
                            "catch-up burst, batched vs unbatched")
    chaos.add_argument("--replay-batch-limit", type=int, default=50, metavar="K",
                       help="actions coalesced per batched replay request "
                            "(default 50, the paper's polling limit)")
    chaos.add_argument("--delivery", default="poll",
                       choices=("poll", "hint", "push"),
                       help="how sensor events reach the engine: poll (default), "
                            "hint (realtime hints, all honoured), or push "
                            "(payload notifications under the push contract; "
                            "see docs/DELIVERY.md)")
    chaos.add_argument("--adaptive", action="store_true",
                       help="enable health-aware adaptive delivery, print the "
                            "adaptive-vs-polling comparison table, and enforce "
                            "the degradation acceptance criteria (exit 1 on "
                            "violation; see docs/ROBUSTNESS.md)")
    chaos.add_argument("--faults", metavar="PLAN.json",
                       help="override the scenario's fault plan with a JSON plan file")
    chaos.add_argument("--snapshot", metavar="PATH",
                       help="write the deterministic metrics snapshot (JSON lines)")
    chaos.add_argument("--metrics", metavar="PATH",
                       help="write the run's metrics report as JSON lines")
    chaos.set_defaults(func=_cmd_chaos)

    experiments = sub.add_parser(
        "experiments", help="run a declarative experiment matrix (EXPERIMENTS/*.json)"
    )
    experiments.add_argument("spec", metavar="SPEC.json",
                             help="experiment matrix spec (see EXPERIMENTS.md)")
    experiments.add_argument("--cell", type=int, metavar="I",
                             help="run only cell I and write its artifact "
                                  "(what the orchestrator's subprocesses call)")
    experiments.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="cells to run concurrently (default 1)")
    experiments.add_argument("--output", default="experiment-results", metavar="DIR",
                             help="output directory (default experiment-results)")
    experiments.add_argument("--in-process", action="store_true",
                             help="run cells serially in this interpreter instead "
                                  "of one subprocess per cell")
    experiments.add_argument("--list", action="store_true",
                             help="print the expanded cell list and exit")
    experiments.add_argument("--quiet", action="store_true",
                             help="suppress per-cell progress lines")
    experiments.set_defaults(func=_cmd_experiments)

    decompose = sub.add_parser("decompose", help="T2A latency stage decomposition")
    decompose.add_argument("--runs", type=int, default=15)
    decompose.add_argument("--seed", type=int, default=7)
    decompose.set_defaults(func=_cmd_decompose)

    export = sub.add_parser("export-figures", help="write every figure's data as CSV")
    export.add_argument("--output", default="figures", help="output directory")
    export.add_argument("--scale", type=float, default=0.05)
    export.add_argument("--runs", type=int, default=20)
    export.add_argument("--seed", type=int, default=7)
    export.set_defaults(func=_cmd_export_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
