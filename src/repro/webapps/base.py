"""Common web-application machinery."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.net.address import Address
from repro.net.http import HttpNode
from repro.simcore.trace import Trace


class WebApp(HttpNode):
    """Base class for cloud web applications.

    Provides a per-app activity log (an append-only list of structured
    activity records with monotonically increasing ids) that the cursored
    listing endpoints and the partner services' poll loops consume.
    """

    APP_NAME = "webapp"

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.02) -> None:
        super().__init__(address, service_time=service_time)
        self.trace = trace
        self._activity: List[Dict[str, Any]] = []
        self._next_activity_id = 1
        self.add_route("GET", "/api/activity", self._handle_activity)

    def _handle_activity(self, request) -> Dict[str, Any]:
        body = request.body or {}
        return {
            "activity": self.activity_since(
                int(body.get("since_id", 0)),
                activity=body.get("activity"),
                limit=int(body.get("limit", 100)),
            )
        }

    def log_activity(self, activity: str, **data: Any) -> Dict[str, Any]:
        """Append one activity record; returns it (with id and time)."""
        record = {
            "id": self._next_activity_id,
            "activity": activity,
            "time": self.now if self.network is not None else 0.0,
            **data,
        }
        self._next_activity_id += 1
        self._activity.append(record)
        if self.trace is not None:
            self.trace.record(record["time"], self.APP_NAME, f"app_{activity}", **data)
        return record

    def activity_since(self, since_id: int, activity: Optional[str] = None, limit: int = 100) -> List[Dict[str, Any]]:
        """Activity records with id > ``since_id``, oldest first."""
        matches = [
            rec
            for rec in self._activity
            if rec["id"] > since_id and (activity is None or rec["activity"] == activity)
        ]
        return matches[:limit]

    @property
    def activity_count(self) -> int:
        """Total number of activity records."""
        return len(self._activity)
