"""Google Sheets model — including the notification feature.

Sheets appear on the action side of applets A1 ("add line to spreadsheet")
and A7 ("keep a spreadsheet of songs").  Crucially for §4's *implicit
infinite loop*: real Sheets can be configured to email the owner when a
spreadsheet is modified.  Combined with the applet "add a row when an
email is received", that notification closes a feedback loop that IFTTT
cannot see by analyzing applets offline.  :meth:`enable_notifications`
reproduces that feature, emailing through a :class:`~repro.webapps.gmail.Gmail`
node on every row append.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.address import Address
from repro.net.http import HttpRequest
from repro.simcore.trace import Trace
from repro.webapps.base import WebApp


class GoogleSheets(WebApp):
    """Named spreadsheets of appended rows.

    Routes
    ------
    ``POST /api/sheets/<name>/rows`` — append a row (list of cells).
    ``GET /api/sheets/<name>/rows`` — body ``{since_row}``; rows after a cursor.
    """

    APP_NAME = "sheets"

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.03) -> None:
        super().__init__(address, trace=trace, service_time=service_time)
        self._sheets: Dict[str, List[Tuple[float, List[Any]]]] = {}
        #: sheet name -> (gmail address, owner email) for notify-on-edit
        self._notifications: Dict[str, Tuple[Address, str]] = {}
        self.add_route("POST", "/api/sheets/", self._handle_append)
        self.add_route("GET", "/api/sheets/", self._handle_rows)

    def create_sheet(self, name: str) -> None:
        """Create an empty spreadsheet (appending also auto-creates)."""
        self._sheets.setdefault(name, [])

    def append_row(self, name: str, cells: List[Any]) -> int:
        """Append a row; returns the new row index (1-based)."""
        rows = self._sheets.setdefault(name, [])
        rows.append((self.now if self.network is not None else 0.0, list(cells)))
        row_index = len(rows)
        self.log_activity("row_added", sheet=name, row=row_index, cells=list(cells))
        self._maybe_notify(name, row_index)
        return row_index

    def rows(self, name: str, since_row: int = 0) -> List[List[Any]]:
        """Cell lists of rows after ``since_row`` (1-based cursor)."""
        return [cells for _, cells in self._sheets.get(name, [])[since_row:]]

    def row_count(self, name: str) -> int:
        """Number of rows in a sheet (0 for unknown sheets)."""
        return len(self._sheets.get(name, ()))

    # -- the notification feature ------------------------------------------------

    def enable_notifications(self, name: str, gmail: Address, owner_email: str) -> None:
        """Email ``owner_email`` (via the Gmail node) whenever ``name`` changes.

        This is the user-side setting that, together with an
        email-to-spreadsheet applet, forms the paper's implicit infinite
        loop — the notification path is invisible to the IFTTT engine.
        """
        self.create_sheet(name)
        self._notifications[name] = (gmail, owner_email)

    def disable_notifications(self, name: str) -> None:
        """Turn the notify-on-edit feature off for one sheet."""
        self._notifications.pop(name, None)

    def _maybe_notify(self, name: str, row_index: int) -> None:
        subscription = self._notifications.get(name)
        if subscription is None or self.network is None:
            return
        gmail, owner_email = subscription
        self.post(
            gmail,
            "/api/send",
            body={
                "to": owner_email,
                "from": "notifications@sheets",
                "subject": f"Spreadsheet {name} was modified",
                "body": f"Row {row_index} was added.",
            },
        )

    # -- HTTP handlers -------------------------------------------------------------

    def _sheet_from_path(self, path: str) -> Optional[str]:
        # /api/sheets/<name>/rows
        parts = path.strip("/").split("/")
        if len(parts) == 4 and parts[3] == "rows":
            return parts[2]
        return None

    def _handle_append(self, request: HttpRequest):
        name = self._sheet_from_path(request.path)
        if name is None:
            return 400, {"error": "expected /api/sheets/<name>/rows"}
        cells = (request.body or {}).get("cells")
        if not isinstance(cells, list):
            return 400, {"error": "body must contain a 'cells' list"}
        row = self.append_row(name, cells)
        return {"row": row}

    def _handle_rows(self, request: HttpRequest):
        name = self._sheet_from_path(request.path)
        if name is None:
            return 400, {"error": "expected /api/sheets/<name>/rows"}
        since_row = int((request.body or {}).get("since_row", 0))
        return {"rows": self.rows(name, since_row=since_row), "total": self.row_count(name)}
