"""Google Drive model.

The action side of applet A4 (*automatically save new gmail attachments to
google drive*) and a generic cloud-storage logging target (Table 1,
category 6 — cloud storage actions carry 13.6% of action add count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.address import Address
from repro.net.http import HttpRequest
from repro.simcore.trace import Trace
from repro.webapps.base import WebApp


@dataclass
class DriveFile:
    """One stored file."""

    file_id: int
    owner: str
    name: str
    folder: str
    size_bytes: int
    uploaded_at: float


class GoogleDrive(WebApp):
    """Per-user cloud file storage.

    Routes
    ------
    ``POST /api/upload`` — ``{user, name, folder?, size_bytes?}``.
    ``GET /api/files`` — ``{user, folder?, since_id?}``.
    """

    APP_NAME = "gdrive"

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.04) -> None:
        super().__init__(address, trace=trace, service_time=service_time)
        self._files: Dict[str, List[DriveFile]] = {}
        self._next_file_id = 1
        self.add_route("POST", "/api/upload", self._handle_upload)
        self.add_route("GET", "/api/files", self._handle_files)

    def upload(self, user: str, name: str, folder: str = "/", size_bytes: int = 0) -> DriveFile:
        """Store a file for ``user``; returns the stored record."""
        entry = DriveFile(
            file_id=self._next_file_id,
            owner=user,
            name=name,
            folder=folder,
            size_bytes=size_bytes,
            uploaded_at=self.now if self.network is not None else 0.0,
        )
        self._next_file_id += 1
        self._files.setdefault(user, []).append(entry)
        self.log_activity("file_uploaded", user=user, name=name, folder=folder, file_id=entry.file_id)
        return entry

    def files(self, user: str, folder: Optional[str] = None) -> List[DriveFile]:
        """A user's files, optionally restricted to one folder."""
        return [
            f for f in self._files.get(user, []) if folder is None or f.folder == folder
        ]

    def _handle_upload(self, request: HttpRequest):
        body = request.body or {}
        for required in ("user", "name"):
            if required not in body:
                return 400, {"error": f"missing field {required!r}"}
        entry = self.upload(
            user=body["user"],
            name=body["name"],
            folder=body.get("folder", "/"),
            size_bytes=int(body.get("size_bytes", 0)),
        )
        return {"file_id": entry.file_id}

    def _handle_files(self, request: HttpRequest):
        body = request.body or {}
        user = body.get("user")
        if not user:
            return 400, {"error": "missing field 'user'"}
        since_id = int(body.get("since_id", 0))
        listed = [
            {
                "file_id": f.file_id,
                "name": f.name,
                "folder": f.folder,
                "size_bytes": f.size_bytes,
                "uploaded_at": f.uploaded_at,
            }
            for f in self.files(user, folder=body.get("folder"))
            if f.file_id > since_id
        ]
        return {"files": listed}
