"""Weather service model.

IFTTT's canonical example applet — "turn your hue lights blue whenever it
starts to rain" (§2) — needs a weather provider on the trigger side.  The
service holds current conditions per location and logs condition changes
as activity, which a partner service polls.  An optional autonomous
weather process drives random condition changes for long-running
experiments.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.address import Address
from repro.net.http import HttpRequest
from repro.simcore.process import Process, Timeout
from repro.simcore.rng import Rng
from repro.simcore.trace import Trace
from repro.webapps.base import WebApp

CONDITIONS = ("clear", "cloudy", "rain", "snow", "wind")


class WeatherService(WebApp):
    """Per-location current conditions with change history.

    Routes
    ------
    ``GET /api/current`` — body ``{location}``.
    ``GET /api/changes`` — body ``{location, since_id}``.
    """

    APP_NAME = "weather"

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.02) -> None:
        super().__init__(address, trace=trace, service_time=service_time)
        self._conditions: Dict[str, str] = {}
        self.add_route("GET", "/api/current", self._handle_current)
        self.add_route("GET", "/api/changes", self._handle_changes)

    def set_conditions(self, location: str, condition: str) -> bool:
        """Update a location's conditions; returns True if they changed."""
        if condition not in CONDITIONS:
            raise ValueError(f"unknown condition {condition!r}; expected one of {CONDITIONS}")
        if self._conditions.get(location) == condition:
            return False
        previous = self._conditions.get(location)
        self._conditions[location] = condition
        self.log_activity("conditions_changed", location=location, condition=condition, previous=previous)
        return True

    def current(self, location: str) -> Optional[str]:
        """The current condition for a location (None if never set)."""
        return self._conditions.get(location)

    def start_weather_process(self, location: str, rng: Rng, mean_dwell: float = 3600.0) -> Process:
        """Spawn a process that randomly walks the location's conditions."""
        def weather() :
            while True:
                yield Timeout(rng.exponential(mean_dwell))
                self.set_conditions(location, rng.choice(CONDITIONS))
        return Process(self.sim, weather(), name=f"weather:{location}")

    def _handle_current(self, request: HttpRequest):
        location = (request.body or {}).get("location")
        if not location:
            return 400, {"error": "missing field 'location'"}
        return {"location": location, "condition": self._conditions.get(location)}

    def _handle_changes(self, request: HttpRequest):
        body = request.body or {}
        location = body.get("location")
        if not location:
            return 400, {"error": "missing field 'location'"}
        changes = [
            rec
            for rec in self.activity_since(int(body.get("since_id", 0)), activity="conditions_changed")
            if rec.get("location") == location
        ]
        return {"changes": changes}
