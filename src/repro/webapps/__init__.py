"""Web-application models.

The paper's testbed drove several commercial web apps through their APIs:
Gmail and Google Drive (§2.1), Google Sheets (applets A1, A7, and the
implicit-infinite-loop experiment in §4), and the weather service used by
IFTTT's motivating example.  Each is a cloud HTTP node exposing the small
API surface the partner services consume.

Per §2.2, partner services reach web apps by *polling* (unlike IoT
devices, which push through the local proxy) — so each app exposes
cursored ``GET`` listing endpoints alongside its action endpoints.
"""

from repro.webapps.base import WebApp
from repro.webapps.gmail import Gmail, Email
from repro.webapps.gdrive import GoogleDrive, DriveFile
from repro.webapps.sheets import GoogleSheets
from repro.webapps.weather import WeatherService

__all__ = [
    "WebApp",
    "Gmail",
    "Email",
    "GoogleDrive",
    "DriveFile",
    "GoogleSheets",
    "WeatherService",
]
