"""Gmail model.

Supports the testbed's trigger side (*any new email arrives* — applet A3;
*new attachment* — A4) and action side (*send an email*).  Per-user
inboxes live inside one Gmail node; mail addressed to another simulated
user of the same node is delivered locally, which is how the Sheets
notification feature closes the implicit infinite loop of §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.address import Address
from repro.net.http import HttpRequest
from repro.simcore.trace import Trace
from repro.webapps.base import WebApp


@dataclass
class Email:
    """One delivered message."""

    msg_id: int
    to: str
    sender: str
    subject: str
    body: str
    attachments: Tuple[str, ...] = ()
    received_at: float = 0.0

    def has_attachments(self) -> bool:
        """Whether any attachment is present (the A4 trigger condition)."""
        return bool(self.attachments)


class Gmail(WebApp):
    """An email provider with per-user inboxes.

    Routes
    ------
    ``POST /api/send``
        Action endpoint: ``{to, from, subject, body, attachments?}``.
    ``GET /api/messages``
        Poll endpoint: body ``{user, since_id, with_attachments?}`` —
        returns messages with ``msg_id > since_id``, oldest first.
    """

    APP_NAME = "gmail"

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.03) -> None:
        super().__init__(address, trace=trace, service_time=service_time)
        self._inboxes: Dict[str, List[Email]] = {}
        self._next_msg_id = 1
        self.add_route("POST", "/api/send", self._handle_send)
        self.add_route("GET", "/api/messages", self._handle_messages)

    def create_account(self, user: str) -> None:
        """Provision an inbox; delivering to an unknown user also creates one."""
        self._inboxes.setdefault(user, [])

    def deliver_email(
        self,
        to: str,
        sender: str,
        subject: str,
        body: str = "",
        attachments: Tuple[str, ...] = (),
    ) -> Email:
        """Deliver a message into ``to``'s inbox (external or local mail)."""
        email = Email(
            msg_id=self._next_msg_id,
            to=to,
            sender=sender,
            subject=subject,
            body=body,
            attachments=tuple(attachments),
            received_at=self.now if self.network is not None else 0.0,
        )
        self._next_msg_id += 1
        self._inboxes.setdefault(to, []).append(email)
        self.log_activity(
            "email_received",
            to=to,
            sender=sender,
            subject=subject,
            msg_id=email.msg_id,
            attachments=list(attachments),
        )
        return email

    def inbox(self, user: str) -> List[Email]:
        """All messages in a user's inbox, oldest first."""
        return list(self._inboxes.get(user, []))

    def messages_since(
        self, user: str, since_id: int, with_attachments: bool = False, limit: int = 100
    ) -> List[Email]:
        """Messages newer than ``since_id``; optionally only with attachments."""
        out = [
            email
            for email in self._inboxes.get(user, [])
            if email.msg_id > since_id and (not with_attachments or email.has_attachments())
        ]
        return out[:limit]

    def _handle_send(self, request: HttpRequest):
        body = request.body or {}
        for required in ("to", "from", "subject"):
            if required not in body:
                return 400, {"error": f"missing field {required!r}"}
        email = self.deliver_email(
            to=body["to"],
            sender=body["from"],
            subject=body["subject"],
            body=body.get("body", ""),
            attachments=tuple(body.get("attachments", ())),
        )
        return {"sent": email.msg_id}

    def _handle_messages(self, request: HttpRequest):
        body = request.body or {}
        user = body.get("user")
        if not user:
            return 400, {"error": "missing field 'user'"}
        messages = self.messages_since(
            user,
            since_id=int(body.get("since_id", 0)),
            with_attachments=bool(body.get("with_attachments", False)),
            limit=int(body.get("limit", 100)),
        )
        return {
            "messages": [
                {
                    "msg_id": m.msg_id,
                    "to": m.to,
                    "from": m.sender,
                    "subject": m.subject,
                    "body": m.body,
                    "attachments": list(m.attachments),
                    "received_at": m.received_at,
                }
                for m in messages
            ]
        }
