"""One weekly crawl snapshot."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.ecosystem.growth import snapshot_date


@dataclass
class CrawledService:
    """A service as scraped from its page."""

    slug: str
    name: str
    description: str
    triggers: List[Dict[str, str]] = field(default_factory=list)
    actions: List[Dict[str, str]] = field(default_factory=list)

    @property
    def trigger_count(self) -> int:
        """Number of scraped triggers."""
        return len(self.triggers)

    @property
    def action_count(self) -> int:
        """Number of scraped actions."""
        return len(self.actions)


@dataclass
class CrawledApplet:
    """An applet as scraped from its page."""

    applet_id: int
    name: str
    description: str
    trigger_name: str
    trigger_slug: str
    trigger_service_slug: str
    action_name: str
    action_slug: str
    action_service_slug: str
    author: str
    author_is_user: bool
    add_count: int


@dataclass
class CrawlSnapshot:
    """Everything one weekly crawl collected."""

    week: int
    services: Dict[str, CrawledService] = field(default_factory=dict)
    applets: Dict[int, CrawledApplet] = field(default_factory=dict)
    pages_fetched: int = 0
    ids_probed: int = 0

    @property
    def date(self) -> str:
        """ISO date of this snapshot."""
        return snapshot_date(self.week)

    def summary(self) -> Dict[str, int]:
        """Headline counts, matching :meth:`repro.ecosystem.corpus.Corpus.summary`."""
        return {
            "services": len(self.services),
            "triggers": sum(s.trigger_count for s in self.services.values()),
            "actions": sum(s.action_count for s in self.services.values()),
            "applets": len(self.applets),
            "add_count": sum(a.add_count for a in self.applets.values()),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (for :class:`~repro.crawler.store.SnapshotStore`)."""
        return {
            "week": self.week,
            "date": self.date,
            "pages_fetched": self.pages_fetched,
            "ids_probed": self.ids_probed,
            "services": {
                slug: {
                    "slug": s.slug,
                    "name": s.name,
                    "description": s.description,
                    "triggers": s.triggers,
                    "actions": s.actions,
                }
                for slug, s in self.services.items()
            },
            "applets": {
                str(applet_id): vars(a) for applet_id, a in self.applets.items()
            },
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "CrawlSnapshot":
        """Inverse of :meth:`to_dict`."""
        snapshot = CrawlSnapshot(
            week=payload["week"],
            pages_fetched=payload.get("pages_fetched", 0),
            ids_probed=payload.get("ids_probed", 0),
        )
        for slug, raw in payload.get("services", {}).items():
            snapshot.services[slug] = CrawledService(
                slug=raw["slug"],
                name=raw["name"],
                description=raw.get("description", ""),
                triggers=list(raw.get("triggers", [])),
                actions=list(raw.get("actions", [])),
            )
        for raw in payload.get("applets", {}).values():
            applet = CrawledApplet(**raw)
            snapshot.applets[applet.applet_id] = applet
        return snapshot
