"""HTML scrapers for the simulated ifttt.com pages.

Regex-based extraction against the page structure the crawler
reverse-engineered.  Parsers raise :class:`ParseError` on structurally
unexpected pages so crawl-time breakage is loud, the way a real scraper
pipeline must be.
"""

from __future__ import annotations

import html
import re
from typing import Any, Dict, List

_SERVICE_LINK_RE = re.compile(r'href="/services/([a-z0-9_]+)">([^<]+)</a>')
_SERVICE_NAME_RE = re.compile(r'<h1 class="service-name">([^<]*)</h1>')
_SERVICE_DESC_RE = re.compile(r'<p class="service-description">([^<]*)</p>')
_TRIGGER_RE = re.compile(r'<li class="trigger" data-slug="([^"]+)">([^<]*)</li>')
_ACTION_RE = re.compile(r'<li class="action" data-slug="([^"]+)">([^<]*)</li>')
_APPLET_NAME_RE = re.compile(r'<h1 class="applet-name">([^<]*)</h1>')
_APPLET_DESC_RE = re.compile(r'<p class="applet-description">([^<]*)</p>')
_META_RE = re.compile(r'<dd class="([a-z-]+)"(?: data-slug="([^"]*)")?(?: data-kind="([^"]*)")?>([^<]*)</dd>')


class ParseError(ValueError):
    """A page did not match the expected structure."""


def parse_index_page(page: str) -> List[Dict[str, str]]:
    """Extract ``{slug, name}`` entries from the service index page."""
    matches = _SERVICE_LINK_RE.findall(page)
    if not matches and "All services" not in page:
        raise ParseError("not a service index page")
    return [{"slug": slug, "name": html.unescape(name)} for slug, name in matches]


def parse_service_page(page: str) -> Dict[str, Any]:
    """Extract name, description, triggers, and actions from a service page."""
    name = _SERVICE_NAME_RE.search(page)
    if name is None:
        raise ParseError("service page missing name header")
    description = _SERVICE_DESC_RE.search(page)
    return {
        "name": html.unescape(name.group(1)),
        "description": html.unescape(description.group(1)) if description else "",
        "triggers": [
            {"slug": slug, "name": html.unescape(text)}
            for slug, text in _TRIGGER_RE.findall(page)
        ],
        "actions": [
            {"slug": slug, "name": html.unescape(text)}
            for slug, text in _ACTION_RE.findall(page)
        ],
    }


def parse_applet_page(page: str) -> Dict[str, Any]:
    """Extract the §3.1 applet fields: name, description, trigger, trigger
    service, action, action service, author, and add count."""
    name = _APPLET_NAME_RE.search(page)
    if name is None:
        raise ParseError("applet page missing name header")
    description = _APPLET_DESC_RE.search(page)
    record: Dict[str, Any] = {
        "name": html.unescape(name.group(1)),
        "description": html.unescape(description.group(1)) if description else "",
    }
    for css_class, slug, kind, text in _META_RE.findall(page):
        key = css_class.replace("-", "_")
        record[key] = html.unescape(text)
        if slug:
            record[f"{key}_slug"] = slug
        if kind:
            record[f"{key}_kind"] = kind
    if "add_count" not in record:
        raise ParseError("applet page missing add count")
    record["add_count"] = int(record["add_count"])
    return record
