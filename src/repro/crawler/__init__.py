"""The §3.1 data-collection pipeline.

"To begin with, we parse the IFTTT partner service index page to get a
list of all services.  Then through reverse engineering the URLs of
applets' pages, we observe that the URLs can be systematically retrieved
by enumerating a six-digit applet ID. ... Every week from November 2016
to April 2017, we used the tool to take a 'snapshot' of the IFTTT
ecosystem."

* :class:`~repro.crawler.crawler.IftttCrawler` — index parse + service
  pages + applet-id enumeration against a
  :class:`~repro.frontend.site.SimulatedIftttSite`.
* :mod:`repro.crawler.parser` — the HTML scrapers.
* :class:`~repro.crawler.snapshot.CrawlSnapshot` — one week's scrape.
* :class:`~repro.crawler.store.SnapshotStore` — the multi-week archive
  with growth queries and JSON persistence.
"""

from repro.crawler.parser import (
    parse_index_page,
    parse_service_page,
    parse_applet_page,
    ParseError,
)
from repro.crawler.snapshot import CrawlSnapshot, CrawledService, CrawledApplet
from repro.crawler.crawler import IftttCrawler
from repro.crawler.store import SnapshotStore

__all__ = [
    "parse_index_page",
    "parse_service_page",
    "parse_applet_page",
    "ParseError",
    "CrawlSnapshot",
    "CrawledService",
    "CrawledApplet",
    "IftttCrawler",
    "SnapshotStore",
]
