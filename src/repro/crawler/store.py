"""Multi-week snapshot archive."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.crawler.snapshot import CrawlSnapshot


class SnapshotStore:
    """Holds the weekly snapshots of a measurement campaign.

    Supports the §3.2 growth analysis (first-vs-last deltas) and JSON
    persistence (the paper archived ~12 GB per snapshot; our snapshots
    serialize to a few MB at reduced scale).
    """

    def __init__(self) -> None:
        self._snapshots: Dict[int, CrawlSnapshot] = {}

    def add(self, snapshot: CrawlSnapshot) -> None:
        """Archive one snapshot (replacing any existing one for its week)."""
        self._snapshots[snapshot.week] = snapshot

    def weeks(self) -> List[int]:
        """Archived weeks, ascending."""
        return sorted(self._snapshots)

    def get(self, week: int) -> CrawlSnapshot:
        """Snapshot for one week."""
        return self._snapshots[week]

    def first(self) -> CrawlSnapshot:
        """Earliest snapshot."""
        return self._snapshots[self.weeks()[0]]

    def last(self) -> CrawlSnapshot:
        """Latest snapshot."""
        return self._snapshots[self.weeks()[-1]]

    def __len__(self) -> int:
        return len(self._snapshots)

    # -- growth ------------------------------------------------------------------

    def growth(self) -> Dict[str, float]:
        """Relative growth of each headline count, first to last snapshot."""
        if len(self._snapshots) < 2:
            raise ValueError("growth needs at least two snapshots")
        start = self.first().summary()
        end = self.last().summary()
        return {
            key: (end[key] / start[key] - 1.0) if start[key] else float("inf")
            for key in start
        }

    def weekly_summaries(self) -> List[Dict[str, int]]:
        """Headline counts per archived week, ascending."""
        return [dict(self._snapshots[w].summary(), week=w) for w in self.weeks()]

    # -- persistence ----------------------------------------------------------------

    def save(self, path) -> None:
        """Serialize all snapshots to a JSON file."""
        payload = {str(week): snap.to_dict() for week, snap in self._snapshots.items()}
        Path(path).write_text(json.dumps(payload))

    @staticmethod
    def load(path) -> "SnapshotStore":
        """Load a store previously written by :meth:`save`."""
        store = SnapshotStore()
        payload = json.loads(Path(path).read_text())
        for raw in payload.values():
            store.add(CrawlSnapshot.from_dict(raw))
        return store
