"""The crawler: index parse, service pages, applet-id enumeration."""

from __future__ import annotations

from typing import Optional

from repro.crawler.parser import parse_applet_page, parse_index_page, parse_service_page
from repro.crawler.snapshot import CrawledApplet, CrawledService, CrawlSnapshot
from repro.frontend.site import SimulatedIftttSite


class IftttCrawler:
    """Takes weekly snapshots of a simulated ifttt.com.

    Applet discovery enumerates six-digit ids starting at
    ``id_floor`` (100000) and stops after ``miss_streak_limit``
    consecutive 404s — the id space is sparse but dense enough that a
    long miss streak reliably marks its end (the same property the
    paper's enumeration exploited).
    """

    def __init__(
        self,
        site: SimulatedIftttSite,
        id_floor: int = 100000,
        id_ceiling: int = 999999,
        miss_streak_limit: int = 2000,
    ) -> None:
        if id_floor >= id_ceiling:
            raise ValueError("id_floor must be below id_ceiling")
        self.site = site
        self.id_floor = id_floor
        self.id_ceiling = id_ceiling
        self.miss_streak_limit = miss_streak_limit

    def crawl(self, week: Optional[int] = None) -> CrawlSnapshot:
        """Take one full snapshot as of ``week`` (final week by default)."""
        if week is None:
            week = self.site.corpus.final_week
        snapshot = CrawlSnapshot(week=week)
        self._crawl_services(snapshot, week)
        self._crawl_applets(snapshot, week)
        return snapshot

    # -- services -----------------------------------------------------------------

    def _crawl_services(self, snapshot: CrawlSnapshot, week: int) -> None:
        index_page = self.site.fetch("/services", week=week)
        if index_page is None:
            raise RuntimeError("service index page unavailable")
        snapshot.pages_fetched += 1
        for entry in parse_index_page(index_page):
            page = self.site.fetch(f"/services/{entry['slug']}", week=week)
            if page is None:
                continue
            snapshot.pages_fetched += 1
            parsed = parse_service_page(page)
            snapshot.services[entry["slug"]] = CrawledService(
                slug=entry["slug"],
                name=parsed["name"],
                description=parsed["description"],
                triggers=parsed["triggers"],
                actions=parsed["actions"],
            )

    # -- applets ----------------------------------------------------------------------

    def _crawl_applets(self, snapshot: CrawlSnapshot, week: int) -> None:
        misses = 0
        applet_id = self.id_floor
        while applet_id <= self.id_ceiling and misses < self.miss_streak_limit:
            snapshot.ids_probed += 1
            page = self.site.fetch(f"/applets/{applet_id}", week=week)
            if page is None:
                misses += 1
            else:
                misses = 0
                snapshot.pages_fetched += 1
                parsed = parse_applet_page(page)
                snapshot.applets[applet_id] = CrawledApplet(
                    applet_id=applet_id,
                    name=parsed["name"],
                    description=parsed.get("description", ""),
                    trigger_name=parsed.get("trigger_name", ""),
                    trigger_slug=parsed.get("trigger_name_slug", ""),
                    trigger_service_slug=parsed.get("trigger_service_slug", ""),
                    action_name=parsed.get("action_name", ""),
                    action_slug=parsed.get("action_name_slug", ""),
                    action_service_slug=parsed.get("action_service_slug", ""),
                    author=parsed.get("author", ""),
                    author_is_user=parsed.get("author_kind") == "user",
                    add_count=parsed["add_count"],
                )
            applet_id += 1
