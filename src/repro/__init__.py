"""repro — a full reproduction of the IMC '17 IFTTT characterization.

This library rebuilds, as a deterministic simulation, every system used by
*"An Empirical Characterization of IFTTT: Ecosystem, Usage, and
Performance"* (Mi, Qian, Zhang, Wang — IMC 2017):

* the IFTTT trigger-action engine and its partner-service HTTP protocol
  (:mod:`repro.engine`, :mod:`repro.services`),
* the paper's measurement testbed — smart-home devices, home LAN, local
  proxy, web applications, test controller (:mod:`repro.iot`,
  :mod:`repro.webapps`, :mod:`repro.testbed`),
* the six-month ecosystem crawl — a calibrated synthetic corpus, a
  simulated ifttt.com frontend, and the crawler/analysis pipeline
  (:mod:`repro.ecosystem`, :mod:`repro.frontend`, :mod:`repro.crawler`,
  :mod:`repro.analysis`).

See ``DESIGN.md`` for the system inventory and the per-experiment index,
and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
