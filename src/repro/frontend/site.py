"""The simulated site: URL-addressed access to rendered pages."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ecosystem.corpus import Corpus
from repro.frontend.pages import render_applet_page, render_index_page, render_service_page


class SimulatedIftttSite:
    """ifttt.com as of any study week.

    ``fetch(path, week)`` returns the page HTML or ``None`` (a 404) —
    exactly the interface a polite HTTP crawler sees.  Applet URLs use
    the six-digit id scheme the paper reverse-engineered:
    ``/applets/<id>``.
    """

    def __init__(self, corpus: Corpus) -> None:
        self.corpus = corpus
        self._trigger_names: Dict[str, str] = {}
        self._action_names: Dict[str, str] = {}
        for service in corpus.services.values():
            for trigger in service.triggers:
                self._trigger_names[trigger.slug] = trigger.name
            for action in service.actions:
                self._action_names[action.slug] = action.name
        self.requests_served = 0
        self.not_found = 0

    # -- the crawler-facing interface ---------------------------------------------

    def fetch(self, path: str, week: Optional[int] = None) -> Optional[str]:
        """Fetch one URL path; ``None`` plays the role of a 404."""
        self.requests_served += 1
        if week is None:
            week = self.corpus.final_week
        if path in ("/services", "/services/"):
            return render_index_page(self.corpus.services_at(week))
        if path.startswith("/services/"):
            return self._service_page(path[len("/services/"):], week)
        if path.startswith("/applets/"):
            return self._applet_page(path[len("/applets/"):], week)
        self.not_found += 1
        return None

    def applet_id_bounds(self) -> Tuple[int, int]:
        """The id range a crawler must enumerate."""
        return self.corpus.applet_id_bounds()

    # -- internals --------------------------------------------------------------------

    def _service_page(self, slug: str, week: int) -> Optional[str]:
        service = self.corpus.services.get(slug.strip("/"))
        if service is None or service.created_week > week:
            self.not_found += 1
            return None
        return render_service_page(service, week)

    def _applet_page(self, raw_id: str, week: int) -> Optional[str]:
        try:
            applet_id = int(raw_id.strip("/"))
        except ValueError:
            self.not_found += 1
            return None
        applet = self.corpus.applets.get(applet_id)
        if applet is None or applet.created_week > week:
            self.not_found += 1
            return None
        trigger_service = self.corpus.services[applet.trigger_service_slug]
        action_service = self.corpus.services[applet.action_service_slug]
        return render_applet_page(
            applet,
            trigger_name=self._trigger_names.get(applet.trigger_slug, applet.trigger_slug),
            trigger_service_name=trigger_service.name,
            action_name=self._action_names.get(applet.action_slug, applet.action_slug),
            action_service_name=action_service.name,
            add_count=applet.add_count_at(week, self.corpus.final_week),
        )
