"""Simulated ifttt.com frontend.

Renders the pages the paper's crawler scraped — the partner-service index
page, per-service pages, and per-applet pages addressed by six-digit
applet id — from a :class:`~repro.ecosystem.corpus.Corpus`, as of any
study week.  The page structure mirrors what the paper reverse-engineered
(§3.1): applet pages expose name, description, trigger, trigger service,
action, action service, author, and add count.
"""

from repro.frontend.pages import (
    render_index_page,
    render_service_page,
    render_applet_page,
)
from repro.frontend.site import SimulatedIftttSite

__all__ = [
    "render_index_page",
    "render_service_page",
    "render_applet_page",
    "SimulatedIftttSite",
]
