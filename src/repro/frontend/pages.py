"""HTML rendering of ifttt.com-style pages."""

from __future__ import annotations

import html
from typing import Iterable

from repro.ecosystem.corpus import AppletRecord, ServiceRecord


def render_index_page(services: Iterable[ServiceRecord]) -> str:
    """The partner-service index page: one link per service."""
    items = "\n".join(
        f'    <li><a class="service-link" href="/services/{s.slug}">{html.escape(s.name)}</a></li>'
        for s in sorted(services, key=lambda s: s.slug)
    )
    return (
        "<!DOCTYPE html>\n<html>\n<head><title>IFTTT Services</title></head>\n"
        "<body>\n  <h1>All services</h1>\n  <ul class=\"services\">\n"
        f"{items}\n  </ul>\n</body>\n</html>\n"
    )


def render_service_page(service: ServiceRecord, week: int) -> str:
    """One service's page: description plus trigger and action lists."""
    triggers = "\n".join(
        f'      <li class="trigger" data-slug="{t.slug}">{html.escape(t.name)}</li>'
        for t in service.triggers
        if t.created_week <= week
    )
    actions = "\n".join(
        f'      <li class="action" data-slug="{a.slug}">{html.escape(a.name)}</li>'
        for a in service.actions
        if a.created_week <= week
    )
    return (
        "<!DOCTYPE html>\n<html>\n"
        f"<head><title>{html.escape(service.name)} - IFTTT</title></head>\n"
        "<body>\n"
        f'  <h1 class="service-name">{html.escape(service.name)}</h1>\n'
        f'  <p class="service-description">{html.escape(service.description)}</p>\n'
        '  <h2>Triggers</h2>\n  <ul class="triggers">\n'
        f"{triggers}\n  </ul>\n"
        '  <h2>Actions</h2>\n  <ul class="actions">\n'
        f"{actions}\n  </ul>\n"
        "</body>\n</html>\n"
    )


def render_applet_page(
    applet: AppletRecord,
    trigger_name: str,
    trigger_service_name: str,
    action_name: str,
    action_service_name: str,
    add_count: int,
) -> str:
    """One applet's page, exposing the fields the crawler extracts (§3.1)."""
    author_kind = "user" if applet.author_is_user else "service"
    return (
        "<!DOCTYPE html>\n<html>\n"
        f"<head><title>{html.escape(applet.name)} - IFTTT</title></head>\n"
        "<body>\n"
        f'  <h1 class="applet-name">{html.escape(applet.name)}</h1>\n'
        f'  <p class="applet-description">{html.escape(applet.description)}</p>\n'
        '  <dl class="applet-meta">\n'
        f'    <dt>Trigger</dt><dd class="trigger-name" data-slug="{applet.trigger_slug}">{html.escape(trigger_name)}</dd>\n'
        f'    <dt>Trigger service</dt><dd class="trigger-service" data-slug="{applet.trigger_service_slug}">{html.escape(trigger_service_name)}</dd>\n'
        f'    <dt>Action</dt><dd class="action-name" data-slug="{applet.action_slug}">{html.escape(action_name)}</dd>\n'
        f'    <dt>Action service</dt><dd class="action-service" data-slug="{applet.action_service_slug}">{html.escape(action_service_name)}</dd>\n'
        f'    <dt>Author</dt><dd class="author" data-kind="{author_kind}">{html.escape(applet.author)}</dd>\n'
        f'    <dt>Add count</dt><dd class="add-count">{add_count}</dd>\n'
        "  </dl>\n"
        "</body>\n</html>\n"
    )
