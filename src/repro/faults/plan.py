"""Declarative fault plans.

A :class:`FaultPlan` is a replayable schedule of faults: *what* breaks,
*when*, and *for how long*.  Plans are plain data — they can be built in
code, serialized to JSON (``python -m repro chaos --faults PLAN.json``),
and round-tripped losslessly — and they carry no randomness of their
own: all stochastic behaviour (loss sampling, brownout error draws) is
deferred to the :class:`~repro.faults.injector.FaultInjector`'s seeded
RNG, so the same seed + the same plan reproduce the same trace.

Fault kinds
-----------

``service_outage``
    The partner service answers every API request with 503 for the
    window (``PartnerService.set_outage``).  Event ingestion keeps
    working — device clouds buffer independently.
``service_brownout``
    Degraded, not down: each request is rejected with 503 with
    probability ``error_rate``, and ``extra_latency`` seconds are added
    to the service's processing time for the window.
``service_flap``
    The service toggles between outage and health: down for
    ``duty * period`` seconds out of every ``period``, for the window.
``link_down``
    A hard partition of one link (``Network.set_link_state``); routing
    recomputes, and senders with no remaining path get an immediate
    synthetic 503 (connection refused).
``link_loss``
    Each message crossing the link is dropped independently with
    probability ``loss`` for the window (lossy, not partitioned — the
    caller sees timeouts, not refusals).
``link_latency``
    Each message crossing the link has its sampled delay multiplied by
    ``multiplier`` and increased by ``extra`` seconds for the window.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

SERVICE_OUTAGE = "service_outage"
SERVICE_BROWNOUT = "service_brownout"
SERVICE_FLAP = "service_flap"
LINK_DOWN = "link_down"
LINK_LOSS = "link_loss"
LINK_LATENCY = "link_latency"

SERVICE_KINDS = frozenset({SERVICE_OUTAGE, SERVICE_BROWNOUT, SERVICE_FLAP})
LINK_KINDS = frozenset({LINK_DOWN, LINK_LOSS, LINK_LATENCY})
ALL_KINDS = SERVICE_KINDS | LINK_KINDS


class FaultPlanError(ValueError):
    """Raised for malformed fault specs or plans."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at`` and ``duration`` are simulation seconds; service faults name a
    published service ``slug``; link faults name the two endpoint hosts
    ``a`` and ``b``.  Unused parameters keep their neutral defaults, so
    :func:`asdict` round-trips cleanly.
    """

    kind: str
    at: float
    duration: float
    service: Optional[str] = None
    a: Optional[str] = None
    b: Optional[str] = None
    error_rate: float = 0.0
    extra_latency: float = 0.0
    loss: float = 0.0
    multiplier: float = 1.0
    extra: float = 0.0
    period: float = 20.0
    duty: float = 0.5

    @property
    def end(self) -> float:
        """When the fault deactivates."""
        return self.at + self.duration

    def validate(self) -> "FaultSpec":
        """Check internal consistency; returns self for chaining."""
        if self.kind not in ALL_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {sorted(ALL_KINDS)}"
            )
        if self.at < 0 or self.duration <= 0:
            raise FaultPlanError(
                f"{self.kind}: need at >= 0 and duration > 0, got at={self.at} "
                f"duration={self.duration}"
            )
        if self.kind in SERVICE_KINDS and not self.service:
            raise FaultPlanError(f"{self.kind}: missing 'service' slug")
        if self.kind in LINK_KINDS and not (self.a and self.b):
            raise FaultPlanError(f"{self.kind}: missing link endpoints 'a' and 'b'")
        if self.kind == SERVICE_BROWNOUT:
            if not 0.0 <= self.error_rate <= 1.0:
                raise FaultPlanError(
                    f"brownout error_rate must be in [0, 1], got {self.error_rate}"
                )
            if self.extra_latency < 0:
                raise FaultPlanError(
                    f"brownout extra_latency must be non-negative, got {self.extra_latency}"
                )
        if self.kind == SERVICE_FLAP:
            if self.period <= 0 or not 0.0 < self.duty < 1.0:
                raise FaultPlanError(
                    f"flap needs period > 0 and duty in (0, 1), got "
                    f"period={self.period} duty={self.duty}"
                )
        if self.kind == LINK_LOSS and not 0.0 < self.loss <= 1.0:
            raise FaultPlanError(f"link loss must be in (0, 1], got {self.loss}")
        if self.kind == LINK_LATENCY:
            if self.multiplier < 1.0 or self.extra < 0:
                raise FaultPlanError(
                    f"link latency needs multiplier >= 1 and extra >= 0, got "
                    f"multiplier={self.multiplier} extra={self.extra}"
                )
        return self

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able dict (drops neutral-valued optional fields)."""
        defaults = FaultSpec(kind=self.kind, at=0.0, duration=1.0)
        out: Dict[str, Any] = {"kind": self.kind, "at": self.at, "duration": self.duration}
        for key, value in asdict(self).items():
            if key in out:
                continue
            if value != getattr(defaults, key):
                out[key] = value
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultSpec":
        """Parse one fault spec from a dict; raises :class:`FaultPlanError`."""
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be an object, got {type(data).__name__}")
        known = {f for f in FaultSpec.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault spec fields {sorted(unknown)}")
        for required in ("kind", "at", "duration"):
            if required not in data:
                raise FaultPlanError(f"fault spec missing {required!r}: {data}")
        return FaultSpec(**data).validate()


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            spec.validate()

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def end_time(self) -> float:
        """When the last fault deactivates (0.0 for an empty plan)."""
        return max((spec.end for spec in self.specs), default=0.0)

    def services(self) -> List[str]:
        """Slugs of all services the plan touches."""
        return sorted({spec.service for spec in self.specs if spec.service})

    def extended(self, *specs: FaultSpec) -> "FaultPlan":
        """A new plan with extra faults appended."""
        return FaultPlan(self.specs + tuple(specs))

    # -- serialization -------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to the ``--faults`` JSON shape."""
        return json.dumps(
            {"faults": [spec.to_dict() for spec in self.specs]},
            indent=indent,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        """Parse a plan from JSON (an object with a ``faults`` list)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault plan JSON: {exc}") from None
        if isinstance(data, list):  # bare list of specs is accepted too
            entries = data
        elif isinstance(data, dict) and isinstance(data.get("faults"), list):
            entries = data["faults"]
        else:
            raise FaultPlanError(
                "fault plan must be a JSON object with a 'faults' list "
                "(or a bare list of fault specs)"
            )
        return FaultPlan(tuple(FaultSpec.from_dict(entry) for entry in entries))

    @staticmethod
    def from_file(path: str) -> "FaultPlan":
        """Load a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return FaultPlan.from_json(handle.read())

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.specs)} faults, ends t={self.end_time:g}s>"


# -- convenience builders ----------------------------------------------------


def service_outage(service: str, at: float, duration: float) -> FaultSpec:
    """A full outage of one service."""
    return FaultSpec(kind=SERVICE_OUTAGE, at=at, duration=duration, service=service).validate()


def service_brownout(
    service: str, at: float, duration: float, error_rate: float = 0.3, extra_latency: float = 0.0
) -> FaultSpec:
    """A degraded service: elevated error rate and latency."""
    return FaultSpec(
        kind=SERVICE_BROWNOUT, at=at, duration=duration, service=service,
        error_rate=error_rate, extra_latency=extra_latency,
    ).validate()


def service_flap(
    service: str, at: float, duration: float, period: float = 20.0, duty: float = 0.5
) -> FaultSpec:
    """A flappy service: down ``duty`` of every ``period`` seconds."""
    return FaultSpec(
        kind=SERVICE_FLAP, at=at, duration=duration, service=service,
        period=period, duty=duty,
    ).validate()


def link_down(a: str, b: str, at: float, duration: float) -> FaultSpec:
    """A hard partition of the a<->b link."""
    return FaultSpec(kind=LINK_DOWN, at=at, duration=duration, a=a, b=b).validate()


def link_loss(a: str, b: str, at: float, duration: float, loss: float = 0.1) -> FaultSpec:
    """Probabilistic message loss on the a<->b link."""
    return FaultSpec(kind=LINK_LOSS, at=at, duration=duration, a=a, b=b, loss=loss).validate()


def link_latency(
    a: str, b: str, at: float, duration: float, multiplier: float = 1.0, extra: float = 0.0
) -> FaultSpec:
    """A latency spike on the a<->b link."""
    return FaultSpec(
        kind=LINK_LATENCY, at=at, duration=duration, a=a, b=b,
        multiplier=multiplier, extra=extra,
    ).validate()
