"""Deterministic fault injection (``repro.faults``).

The paper's §4 latency findings and its outage observations are
consequences of how the real IFTTT engine tolerates flaky partner
services and lossy networks.  This package makes failure scenarios
first-class, replayable workloads:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a declarative,
  JSON-round-trippable schedule of faults (service outages, brownouts,
  flaps; link partitions, loss, latency spikes).
* :mod:`repro.faults.injector` — :class:`FaultInjector`: turns a plan
  into scheduled simulator events, drawing all randomness from one
  seeded stream so ``(seed, plan)`` reproduces an identical trace.

Engine-side resilience (retry policies, circuit breakers, the action
dead-letter queue) lives in :mod:`repro.engine.resilience`; the chaos
scenario harness lives in :mod:`repro.testbed.chaos`.  Semantics and
determinism guarantees are documented in ``docs/ROBUSTNESS.md``.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    link_down,
    link_latency,
    link_loss,
    service_brownout,
    service_flap,
    service_outage,
)
from repro.faults.injector import FaultInjector, NetworkFaultState, ServiceFaultState

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultInjector",
    "NetworkFaultState",
    "ServiceFaultState",
    "service_outage",
    "service_brownout",
    "service_flap",
    "link_down",
    "link_loss",
    "link_latency",
]
