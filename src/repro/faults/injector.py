"""Seeded deterministic fault injection.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into scheduled simulator events
that flip fault state on and off at the planned times.  All randomness
(per-message loss draws, brownout rejection draws) flows through one
forked :class:`~repro.simcore.rng.Rng` stream, so a chaos run is exactly
reproducible from ``(seed, plan)``.

Hook design — zero cost when disabled:

* the network consults ``network.faults`` (a :class:`NetworkFaultState`)
  only when it is not ``None``; the injector installs it lazily, the
  first time the plan contains a link fault;
* partner services consult ``service.faults`` (a
  :class:`ServiceFaultState`) inside their existing outage check, again
  only when installed;
* hard partitions and outages reuse the first-class knobs that already
  exist (``Network.set_link_state``, ``PartnerService.set_outage``).

Every activation and deactivation is counted in the ``faults.*`` metric
family and recorded in the shared trace, so chaos runs are quantifiable
after the fact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    LINK_DOWN,
    LINK_KINDS,
    LINK_LATENCY,
    LINK_LOSS,
    SERVICE_BROWNOUT,
    SERVICE_FLAP,
    SERVICE_OUTAGE,
)
from repro.net.address import Address
from repro.simcore.rng import Rng

LinkKey = FrozenSet[Address]


class NetworkFaultState:
    """Per-link loss and latency adjustments, consulted by the network.

    :meth:`adjust` is the single hot-path entry point: given a link and
    its freshly sampled delay, it returns the (possibly inflated) delay
    and whether the message was lost on that hop.
    """

    def __init__(self, rng: Rng) -> None:
        self._rng = rng
        self._loss: Dict[LinkKey, float] = {}
        self._latency: Dict[LinkKey, Tuple[float, float]] = {}
        self.messages_lost = 0

    def set_loss(self, key: LinkKey, probability: Optional[float]) -> None:
        """Install (or clear, with ``None``) loss on one link."""
        if probability is None:
            self._loss.pop(key, None)
        else:
            self._loss[key] = probability

    def set_latency(self, key: LinkKey, adjustment: Optional[Tuple[float, float]]) -> None:
        """Install (or clear) a ``(multiplier, extra)`` latency adjustment."""
        if adjustment is None:
            self._latency.pop(key, None)
        else:
            self._latency[key] = adjustment

    def adjust(self, link, delay: float) -> Tuple[float, bool]:
        """Apply active faults to one hop; returns ``(delay, dropped)``."""
        key = link.endpoints()
        probability = self._loss.get(key)
        if probability is not None and self._rng.bernoulli(probability):
            self.messages_lost += 1
            return delay, True
        adjustment = self._latency.get(key)
        if adjustment is not None:
            multiplier, extra = adjustment
            delay = delay * multiplier + extra
        return delay, False


class ServiceFaultState:
    """Brownout state for one partner service.

    The service's existing outage check consults :meth:`rejects` on
    every API request; with no brownout active this is a single float
    comparison.
    """

    def __init__(self, rng: Rng) -> None:
        self._rng = rng
        self.error_rate = 0.0
        self.rejections = 0

    def rejects(self) -> bool:
        """Whether this request is rejected by the active brownout."""
        if self.error_rate <= 0.0:
            return False
        if self._rng.bernoulli(self.error_rate):
            self.rejections += 1
            return True
        return False


class FaultInjector:
    """Applies fault plans to a network and its partner services.

    Parameters
    ----------
    sim:
        The simulator faults are scheduled on.
    network:
        The :class:`~repro.net.network.Network` carrying the traffic.
    services:
        Iterable of :class:`~repro.services.partner.PartnerService`
        (anything with ``slug``/``set_outage``); looked up by slug when
        plans name service faults.
    rng:
        Seeded stream for loss/brownout draws; forked per concern so
        fault draws never perturb the workload's randomness.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the ``faults.*`` family.
    trace:
        Optional shared :class:`~repro.simcore.trace.Trace`.
    """

    def __init__(
        self,
        sim,
        network,
        services: Iterable = (),
        rng: Optional[Rng] = None,
        metrics=None,
        trace=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.rng = rng or Rng(seed=0, name="faults")
        self.metrics = metrics
        self.trace = trace
        self._services = {service.slug: service for service in services}
        self._net_state: Optional[NetworkFaultState] = None
        self._saved_service_time: Dict[str, float] = {}
        self.activations = 0
        self.deactivations = 0
        self.applied_plans: List[FaultPlan] = []

    def register_service(self, service) -> None:
        """Make one more service addressable by plans."""
        self._services[service.slug] = service

    # -- plan application ----------------------------------------------------

    def apply(self, plan: FaultPlan) -> None:
        """Validate the plan against the topology and schedule every fault."""
        for spec in plan:
            self._resolve(spec)  # fail fast on unknown targets
        for spec in plan:
            start = max(0.0, spec.at - self.sim.now)
            self.sim.schedule(
                start, self._activate, spec, label=f"fault-on:{spec.kind}"
            )
            self.sim.schedule(
                start + spec.duration, self._deactivate, spec,
                label=f"fault-off:{spec.kind}",
            )
        self.applied_plans.append(plan)

    def _resolve(self, spec: FaultSpec):
        """The target object of a spec (service or link), validated."""
        if spec.kind in LINK_KINDS:
            a, b = Address(spec.a), Address(spec.b)
            link = self.network.link_between(a, b)
            if link is None:
                raise FaultPlanError(f"{spec.kind}: no link between {spec.a} and {spec.b}")
            return link
        service = self._services.get(spec.service)
        if service is None:
            raise FaultPlanError(
                f"{spec.kind}: unknown service {spec.service!r}; "
                f"known: {sorted(self._services)}"
            )
        return service

    # -- network state installation -----------------------------------------

    def _network_state(self) -> NetworkFaultState:
        if self._net_state is None:
            self._net_state = NetworkFaultState(self.rng.fork("net-loss"))
            self.network.faults = self._net_state
        return self._net_state

    def _service_state(self, service) -> ServiceFaultState:
        if service.faults is None:
            service.faults = ServiceFaultState(self.rng.fork(f"svc-{service.slug}"))
        return service.faults

    # -- activation / deactivation ------------------------------------------

    def _note(self, spec: FaultSpec, active: bool) -> None:
        if active:
            self.activations += 1
        else:
            self.deactivations += 1
        if self.metrics is not None:
            self.metrics.counter(
                "faults.activations" if active else "faults.deactivations",
                kind=spec.kind,
            ).inc()
            self.metrics.gauge("faults.active").add(1 if active else -1)
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                "faults",
                "fault_activated" if active else "fault_deactivated",
                fault_kind=spec.kind,
                target=spec.service or f"{spec.a}<->{spec.b}",
            )

    def _activate(self, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind == SERVICE_OUTAGE:
            self._resolve(spec).set_outage(True)
        elif kind == SERVICE_BROWNOUT:
            service = self._resolve(spec)
            self._service_state(service).error_rate = spec.error_rate
            if spec.extra_latency > 0:
                self._saved_service_time.setdefault(service.slug, service.service_time)
                service.service_time = (
                    self._saved_service_time[service.slug] + spec.extra_latency
                )
        elif kind == SERVICE_FLAP:
            self._flap(spec, down=True)
        elif kind == LINK_DOWN:
            link = self._resolve(spec)
            self.network.set_link_state(link.a, link.b, up=False)
        elif kind == LINK_LOSS:
            link = self._resolve(spec)
            self._network_state().set_loss(link.endpoints(), spec.loss)
        elif kind == LINK_LATENCY:
            link = self._resolve(spec)
            self._network_state().set_latency(
                link.endpoints(), (spec.multiplier, spec.extra)
            )
        self._note(spec, active=True)

    def _deactivate(self, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind == SERVICE_OUTAGE:
            self._resolve(spec).set_outage(False)
        elif kind == SERVICE_BROWNOUT:
            service = self._resolve(spec)
            if service.faults is not None:
                service.faults.error_rate = 0.0
            saved = self._saved_service_time.pop(service.slug, None)
            if saved is not None:
                service.service_time = saved
        elif kind == SERVICE_FLAP:
            self._resolve(spec).set_outage(False)
        elif kind == LINK_DOWN:
            link = self._resolve(spec)
            self.network.set_link_state(link.a, link.b, up=True)
        elif kind == LINK_LOSS:
            if self._net_state is not None:
                self._net_state.set_loss(self._resolve(spec).endpoints(), None)
        elif kind == LINK_LATENCY:
            if self._net_state is not None:
                self._net_state.set_latency(self._resolve(spec).endpoints(), None)
        self._note(spec, active=False)

    def _flap(self, spec: FaultSpec, down: bool) -> None:
        """One phase of a flap cycle; reschedules itself within the window."""
        service = self._resolve(spec)
        now = self.sim.now
        if now >= spec.end:
            service.set_outage(False)
            return
        service.set_outage(down)
        phase = spec.period * (spec.duty if down else (1.0 - spec.duty))
        self.sim.schedule(
            min(phase, max(0.0, spec.end - now)),
            self._flap, spec, not down,
            label=f"fault-flap:{spec.service}",
        )

    def __repr__(self) -> str:
        return (
            f"<FaultInjector services={len(self._services)} "
            f"activations={self.activations}>"
        )
