"""Generator-based processes on top of the event simulator.

A :class:`Process` wraps a Python generator.  The generator yields
*awaitables* — :class:`Timeout` (sleep for simulated seconds) or
:class:`Signal` (wait until another process fires it) — and is resumed by
the simulator when the awaitable completes.  This gives sequential-looking
code (poll loops, device firmware, test controllers) without callbacks.

Example
-------
>>> from repro.simcore import Simulator, Process, Timeout
>>> sim = Simulator()
>>> ticks = []
>>> def clock():
...     while len(ticks) < 3:
...         yield Timeout(10.0)
...         ticks.append(sim.now)
>>> _ = Process(sim, clock())
>>> sim.run()
>>> ticks
[10.0, 20.0, 30.0]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.simcore.simulator import Simulator


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Awaitable: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Signal:
    """Awaitable: a one-to-many broadcast condition.

    Processes yield a Signal to block on it; ``fire(value)`` wakes every
    waiter (in FIFO order) with ``value`` as the yield result.  A Signal can
    be fired repeatedly; each firing only wakes the processes waiting at
    that moment.
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``; return how many woke."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)
        return len(waiters)

    def _subscribe(self, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"<Signal{tag} waiting={self.waiting} fired={self.fire_count}>"


class Process:
    """A running generator coroutine bound to a simulator.

    The generator may yield:

    * ``Timeout(d)`` — resume after ``d`` simulated seconds; yields ``None``.
    * ``Signal`` — resume when the signal fires; yields the fired value.
    * ``Process`` — resume when that process finishes; yields its return value.

    The process starts immediately (its first segment runs synchronously at
    creation time up to the first yield).
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._alive = True
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._done_signal = Signal(name=f"{self.name}.done")
        self._pending_timeout = None
        self._resume(None)

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until finished)."""
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        """Exception that terminated the process, if any."""
        return self._exception

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator at its current yield."""
        if not self._alive:
            return
        if self._pending_timeout is not None:
            self._pending_timeout.cancel()
            self._pending_timeout = None
        self._throw(Interrupt(cause))

    def _resume(self, value: Any) -> None:
        self._pending_timeout = None
        if not self._alive:
            return
        try:
            awaitable = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Exception as exc:  # surface process crashes to the caller
            self._finish(None, exc)
            raise
        self._handle(awaitable)

    def _throw(self, exc: BaseException) -> None:
        try:
            awaitable = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Interrupt:
            self._finish(None, None)
            return
        self._handle(awaitable)

    def _handle(self, awaitable: Any) -> None:
        if isinstance(awaitable, Timeout):
            self._pending_timeout = self.sim.schedule(
                awaitable.delay, self._resume, None, label=f"{self.name}.timeout"
            )
        elif isinstance(awaitable, Signal):
            awaitable._subscribe(self._resume)
        elif isinstance(awaitable, Process):
            if awaitable.alive:
                awaitable._done_signal._subscribe(self._resume)
            else:
                # Already finished: resume on the next event boundary.
                self.sim.schedule(0.0, self._resume, awaitable.result)
        else:
            bad = type(awaitable).__name__
            self._finish(None, TypeError(f"process yielded unsupported {bad}"))
            raise TypeError(f"process {self.name!r} yielded unsupported {bad}")

    def _finish(self, result: Any, exception: Optional[BaseException]) -> None:
        self._alive = False
        self._result = result
        self._exception = exception
        self._done_signal.fire(result)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"
