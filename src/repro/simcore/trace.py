"""Structured trace recording.

Every vantage point in the testbed (local proxy, partner service, engine,
test controller) appends :class:`TraceRecord` entries to a shared
:class:`Trace`.  The §4 analyses (T2A latency, Table 5 timelines,
sequential clustering) are pure queries over this trace — mirroring how
the paper instrumented its testbed at multiple vantage points.

Recording is *lazy*: unless a sink is attached (:meth:`Trace.attach_sink`),
:meth:`Trace.record` stores a plain ``(time, source, kind, detail)`` tuple
and the frozen :class:`TraceRecord` dataclass is only materialized when a
query actually reads the entry.  At fleet scale the engine records one
entry per poll, so skipping four ``object.__setattr__`` calls per record
on the hot path is a measurable win; analyses see identical objects
either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One instrumented observation.

    Attributes
    ----------
    time:
        Simulation time of the observation (seconds).
    source:
        Vantage point that recorded it (e.g. ``"proxy"``, ``"engine"``).
    kind:
        Event kind (e.g. ``"trigger_set"``, ``"poll"``, ``"action_executed"``).
    detail:
        Free-form structured payload (applet id, run id, device name, ...).
    """

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``record.detail.get(key, default)``."""
        return self.detail.get(key, default)


#: Internal storage shape: ``(time, source, kind, detail)``.
_Entry = Tuple[float, str, str, Dict[str, Any]]


class Trace:
    """An append-only, queryable log of :class:`TraceRecord` entries.

    By default the trace grows without bound — the right behaviour for
    the paper's bounded experiments, but a memory leak for soak runs.
    Passing ``max_records`` turns the store into a ring buffer: the
    oldest records are evicted once the cap is reached (``dropped``
    counts evictions), and every query sees only the retained window.
    Because the simulation is deterministic, a bounded trace holds
    exactly the suffix an unbounded run would have recorded, so
    windowed §4 latency statistics are unaffected (see
    ``tests/test_scenario_soak.py``).
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.max_records = max_records
        self.dropped = 0
        self.total_recorded = 0
        self._records: Deque[_Entry] = deque(maxlen=max_records)
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def attach_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Stream every future record to ``sink`` as it is written.

        Attaching a sink switches :meth:`record` from the lazy tuple path
        to eager :class:`TraceRecord` materialization (the sink needs the
        object); the in-memory store and all queries are unaffected.
        """
        self._sinks.append(sink)

    def record(self, time: float, source: str, kind: str, **detail: Any) -> None:
        """Append a record (evicting the oldest when bounded)."""
        if self.max_records is not None and len(self._records) == self.max_records:
            self.dropped += 1
        self._records.append((time, source, kind, detail))
        self.total_recorded += 1
        if self._sinks:
            rec = TraceRecord(time=time, source=source, kind=kind, detail=detail)
            for sink in self._sinks:
                sink(rec)

    @staticmethod
    def _materialize(entry: _Entry) -> TraceRecord:
        time, source, kind, detail = entry
        return TraceRecord(time=time, source=source, kind=kind, detail=detail)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return (self._materialize(entry) for entry in self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._materialize(self._records[index])

    def clear(self) -> None:
        """Drop all records (used between experiment runs)."""
        self._records.clear()

    def query(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        where: Optional[Callable[[TraceRecord], bool]] = None,
        **detail_equals: Any,
    ) -> List[TraceRecord]:
        """Filter records by kind, source, time window, and detail equality.

        ``detail_equals`` keyword arguments must match the record's detail
        dict exactly (e.g. ``trace.query(kind="poll", applet_id=3)``).
        Only matching entries are materialized into :class:`TraceRecord`
        objects; non-matches are rejected on the raw storage tuples.
        """
        out: List[TraceRecord] = []
        for entry in self._records:
            e_time, e_source, e_kind, e_detail = entry
            if kind is not None and e_kind != kind:
                continue
            if source is not None and e_source != source:
                continue
            if since is not None and e_time < since:
                continue
            if until is not None and e_time > until:
                continue
            if detail_equals and any(
                e_detail.get(k) != v for k, v in detail_equals.items()
            ):
                continue
            rec = self._materialize(entry)
            if where is not None and not where(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str, **detail_equals: Any) -> Optional[TraceRecord]:
        """First record matching the filters, or ``None``."""
        matches = self.query(kind=kind, **detail_equals)
        return matches[0] if matches else None

    def last(self, kind: str, **detail_equals: Any) -> Optional[TraceRecord]:
        """Last record matching the filters, or ``None``."""
        matches = self.query(kind=kind, **detail_equals)
        return matches[-1] if matches else None

    def times(self, kind: str, **detail_equals: Any) -> List[float]:
        """Timestamps of all matching records, in order."""
        if not detail_equals:
            return [entry[0] for entry in self._records if entry[2] == kind]
        return [rec.time for rec in self.query(kind=kind, **detail_equals)]

    def kinds(self) -> Dict[str, int]:
        """Histogram of record kinds."""
        counts: Dict[str, int] = {}
        for entry in self._records:
            counts[entry[2]] = counts.get(entry[2], 0) + 1
        return counts

    def __repr__(self) -> str:
        return f"<Trace {len(self._records)} records>"
