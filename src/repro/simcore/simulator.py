"""The event-heap simulator driving all experiments."""

from __future__ import annotations

import heapq
import itertools
import time as _wall  # "time" is a parameter name in run_until
from typing import Any, Callable, List, Optional

from repro.simcore.event import Event


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class RunResult(int):
    """The event count a :meth:`Simulator.run_until` call fired, plus state.

    Behaves exactly like the plain ``int`` the method used to return, so
    existing callers keep working; ``completed`` additionally reports
    whether the horizon was actually drained (``False`` when the run broke
    on ``max_events`` or :meth:`Simulator.stop` with live events still
    pending at ``t <= time``) — the signal callers need to resume instead
    of trusting a clock that must not have advanced.
    """

    def __new__(cls, fired: int, completed: bool) -> "RunResult":
        self = super().__new__(cls, fired)
        self.completed = completed
        return self


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns a binary heap of :class:`~repro.simcore.event.Event`
    objects and a virtual clock ``now`` (seconds, float).  Time only moves
    when events fire; between events nothing happens, so simulated
    experiments that span days of virtual time run in milliseconds.

    Example
    -------
    >>> sim = Simulator()
    >>> order = []
    >>> sim.schedule(2.0, lambda: order.append("b"))
    >>> sim.schedule(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._running = False
        self._stopped = False
        self._fired_count = 0
        self._live = 0  # scheduled, not yet fired, not canceled
        # Per-simulator event sequence: same-instant FIFO order needs only
        # per-heap monotonicity, and independent counters keep concurrently
        # stepped shard simulators (repro.simcore.parallel) free of any
        # shared mutable state.
        self._seq = itertools.count()
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: every run reports events fired, simulated time, and the
        #: wall-clock event rate.  Attached post-construction so the
        #: kernel stays free of upward imports.
        self.metrics = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-canceled) events still scheduled.

        O(1): a counter maintained on schedule/fire/cancel, not a heap
        scan — reporting loops may poll it freely at million-entry heaps
        (``tests/test_simcore_simulator.py`` pins equality with the scan).
        """
        return self._live

    def peek_time(self) -> Optional[float]:
        """Absolute time of the next live event, or ``None`` when drained.

        The epoch hook :class:`repro.simcore.parallel.ShardedSimulator`
        uses to pick conservative barrier times.
        """
        event = self._peek()
        return None if event is None else event.time

    @property
    def fired_count(self) -> int:
        """Total number of events that have fired so far."""
        return self._fired_count

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at the absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at t={time} < now={self._now}")
        event = Event(
            time, callback, args, priority=priority, label=label, seq=next(self._seq)
        )
        event._owner = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def step(self) -> bool:
        """Fire the next non-canceled event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            event = heappop(heap)
            if event._canceled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = event.time
            self._fired_count += 1
            self._live -= 1
            # Detach before firing: a late cancel() on an already-fired
            # event must not decrement the live counter again.
            event._owner = None
            event.fire()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the heap drains (or ``max_events`` fire).

        Returns the number of events fired by this call.  ``max_events``
        guards against runaway feedback loops (the testbed's infinite-loop
        experiments rely on it).
        """
        self._running = True
        self._stopped = False
        fired = 0
        started = _wall.perf_counter()
        step = self.step  # bound once: the loop body is the kernel hot path
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                if not step():
                    break
                fired += 1
        finally:
            self._running = False
            self._report_run(fired, _wall.perf_counter() - started)
        return fired

    def run_until(self, time: float, max_events: Optional[int] = None) -> RunResult:
        """Run events with ``event.time <= time``; then advance the clock to ``time``.

        Returns a :class:`RunResult` — the number of events fired, plus a
        ``completed`` flag.  The clock only advances to ``time`` when the
        horizon was actually drained: a run that broke on ``max_events``
        (or :meth:`stop`) with live events still pending at ``t <= time``
        leaves ``now`` at the last fired event, so a follow-up
        :meth:`step`/:meth:`run_until` resumes instead of raising
        ``SimulationError("event heap corrupted: time went backwards")``.
        """
        if time < self._now:
            raise SimulationError(f"cannot run until t={time} < now={self._now}")
        self._running = True
        self._stopped = False
        fired = 0
        started = _wall.perf_counter()
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                next_event = self._peek()
                if next_event is None or next_event.time > time:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
            self._report_run(fired, _wall.perf_counter() - started)
        remaining = self._peek()
        completed = not self._stopped and (remaining is None or remaining.time > time)
        if completed:
            self._now = max(self._now, time)
        return RunResult(fired, completed)

    def stop(self) -> None:
        """Stop the current :meth:`run`/:meth:`run_until` after the active event."""
        self._stopped = True

    def _report_run(self, fired: int, elapsed: float) -> None:
        """Fold one run's kernel stats into the attached metrics registry.

        Counters are bumped in bulk per run (not per event) to keep the
        step loop free of instrumentation overhead.  The events/sec gauge
        is wall-clock derived and therefore non-deterministic, but gauges
        never feed back into the simulation.
        """
        if self.metrics is None or fired == 0:
            return
        scope = self.metrics.scoped("sim")
        scope.counter("events_fired").inc(fired)
        scope.counter("runs").inc()
        scope.gauge("time_seconds").set(self._now)
        if elapsed > 0:
            scope.gauge("events_per_wallsec").set(fired / elapsed)

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping it, discarding canceled ones."""
        while self._heap:
            event = self._heap[0]
            if event.canceled:
                heapq.heappop(self._heap)
                continue
            return event
        return None

    def __repr__(self) -> str:
        return f"<Simulator now={self._now:.6g} pending={self.pending}>"
