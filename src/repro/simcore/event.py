"""Scheduled events for the discrete-event simulator."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Tuple

_seq_counter = itertools.count()


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  The monotonically
    increasing sequence number guarantees a stable FIFO order for events
    scheduled at the same instant, which keeps simulations deterministic.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    callback:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``callback``.
    priority:
        Tie-break between events at the same time; lower fires first.
    label:
        Optional human-readable tag used by traces and ``repr``.
    """

    __slots__ = (
        "time", "callback", "args", "priority", "seq", "label", "_canceled", "_owner"
    )

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        label: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        self.time = float(time)
        self.callback = callback
        self.args = args
        self.priority = priority
        self.seq = next(_seq_counter) if seq is None else seq
        self.label = label
        self._canceled = False
        #: The owning simulator's live-event ledger (set by
        #: ``Simulator.schedule_at``); lets :meth:`cancel` keep the O(1)
        #: ``Simulator.pending`` counter exact without a heap scan.
        self._owner = None

    @property
    def canceled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._canceled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Canceling is idempotent.  A canceled event stays in the heap but is
        skipped by the simulator when popped; the owning simulator's live
        counter is decremented here, exactly once, so ``Simulator.pending``
        stays O(1).
        """
        if self._canceled:
            return
        self._canceled = True
        owner = self._owner
        if owner is not None:
            self._owner = None
            owner._live -= 1

    def fire(self) -> None:
        """Invoke the callback unless the event was canceled."""
        if not self._canceled:
            self.callback(*self.args)

    def sort_key(self) -> Tuple[float, int, int]:
        """Key used by the simulator's event heap."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Compared O(log n) times per heap operation; comparing fields
        # directly avoids building two tuples per comparison, which at
        # fleet-scale heap sizes dominated kernel time.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        state = " canceled" if self._canceled else ""
        return f"<Event t={self.time:.6g}{tag}{state}>"
