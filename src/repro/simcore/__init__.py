"""Discrete-event simulation kernel.

This package provides the deterministic, seeded discrete-event core on
which every other subsystem (network, devices, the IFTTT engine, the
testbed) runs.  It is deliberately small: an event heap
(:class:`~repro.simcore.simulator.Simulator`), generator-based processes
(:class:`~repro.simcore.process.Process`), a seeded random source with the
distributions the calibration needs (:class:`~repro.simcore.rng.Rng`), and
a structured trace recorder (:class:`~repro.simcore.trace.Trace`).

Example
-------
>>> from repro.simcore import Simulator
>>> sim = Simulator()
>>> fired = []
>>> sim.schedule(5.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[5.0]
"""

from repro.simcore.event import Event
from repro.simcore.simulator import RunResult, Simulator, SimulationError
from repro.simcore.parallel import DEFAULT_LOOKAHEAD, ShardedSimulator
from repro.simcore.process import Process, Timeout, Signal, Interrupt
from repro.simcore.rng import Rng
from repro.simcore.trace import Trace, TraceRecord

__all__ = [
    "DEFAULT_LOOKAHEAD",
    "Event",
    "RunResult",
    "ShardedSimulator",
    "Simulator",
    "SimulationError",
    "Process",
    "Timeout",
    "Signal",
    "Interrupt",
    "Rng",
    "Trace",
    "TraceRecord",
]
