"""Seeded random source with the distributions the reproduction needs.

All stochastic behaviour in the library (polling intervals, network
latencies, ecosystem popularity, workload arrivals) flows through
:class:`Rng` so that every experiment is reproducible from a single seed.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class Rng:
    """A named, seeded random stream.

    Thin wrapper over :class:`random.Random` adding the heavy-tailed
    distributions used for calibration (Zipf, bounded Pareto, lognormal
    parameterized by median/sigma) and convenience sampling helpers.

    ``fork(name)`` derives an independent child stream deterministically,
    so subsystems can be given their own streams without coupling their
    consumption order.
    """

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, name: str) -> "Rng":
        """Derive an independent child stream keyed by ``name``.

        Uses a content hash (not Python's salted ``hash()``) so forked
        seeds are identical across processes and sessions.
        """
        blob = f"{self.seed}|{self.name}|{name}".encode()
        child_seed = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") & 0x7FFFFFFFFFFFFFFF
        return Rng(seed=child_seed, name=f"{self.name}/{name}")

    # -- primitive draws --------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high)."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """k distinct elements sampled without replacement."""
        return self._random.sample(seq, k)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """One item drawn proportionally to ``weights``."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Index drawn proportionally to ``weights``."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self._random.random() * total
        cumulative = 0.0
        for i, w in enumerate(weights):
            cumulative += w
            if target < cumulative:
                return i
        return len(weights) - 1

    # -- distributions -----------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal_median(self, median: float, sigma: float) -> float:
        """Lognormal parameterized by its median and log-space sigma.

        Convenient for latency calibration: half the draws land below
        ``median`` regardless of ``sigma``, and ``sigma`` widens the tail.
        """
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return self._random.lognormvariate(math.log(median), sigma)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian draw."""
        return self._random.gauss(mean, stddev)

    def zipf_rank_weights(self, n: int, alpha: float) -> List[float]:
        """Weights ``1 / rank**alpha`` for ranks 1..n (not normalized)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return [1.0 / (rank ** alpha) for rank in range(1, n + 1)]

    def bounded_pareto(self, alpha: float, low: float, high: float) -> float:
        """Pareto draw truncated to [low, high] via inverse-CDF sampling."""
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got low={low} high={high}")
        u = self._random.random()
        la, ha = low ** alpha, high ** alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    def pareto_int(self, alpha: float, minimum: int = 1) -> int:
        """Heavy-tailed positive integer: ``floor(minimum * pareto)``."""
        draw = self._random.paretovariate(alpha)
        return max(minimum, int(minimum * draw))

    def poisson(self, lam: float) -> int:
        """Poisson draw (Knuth for small lambda, normal approx for large)."""
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if lam == 0:
            return 0
        if lam > 50:
            return max(0, int(round(self._random.gauss(lam, math.sqrt(lam)))))
        threshold = math.exp(-lam)
        k, product = 0, 1.0
        while True:
            product *= self._random.random()
            if product <= threshold:
                return k
            k += 1

    def bernoulli(self, p: float) -> bool:
        """True with probability p."""
        return self._random.random() < p

    def __repr__(self) -> str:
        return f"<Rng {self.name!r} seed={self.seed}>"


def quantiles(values: Sequence[float], points: Sequence[float]) -> List[float]:
    """Linear-interpolation quantiles of ``values`` at each q in ``points``.

    A dependency-free helper used throughout the analysis and test code.
    """
    if not values:
        raise ValueError("cannot take quantiles of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    out: List[float] = []
    for q in points:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile point must be in [0, 1], got {q}")
        pos = q * (n - 1)
        low = int(math.floor(pos))
        high = min(low + 1, n - 1)
        frac = pos - low
        out.append(ordered[low] * (1 - frac) + ordered[high] * frac)
    return out
