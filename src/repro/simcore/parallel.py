"""Epoch-barriered parallel stepping for sharded simulations.

One global event heap serializes every shard of a
:class:`~repro.engine.sharding.ShardedEngine` through a single clock, so
fleet throughput is pinned to one core no matter how many shards exist.
:class:`ShardedSimulator` removes that bottleneck: every shard gets its
**own** :class:`~repro.simcore.simulator.Simulator` (own heap, own
clock), and shards advance together in bounded **time epochs** under the
classic conservative-synchronization contract:

* Within an epoch ``[t, t + lookahead)`` each shard runs independently —
  in one thread per shard when ``jobs > 1``, or round-robin in the
  calling thread when ``jobs == 1`` ("serial stepping").  The per-shard
  code path is *identical* in both modes.
* Cross-shard traffic (realtime hints, push notifications to a
  receiving shard, remote polls/actions, fleet-level fault-plan events)
  never touches another shard's heap directly: it is posted to a
  per-shard **mailbox** and drained at the next epoch boundary.  Senders
  must guarantee a delivery time at or beyond the barrier — the network
  router (:class:`~repro.net.network.CrossShardRouter`) enforces a
  latency floor of ``lookahead`` on every cross-shard hop, which is the
  lookahead that makes the epoch width safe.
* At each barrier the mailboxes are merged in a deterministic order —
  ``(deliver_at, source shard, per-source sequence)`` — before being
  scheduled into the destination heaps.  Thread scheduling can reorder
  *when* outbox entries are appended relative to each other across
  shards, but never the sorted drain order, so parallel and serial
  stepping execute byte-for-byte the same per-shard event sequences.

Determinism is therefore structural, not incidental: each shard's world
(engine, network, RNG forks, metrics registry) is touched by exactly one
thread inside an epoch, shard RNGs are independent forks
(``rng.fork("shard<i>")``), and fleet results merge through the
commutative snapshot algebra (`shard_snapshot` / `merged_fleet_snapshot`
— counters add, gauges max), so serial and parallel stepping produce
**byte-identical merged snapshots**.  ``make parallel-check`` gates
exactly that, and ``tests/test_parallel_equivalence.py`` pins it across
shard strategies and poll-dispatch modes.

Wall-clock scaling follows the hardware: with the CPython GIL, threaded
epochs overlap only the interpreter's release points, so single-process
speedups require multiple cores plus a free-threaded build (or the
fork-per-shard measurement mode in ``benchmarks/bench_fleet_scale.py``,
which sidesteps the GIL entirely).  The architecture — and the
determinism contract — is the same either way.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional

from repro.simcore.simulator import SimulationError, Simulator

#: Default epoch width / cross-shard latency floor, seconds.  Chosen at
#: cloud-internal scale (≈ the p95 of one engine↔service hop): wide
#: enough that chaos-length runs take only a few thousand barriers,
#: narrow enough that a floored cross-shard hint costs less than the
#: fastest poll turnaround it accelerates.
DEFAULT_LOOKAHEAD = 0.05


class MailboxEntry(tuple):
    """``(deliver_at, src, seq, dst, fn, args)`` — kept sortable by the
    deterministic ``(deliver_at, src, seq)`` drain key via plain tuple
    comparison (``fn``/``args`` are never reached because ``(src, seq)``
    is unique)."""

    __slots__ = ()


class ShardedSimulator:
    """N shard simulators stepped together under epoch barriers.

    Parameters
    ----------
    num_shards:
        Number of per-shard :class:`~repro.simcore.simulator.Simulator`
        instances to create (``sims[i]`` is shard *i*'s kernel).
    lookahead:
        Epoch width once the fleet is *coupled* (a cross-shard router
        attached).  Also the minimum latency any cross-shard message must
        carry; :meth:`post` enforces it.  Uncoupled fleets (no possible
        cross-shard traffic) run each shard straight to the target in
        one epoch.
    jobs:
        Worker threads for epoch stepping.  ``1`` = serial round-robin
        stepping in the calling thread; ``N > 1`` steps up to N shards
        concurrently.  Either way the per-shard execution is identical.
    """

    def __init__(
        self,
        num_shards: int,
        lookahead: float = DEFAULT_LOOKAHEAD,
        jobs: int = 1,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.num_shards = num_shards
        self.lookahead = float(lookahead)
        self.jobs = jobs
        self.sims: List[Simulator] = [Simulator() for _ in range(num_shards)]
        # One outbox per source shard plus one controller outbox (index
        # num_shards): during an epoch each shard thread appends only to
        # its own outbox, so no lock is needed anywhere on the hot path.
        self._outboxes: List[List[MailboxEntry]] = [
            [] for _ in range(num_shards + 1)
        ]
        self._seqs = [itertools.count() for _ in range(num_shards + 1)]
        self.epochs = 0
        self.mailbox_messages = 0
        self._coupled = False
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- coupling ------------------------------------------------------------

    def mark_coupled(self) -> None:
        """Declare that cross-shard traffic is possible.

        Called by the cross-shard router when it attaches.  From then on
        epochs are bounded by ``lookahead`` so no shard can run past a
        message another shard may still send it.
        """
        self._coupled = True

    @property
    def coupled(self) -> bool:
        """Whether epochs are bounded by the conservative lookahead."""
        return self._coupled

    # -- mailboxes -----------------------------------------------------------

    def post(
        self,
        dst: int,
        deliver_at: float,
        fn: Callable[..., Any],
        *args: Any,
        src: Optional[int] = None,
    ) -> None:
        """Enqueue ``fn(*args)`` for shard ``dst`` at ``deliver_at``.

        ``src`` is the sending shard (its outbox is appended without
        locking; each shard thread owns exactly one); ``None`` means the
        controller — code running *between* epochs, e.g. a testbed
        injecting fleet-level events before the run starts.
        """
        source = self.num_shards if src is None else src
        self._outboxes[source].append(MailboxEntry((
            deliver_at, source, next(self._seqs[source]), dst, fn, args,
        )))

    def broadcast(
        self, deliver_at: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Post the same callback to every shard (fleet-level events)."""
        for dst in range(self.num_shards):
            self.post(dst, deliver_at, fn, *args)

    def _drain_mailboxes(self) -> None:
        """Schedule every posted entry into its destination heap.

        Runs only at barriers (no shard thread is stepping).  Entries are
        sorted by ``(deliver_at, src, seq)`` — a total order independent
        of thread interleaving — so destination heaps receive identical
        event sequences under serial and parallel stepping.
        """
        pending: List[MailboxEntry] = []
        for outbox in self._outboxes:
            if outbox:
                pending.extend(outbox)
                outbox.clear()
        if not pending:
            return
        pending.sort()
        sims = self.sims
        for deliver_at, _src, _seq, dst, fn, args in pending:
            sim = sims[dst]
            if deliver_at < sim.now:
                raise SimulationError(
                    f"cross-shard message for shard {dst} at t={deliver_at} "
                    f"arrived after its clock ({sim.now}); the sender "
                    f"violated the {self.lookahead}s lookahead floor"
                )
            sim.schedule_at(deliver_at, fn, *args, label="mailbox")
        self.mailbox_messages += len(pending)

    # -- clocks --------------------------------------------------------------

    @property
    def now(self) -> float:
        """The fleet clock: the slowest shard's time (all equal at barriers)."""
        return min(sim.now for sim in self.sims)

    @property
    def fired_count(self) -> int:
        """Total events fired across all shards."""
        return sum(sim.fired_count for sim in self.sims)

    @property
    def pending(self) -> int:
        """Live scheduled events across all shards (O(num_shards))."""
        return sum(sim.pending for sim in self.sims)

    def sim(self, shard: int) -> Simulator:
        """Shard ``i``'s kernel (each shard's nodes schedule only here)."""
        return self.sims[shard]

    # -- epoch stepping ------------------------------------------------------

    def _step_epoch(self, horizon: float) -> int:
        """Advance every shard to ``horizon``; returns events fired."""
        sims = self.sims
        if self.jobs > 1 and len(sims) > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=min(self.jobs, len(sims)),
                    thread_name_prefix="shard-step",
                )
            futures = [self._pool.submit(sim.run_until, horizon) for sim in sims]
            return sum(future.result() for future in futures)
        return sum(sim.run_until(horizon) for sim in sims)

    def run_until(self, time: float) -> int:
        """Step every shard to ``time`` through epoch barriers.

        Returns the total number of events fired by this call.  On
        return all shard clocks equal ``time`` and every cross-shard
        message produced on the way has been delivered or scheduled.
        """
        fired = 0
        lookahead = self.lookahead
        while True:
            self._drain_mailboxes()
            now = self.now
            if now >= time:
                break
            horizon = time if not self._coupled else min(time, now + lookahead)
            fired += self._step_epoch(horizon)
            self.epochs += 1
        return fired

    def run(self, max_epochs: int = 1_000_000) -> int:
        """Step until every heap and mailbox drains (bounded by epochs)."""
        fired = 0
        for _ in range(max_epochs):
            self._drain_mailboxes()
            bounds = [sim.peek_time() for sim in self.sims]
            live = [t for t in bounds if t is not None]
            if not live and not any(self._outboxes):
                break
            horizon = max(live) if not self._coupled else min(live) + self.lookahead
            fired += self._step_epoch(max(horizon, self.now))
            self.epochs += 1
        return fired

    def shutdown(self) -> None:
        """Tear down the worker pool (idempotent; ``with``-free worlds
        call it from their own close paths or rely on interpreter exit)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return (
            f"<ShardedSimulator shards={self.num_shards} now={self.now:.6g} "
            f"epochs={self.epochs} jobs={self.jobs} "
            f"coupled={self._coupled}>"
        )
