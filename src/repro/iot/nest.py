"""Nest thermostat.

Nest devices report directly to their own cloud (no local hub API), which
is why Table 3 lists Nest Thermostat both as a top trigger service
(temperature/away events) and a top action service (set temperature).  The
device keeps a WAN session to its cloud address and accepts set-points
pushed back down.
"""

from __future__ import annotations

from typing import Optional

from repro.iot.device import Device, DeviceError
from repro.net.address import Address
from repro.net.message import Message
from repro.simcore.trace import Trace

NEST_PROTOCOL = "nest-transport"


class NestThermostat(Device):
    """A learning thermostat with ambient and target temperature state."""

    KIND = "nest_thermostat"
    EVENT_PROTOCOL = NEST_PROTOCOL

    MIN_TARGET_C = 9.0
    MAX_TARGET_C = 32.0

    def __init__(
        self,
        address: Address,
        device_id: str,
        cloud: Optional[Address] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(
            address,
            device_id,
            trace=trace,
            initial_state={"ambient_c": 21.0, "target_c": 21.0, "mode": "heat", "home": True},
        )
        if cloud is not None:
            self.subscribe(cloud)

    def set_target(self, target_c: float, cause: str = "remote") -> None:
        """Set the target temperature (clamped to the hardware range)."""
        if not self.MIN_TARGET_C <= target_c <= self.MAX_TARGET_C:
            raise DeviceError(
                f"target {target_c} outside [{self.MIN_TARGET_C}, {self.MAX_TARGET_C}]"
            )
        self.actuations += 1
        self.set_state("target_c", float(target_c), cause=cause)

    def sense_ambient(self, ambient_c: float) -> None:
        """The on-board sensor observes a new ambient temperature."""
        self.set_state("ambient_c", float(ambient_c), cause="sensor")

    def set_away(self, away: bool) -> None:
        """Home/away detection flips (a popular Nest trigger)."""
        self.set_state("home", not away, cause="sensor")

    def on_message(self, message: Message) -> None:
        if message.protocol != NEST_PROTOCOL:
            return
        payload = message.payload
        if payload.get("type") == "set_target":
            self.set_target(float(payload["target_c"]), cause="cloud")
