"""Amazon Echo Dot + the Alexa cloud.

The Echo is a thin microphone: it streams each utterance to the Alexa
cloud over the WAN, where intents are parsed (say-a-phrase, to-do list,
shopping list, music playback — the top Alexa triggers in Table 3).  The
Alexa cloud pushes parsed intent events to registered consumers, which is
how the official Alexa partner service receives trigger events promptly —
the basis for the realtime behaviour of applets A5-A7 (§4).

The paper's test controller activated Alexa by playing pre-recorded voice
commands; :meth:`EchoDevice.hear` models exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.iot.device import Device
from repro.net.address import Address
from repro.net.http import HttpNode, HttpRequest
from repro.simcore.trace import Trace


class EchoDevice(Device):
    """An Echo Dot smart speaker on the home LAN."""

    KIND = "amazon_echo"

    def __init__(
        self,
        address: Address,
        device_id: str,
        cloud: Address,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(address, device_id, trace=trace, initial_state={"listening": True})
        self.cloud = cloud
        self.utterances: List[Tuple[float, str]] = []

    def hear(self, utterance: str) -> None:
        """A voice command reaches the microphone; stream it to the cloud."""
        self.utterances.append((self.now, utterance))
        if self.trace is not None:
            self.trace.record(self.now, self.device_id, "voice_command", utterance=utterance)
        self.send(
            self.cloud,
            "http",
            {
                "type": "request",
                "request": HttpRequest(
                    method="POST",
                    path="/v1/voice",
                    body={"device_id": self.device_id, "utterance": utterance},
                    src=self.address,
                ),
            },
            size_bytes=4096,  # voice audio is much larger than control traffic
        )


class AlexaCloud(HttpNode):
    """Amazon's voice service: parses utterances into intent events.

    Consumers (e.g. the official Alexa IFTTT partner service) register a
    callback address via ``POST /v1/consumers`` and then receive each
    parsed intent as ``POST <callback>/events/alexa``.
    """

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.05) -> None:
        super().__init__(address, service_time=service_time)
        self.trace = trace
        self._consumers: List[Address] = []
        self.intent_log: List[Dict[str, Any]] = []
        self.todo_list: List[str] = []
        self.shopping_list: List[str] = []
        self.add_route("POST", "/v1/voice", self._handle_voice)
        self.add_route("POST", "/v1/consumers", self._handle_register)

    def _handle_register(self, request: HttpRequest):
        callback = Address(request.body["callback"])
        if callback not in self._consumers:
            self._consumers.append(callback)
        return {"registered": callback.host}

    def _handle_voice(self, request: HttpRequest):
        utterance = request.body["utterance"]
        intent = self.parse_utterance(utterance)
        intent["device_id"] = request.body.get("device_id")
        intent["time"] = self.now
        self.intent_log.append(intent)
        if self.trace is not None:
            detail = {k: v for k, v in intent.items() if k != "time"}
            self.trace.record(self.now, "alexa_cloud", "intent", **detail)
        self._apply_intent(intent)
        for consumer in self._consumers:
            self.post(consumer, "/events/alexa", body=dict(intent), size_bytes=256)
        return {"intent": intent["intent"]}

    def parse_utterance(self, utterance: str) -> Dict[str, Any]:
        """A small grammar covering the paper's Alexa trigger vocabulary."""
        text = utterance.strip().lower().rstrip(".")
        if text.startswith("alexa, "):
            text = text[len("alexa, "):]
        if text.startswith("trigger "):
            return {"intent": "say_phrase", "phrase": text[len("trigger "):]}
        if text.startswith("add ") and text.endswith(" to my to-do list"):
            item = text[len("add "):-len(" to my to-do list")]
            return {"intent": "todo_item_added", "item": item}
        if text.startswith("add ") and text.endswith(" to my shopping list"):
            item = text[len("add "):-len(" to my shopping list")]
            return {"intent": "shopping_item_added", "item": item}
        if text in ("what's on my shopping list", "whats on my shopping list"):
            return {"intent": "shopping_list_asked"}
        if text.startswith("play "):
            return {"intent": "song_played", "song": text[len("play "):]}
        return {"intent": "unrecognized", "utterance": utterance}

    def _apply_intent(self, intent: Dict[str, Any]) -> None:
        if intent["intent"] == "todo_item_added":
            self.todo_list.append(intent["item"])
        elif intent["intent"] == "shopping_item_added":
            self.shopping_list.append(intent["item"])
