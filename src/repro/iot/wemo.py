"""Belkin WeMo light switch.

The WeMo has no hub: it sits on the LAN itself and speaks a UPnP-style
protocol — a SOAP-ish control endpoint plus GENA-style event subscription
(subscribe once, get NOTIFY callbacks on each state change).  The paper's
local proxy talks to it exactly this way (§2.1).
"""

from __future__ import annotations

from typing import Optional

from repro.iot.device import Device, DeviceError
from repro.net.address import Address
from repro.net.message import Message
from repro.simcore.trace import Trace

UPNP = "upnp"


class WemoSwitch(Device):
    """A smart wall switch with a single binary state.

    Besides remote control, the physical toggle (:meth:`press`) models a
    person flipping the switch — that is the trigger event in applets A1,
    A2, and A6.
    """

    KIND = "wemo_switch"
    EVENT_PROTOCOL = UPNP

    def __init__(self, address: Address, device_id: str, trace: Optional[Trace] = None) -> None:
        super().__init__(address, device_id, trace=trace, initial_state={"on": False})

    def press(self) -> bool:
        """Physically toggle the switch; returns the new state."""
        self.actuations += 1
        new_state = not self.get_state("on", False)
        self.set_state("on", new_state, cause="physical")
        return new_state

    def set_binary_state(self, on: bool, cause: str = "remote") -> None:
        """Remote UPnP SetBinaryState command."""
        if not isinstance(on, bool):
            raise DeviceError(f"binary state must be a bool, got {on!r}")
        self.actuations += 1
        self.set_state("on", on, cause=cause)

    def on_message(self, message: Message) -> None:
        if message.protocol != UPNP:
            return
        payload = message.payload
        msg_type = payload.get("type")
        if msg_type == "subscribe":
            self.subscribe(Address(payload["callback"]))
            self.send(message.src, UPNP, {"type": "subscribed", "device_id": self.device_id}, size_bytes=64)
        elif msg_type == "set_binary_state":
            self.set_binary_state(bool(payload["on"]), cause="upnp")
        elif msg_type == "get_binary_state":
            self.send(
                message.src,
                UPNP,
                {"type": "binary_state", "device_id": self.device_id, "on": self.get_state("on", False)},
                size_bytes=64,
            )
