"""The local proxy (Figure 1, ❸).

Most home devices only accept control from hosts on the same LAN, so the
paper deployed a proxy inside the home that (a) subscribes to device
events and pushes them out to the authors' partner-service server over a
custom protocol, and (b) accepts action commands from that server and
translates them to each device's native API (Hue REST, UPnP, ...).

The proxy is a primary measurement vantage point: Table 5's rows
"Proxy ❸ observes the trigger event" (t=0.04) and "❸ receives the
confirmation from trigger service ❺" (t=0.16) are trace records written
here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.address import Address
from repro.net.http import HttpNode, HttpRequest, HttpResponse
from repro.net.message import Message
from repro.simcore.trace import Trace

from repro.iot.wemo import UPNP


class LocalProxy(HttpNode):
    """Bridges LAN-only devices to a WAN partner-service server.

    Upstream: every device event the proxy observes is forwarded as
    ``POST <service>/proxy/event`` and the service's confirmation is
    traced (Table 5).

    Downstream: the service sends ``POST /proxy/command`` with a
    ``target`` naming a bridged device; the proxy translates to the
    device's native protocol.
    """

    def __init__(
        self,
        address: Address,
        service_server: Address,
        trace: Optional[Trace] = None,
        service_time: float = 0.002,
    ) -> None:
        super().__init__(address, service_time=service_time)
        self.service_server = service_server
        self.trace = trace
        self._hue_hub: Optional[Address] = None
        self._smartthings_hub: Optional[Address] = None
        self._wemo_switches: Dict[str, Address] = {}
        self.events_forwarded = 0
        self.commands_executed = 0
        self.add_route("POST", "/events/hue", self._handle_hub_event)
        self.add_route("POST", "/events/smartthings", self._handle_hub_event)
        self.add_route("POST", "/proxy/command", self._handle_command)

    # -- bridging setup --------------------------------------------------------

    def bridge_hue_hub(self, hub: Address) -> None:
        """Subscribe to a Hue hub's event push."""
        self._hue_hub = hub
        self.post(hub, "/api/subscribe", body={"callback": self.address.host})

    def bridge_smartthings_hub(self, hub: Address) -> None:
        """Subscribe to a SmartThings hub's event push."""
        self._smartthings_hub = hub
        self.post(hub, "/api/subscribe", body={"callback": self.address.host})

    def bridge_wemo(self, device_id: str, switch: Address) -> None:
        """UPnP-subscribe to a WeMo switch."""
        self._wemo_switches[device_id] = switch
        self.send(switch, UPNP, {"type": "subscribe", "callback": self.address.host}, size_bytes=64)

    # -- upstream: device events -> service server ----------------------------

    def _handle_hub_event(self, request: HttpRequest):
        self._forward_event(dict(request.body or {}))
        return {"ok": True}

    def on_non_http_message(self, message: Message) -> None:
        if message.protocol != UPNP:
            return
        payload = message.payload
        if payload.get("event"):  # a device event push (UPnP NOTIFY)
            self._forward_event(dict(payload))

    def _forward_event(self, event: Dict[str, Any]) -> None:
        self.events_forwarded += 1
        if self.trace is not None:
            self.trace.record(
                self.now,
                "proxy",
                "proxy_observed_event",
                device_id=event.get("device_id"),
                event=event.get("event"),
            )
        self.post(
            self.service_server,
            "/proxy/event",
            body=event,
            on_response=self._on_service_confirmation,
            timeout=10.0,
        )

    def _on_service_confirmation(self, response: HttpResponse) -> None:
        if self.trace is not None:
            self.trace.record(
                self.now,
                "proxy",
                "proxy_confirmed" if response.ok else "proxy_confirm_failed",
                status=response.status,
            )

    # -- downstream: service commands -> devices --------------------------------

    def _handle_command(self, request: HttpRequest):
        body = request.body or {}
        target = body.get("target")
        self.commands_executed += 1
        if self.trace is not None:
            self.trace.record(self.now, "proxy", "proxy_command", target=target)
        if target == "hue":
            if self._hue_hub is None:
                return 503, {"error": "no hue hub bridged"}
            self.put_lamp_state(body["lamp_id"], body["command"])
        elif target == "wemo":
            switch = self._wemo_switches.get(body["device_id"])
            if switch is None:
                return 503, {"error": f"wemo {body.get('device_id')!r} not bridged"}
            self.send(switch, UPNP, {"type": "set_binary_state", "on": bool(body["on"])}, size_bytes=64)
        elif target == "smartthings":
            if self._smartthings_hub is None:
                return 503, {"error": "no smartthings hub bridged"}
            self.post(
                self._smartthings_hub,
                f"/api/devices/{body['device_id']}/command",
                body={"value": body["value"]},
            )
        else:
            return 400, {"error": f"unknown target {target!r}"}
        return {"dispatched": target}

    def put_lamp_state(self, lamp_id: str, command: Dict[str, Any]) -> None:
        """Issue a Hue REST state change to the bridged hub."""
        self.request(self._hue_hub, "PUT", f"/api/lights/{lamp_id}/state", body=dict(command))
