"""The home gateway router (Figure 1, ❹).

The gateway is a pure topology element: every path between the home LAN
and the internet crosses it, so LAN-only devices are unreachable from the
WAN except through nodes (like the local proxy) that initiate outbound
connections — mirroring the NAT-ish constraint that forced the paper's
authors to deploy a proxy inside the home LAN (§2.1).
"""

from __future__ import annotations

from repro.net.address import Address
from repro.net.node import Node


class GatewayRouter(Node):
    """A forwarding-only node joining the LAN and WAN sides.

    Routing is handled by the network layer; the gateway exists so that
    topologies place a distinct hop (with WAN latency on its uplink)
    between home devices and cloud entities, and so per-home traffic can
    be accounted at a single point.
    """

    def __init__(self, address: Address) -> None:
        super().__init__(address)

    def on_message(self, message) -> None:
        # End-system traffic addressed *to* the gateway itself is
        # management noise in this model; count and drop it.
        pass
