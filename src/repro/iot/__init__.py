"""Smart-home device models (Figure 1 of the paper, items ❶-❹).

The paper's testbed used four off-the-shelf devices — Philips Hue lights,
a WeMo light switch, an Amazon Echo Dot, and a Samsung SmartThings hub —
plus a home gateway router and a custom local proxy bridging LAN-only
devices to the authors' partner-service server.  This package models each
of them as network nodes speaking the corresponding protocol shape:

* Hue lamp ↔ Hue hub over a Zigbee-like link; the hub exposes the Hue
  RESTful Web API on the LAN (:mod:`repro.iot.hue`).
* WeMo switch controlled over UPnP-style subscribe/notify
  (:mod:`repro.iot.wemo`).
* Echo Dot streaming voice to the Alexa cloud (:mod:`repro.iot.alexa`).
* SmartThings hub multiplexing generic Z-Wave-ish devices
  (:mod:`repro.iot.smartthings`).
* Nest thermostat reporting directly to its cloud (:mod:`repro.iot.nest`).
* The local proxy (❸) and gateway router (❹) of the testbed
  (:mod:`repro.iot.proxy`, :mod:`repro.iot.gateway`).
"""

from repro.iot.device import Device, DeviceError
from repro.iot.hue import HueLamp, HueHub
from repro.iot.wemo import WemoSwitch
from repro.iot.alexa import EchoDevice, AlexaCloud
from repro.iot.smartthings import SmartThingsHub, GenericDevice
from repro.iot.nest import NestThermostat
from repro.iot.proxy import LocalProxy
from repro.iot.gateway import GatewayRouter
from repro.iot.registry import DeviceType, DEVICE_CATALOG, device_types_by_category

__all__ = [
    "Device",
    "DeviceError",
    "HueLamp",
    "HueHub",
    "WemoSwitch",
    "EchoDevice",
    "AlexaCloud",
    "SmartThingsHub",
    "GenericDevice",
    "NestThermostat",
    "LocalProxy",
    "GatewayRouter",
    "DeviceType",
    "DEVICE_CATALOG",
    "device_types_by_category",
]
