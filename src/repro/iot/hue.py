"""Philips Hue: lamp + hub.

The lamp speaks a Zigbee-like link protocol to its hub; the hub exposes
the Hue RESTful Web API on the home LAN (``PUT /api/<user>/lights/<id>/state``)
and pushes state-change events to registered subscribers (the local proxy,
or the official Hue cloud service over the WAN), matching the two
communication paths described in §2.1.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.iot.device import Device, DeviceError
from repro.net.address import Address
from repro.net.http import HttpNode, HttpRequest
from repro.net.message import Message
from repro.simcore.trace import Trace

ZIGBEE = "zigbee"

VALID_COLORS = (
    "white", "red", "green", "blue", "yellow", "purple", "orange", "pink",
)


class HueLamp(Device):
    """A color-capable smart bulb.

    State keys: ``on`` (bool), ``color`` (str), ``brightness`` (0-254),
    ``effect`` (``"none"``/``"blink"``/``"colorloop"``).
    """

    KIND = "hue_lamp"
    EVENT_PROTOCOL = ZIGBEE

    def __init__(self, address: Address, device_id: str, trace: Optional[Trace] = None) -> None:
        super().__init__(
            address,
            device_id,
            trace=trace,
            initial_state={"on": False, "color": "white", "brightness": 254, "effect": "none"},
        )

    def apply_command(self, command: Dict[str, Any], cause: str = "remote") -> Dict[str, Any]:
        """Apply a Hue state command; returns the changed keys."""
        changed: Dict[str, Any] = {}
        self.actuations += 1
        for key, value in command.items():
            if key == "on":
                if not isinstance(value, bool):
                    raise DeviceError(f"'on' must be a bool, got {value!r}")
            elif key == "color":
                if value not in VALID_COLORS:
                    raise DeviceError(f"unsupported color {value!r}")
            elif key == "brightness":
                if not isinstance(value, int) or not 0 <= value <= 254:
                    raise DeviceError(f"brightness must be an int in [0, 254], got {value!r}")
            elif key == "effect":
                if value not in ("none", "blink", "colorloop"):
                    raise DeviceError(f"unsupported effect {value!r}")
            else:
                raise DeviceError(f"unknown hue state key {key!r}")
            if self.set_state(key, value, cause=cause):
                changed[key] = value
        return changed

    def on_message(self, message: Message) -> None:
        if message.protocol == ZIGBEE and message.payload.get("type") == "command":
            self.apply_command(message.payload["command"], cause="hub")


class HueHub(HttpNode):
    """The Hue bridge: LAN REST API in front of Zigbee lamps.

    Routes
    ------
    ``PUT /api/lights/<lamp_id>/state``
        Apply a state command to one lamp.
    ``GET /api/lights``
        Mirror of all known lamp states.
    ``POST /api/subscribe``
        Register a callback address for push notifications; the hub POSTs
        each lamp event to ``<callback>/events/hue``.
    """

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.003) -> None:
        super().__init__(address, service_time=service_time)
        self.trace = trace
        self._lamps: Dict[str, Address] = {}
        self._state_mirror: Dict[str, Dict[str, Any]] = {}
        self._subscribers: Dict[str, Address] = {}
        self.add_route("PUT", "/api/lights/", self._handle_light_command)
        self.add_route("GET", "/api/lights", self._handle_list_lights)
        self.add_route("POST", "/api/subscribe", self._handle_subscribe)

    def pair_lamp(self, lamp: HueLamp) -> None:
        """Associate a lamp with this hub (the Hue pairing step)."""
        self._lamps[lamp.device_id] = lamp.address
        self._state_mirror[lamp.device_id] = dict(lamp.state)
        lamp.subscribe(self.address)

    @property
    def lamp_ids(self):
        """IDs of all paired lamps."""
        return sorted(self._lamps)

    def command_lamp(self, lamp_id: str, command: Dict[str, Any]) -> None:
        """Send a Zigbee command to a paired lamp."""
        if lamp_id not in self._lamps:
            raise DeviceError(f"unknown lamp {lamp_id!r}")
        self.send(self._lamps[lamp_id], ZIGBEE, {"type": "command", "command": dict(command)}, size_bytes=64)

    # -- REST handlers -------------------------------------------------------

    def _handle_light_command(self, request: HttpRequest):
        parts = request.path.strip("/").split("/")
        # /api/lights/<lamp_id>/state
        if len(parts) != 4 or parts[3] != "state":
            return 400, {"error": "expected /api/lights/<id>/state"}
        lamp_id = parts[2]
        if lamp_id not in self._lamps:
            return 404, {"error": f"unknown lamp {lamp_id}"}
        self.command_lamp(lamp_id, request.body or {})
        return {"success": dict(request.body or {})}

    def _handle_list_lights(self, request: HttpRequest):
        return {"lights": {lid: dict(state) for lid, state in self._state_mirror.items()}}

    def _handle_subscribe(self, request: HttpRequest):
        callback = request.body["callback"]
        self._subscribers[callback] = Address(callback)
        return {"subscribed": callback}

    # -- event fan-out --------------------------------------------------------

    def on_non_http_message(self, message: Message) -> None:
        if message.protocol != ZIGBEE:
            return
        payload = message.payload
        lamp_id = payload.get("device_id")
        if lamp_id not in self._lamps:
            return
        self._state_mirror[lamp_id] = dict(payload.get("state", {}))
        if self.trace is not None:
            self.trace.record(self.now, "hue_hub", "hub_event", lamp_id=lamp_id, event=payload.get("event"))
        for callback in self._subscribers.values():
            self.post(callback, "/events/hue", body=dict(payload), size_bytes=256)
