"""Catalog of consumer-IoT device types.

§1 of the paper observes "more than 20 types of smart home devices such as
light, security camera, thermostat, A/C, washing machine, sprinkler,
doorbell, garage door, lock, refrigerator, and even smart egg tray".  This
catalog enumerates those types with their ecosystem category, so that both
the SmartThings generic-device layer and the ecosystem generator draw from
one authoritative list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class DeviceType:
    """One consumer-IoT device type.

    Attributes
    ----------
    slug:
        Stable identifier, e.g. ``"light"``.
    label:
        Human-readable name.
    category:
        Ecosystem service category index (Table 1 numbering): 1 for
        specific smart-home devices, 2 for hubs, 3 for wearables, 4 for
        connected cars.
    typical_triggers, typical_actions:
        Representative trigger/action verbs the type exposes — §3.2 notes
        most IoT interfaces are simple, so these lists are short.
    """

    slug: str
    label: str
    category: int
    typical_triggers: Tuple[str, ...]
    typical_actions: Tuple[str, ...]


DEVICE_CATALOG: List[DeviceType] = [
    DeviceType("light", "Smart light", 1, ("turned_on", "turned_off"), ("turn_on", "turn_off", "change_color", "blink")),
    DeviceType("camera", "Security camera", 1, ("motion_detected", "person_detected"), ("start_recording", "stop_recording")),
    DeviceType("thermostat", "Thermostat", 1, ("temperature_rises", "temperature_drops", "set_to_away"), ("set_temperature",)),
    DeviceType("ac", "Air conditioner", 1, ("turned_on",), ("turn_on", "turn_off", "set_mode")),
    DeviceType("washer", "Washing machine", 1, ("cycle_finished",), ("start_cycle",)),
    DeviceType("sprinkler", "Sprinkler", 1, ("watering_started",), ("start_watering", "stop_watering")),
    DeviceType("doorbell", "Smart doorbell", 1, ("rang", "motion_detected"), ()),
    DeviceType("garage_door", "Garage door", 1, ("opened", "closed"), ("open", "close")),
    DeviceType("lock", "Smart lock", 1, ("locked", "unlocked"), ("lock", "unlock")),
    DeviceType("fridge", "Refrigerator", 1, ("door_left_open",), ("set_temperature",)),
    DeviceType("egg_tray", "Smart egg tray", 1, ("eggs_running_low",), ()),
    DeviceType("smart_plug", "Smart plug", 1, ("turned_on", "turned_off"), ("turn_on", "turn_off")),
    DeviceType("switch", "Smart switch", 1, ("activated", "deactivated"), ("activate", "deactivate")),
    DeviceType("speaker", "Smart speaker", 1, ("phrase_said", "item_added_to_list", "song_played"), ()),
    DeviceType("smoke_alarm", "Smoke/CO alarm", 1, ("smoke_detected", "co_detected", "battery_low"), ()),
    DeviceType("vacuum", "Robot vacuum", 1, ("cleaning_finished",), ("start_cleaning", "dock")),
    DeviceType("blinds", "Smart blinds", 1, ("opened", "closed"), ("open", "close", "set_position")),
    DeviceType("air_purifier", "Air purifier", 1, ("air_quality_poor",), ("turn_on", "set_speed")),
    DeviceType("scale", "Smart scale", 1, ("new_measurement",), ()),
    DeviceType("pet_feeder", "Pet feeder", 1, ("feeding_done", "hopper_low"), ("dispense",)),
    DeviceType("weather_station", "Home weather station", 1, ("rain_started", "wind_high"), ()),
    DeviceType("hub", "Smart home hub", 2, ("any_device_event",), ("run_scene", "control_device")),
    DeviceType("remote_hub", "Universal remote hub", 2, ("activity_started",), ("start_activity", "stop_activity")),
    DeviceType("smartwatch", "Smartwatch", 3, ("goal_reached", "workout_logged"), ("send_notification",)),
    DeviceType("fitness_band", "Fitness band", 3, ("daily_summary", "sleep_logged", "goal_reached"), ()),
    DeviceType("car", "Connected car", 4, ("ignition_on", "low_fuel", "arrived_home"), ("precondition_cabin",)),
]


def device_types_by_category() -> Dict[int, List[DeviceType]]:
    """Group the catalog by Table 1 category index."""
    grouped: Dict[int, List[DeviceType]] = {}
    for dtype in DEVICE_CATALOG:
        grouped.setdefault(dtype.category, []).append(dtype)
    return grouped
