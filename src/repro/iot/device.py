"""Base class for physical devices."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.address import Address
from repro.net.node import Node
from repro.simcore.trace import Trace


class DeviceError(RuntimeError):
    """Invalid device operation (unknown command, bad state value, ...)."""


class Device(Node):
    """A stateful physical device attached to the home network.

    Devices hold a key/value ``state`` dict.  Every state change appends to
    the device's local event log, is stamped into the shared trace (when
    one is wired), and is pushed to registered subscribers — the device's
    hub, the local proxy, or a cloud service, depending on the device.

    Subclasses define ``KIND`` and the state keys they support, and expose
    verb-shaped helpers (``turn_on()``, ``set_color()``, ...) so examples
    and the test controller read naturally.
    """

    KIND = "device"
    EVENT_PROTOCOL = "device-event"

    def __init__(
        self,
        address: Address,
        device_id: str,
        trace: Optional[Trace] = None,
        initial_state: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(address)
        self.device_id = device_id
        self.trace = trace
        self.state: Dict[str, Any] = dict(initial_state or {})
        self.subscribers: List[Address] = []
        self.event_log: List[Tuple[float, str, Dict[str, Any]]] = []
        self.actuations = 0

    def subscribe(self, subscriber: Address) -> None:
        """Register an address to receive this device's event pushes."""
        if subscriber not in self.subscribers:
            self.subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Address) -> None:
        """Stop pushing events to ``subscriber``."""
        if subscriber in self.subscribers:
            self.subscribers.remove(subscriber)

    def set_state(self, key: str, value: Any, cause: str = "local") -> bool:
        """Set one state key; returns True if the value actually changed.

        Unchanged writes are suppressed (no event) — real devices debounce
        idempotent commands, and the infinite-loop experiments depend on
        distinguishing actuations from state changes, so actuations are
        counted separately by the command paths.
        """
        old = self.state.get(key)
        if old == value:
            return False
        self.state[key] = value
        self.emit_event("state_changed", key=key, value=value, previous=old, cause=cause)
        return True

    def get_state(self, key: str, default: Any = None) -> Any:
        """Read one state key."""
        return self.state.get(key, default)

    def emit_event(self, event: str, **data: Any) -> None:
        """Log an event and push it to all subscribers."""
        now = self.now if self.network is not None else 0.0
        self.event_log.append((now, event, data))
        if self.trace is not None:
            self.trace.record(now, self.device_id, f"device_{event}", **data)
        if self.network is None:
            return
        payload = {
            "device_id": self.device_id,
            "kind": self.KIND,
            "event": event,
            "data": dict(data),
            "state": dict(self.state),
            "time": now,
        }
        for subscriber in self.subscribers:
            self.send(subscriber, self.EVENT_PROTOCOL, payload, size_bytes=256)

    def events(self, event: Optional[str] = None) -> List[Tuple[float, str, Dict[str, Any]]]:
        """The device's event log, optionally filtered by event name."""
        if event is None:
            return list(self.event_log)
        return [entry for entry in self.event_log if entry[1] == event]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.device_id!r} state={self.state}>"
