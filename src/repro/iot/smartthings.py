"""Samsung SmartThings hub + generic attached devices.

SmartThings is the paper's example of a *smart-home hub / integration
solution* (Table 1, category 2): one hub multiplexing many heterogeneous
devices (locks, motion sensors, outlets, ...).  We model the attached
devices generically — a :class:`GenericDevice` with a declared kind and a
small capability set — because the measurement only needs their
trigger/action surface, not per-vendor behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.iot.device import Device, DeviceError
from repro.net.address import Address
from repro.net.http import HttpNode, HttpRequest
from repro.net.message import Message
from repro.simcore.trace import Trace

ZWAVE = "zwave"

#: Capability name -> (state key, allowed values or type)
CAPABILITIES: Dict[str, Any] = {
    "switch": ("on", bool),
    "lock": ("locked", bool),
    "motion": ("motion", bool),
    "contact": ("open", bool),
    "presence": ("present", bool),
    "temperature": ("temperature", float),
}


class GenericDevice(Device):
    """A SmartThings-attached device with one declared capability."""

    EVENT_PROTOCOL = ZWAVE

    def __init__(
        self,
        address: Address,
        device_id: str,
        capability: str,
        trace: Optional[Trace] = None,
    ) -> None:
        if capability not in CAPABILITIES:
            raise DeviceError(f"unknown capability {capability!r}")
        self.capability = capability
        state_key, _ = CAPABILITIES[capability]
        initial: Dict[str, Any] = {state_key: 0.0 if capability == "temperature" else False}
        super().__init__(address, device_id, trace=trace, initial_state=initial)
        self.KIND = f"st_{capability}"

    @property
    def state_key(self) -> str:
        """The single state key this capability controls."""
        return CAPABILITIES[self.capability][0]

    def actuate(self, value: Any, cause: str = "remote") -> None:
        """Set the capability's state (e.g. lock/unlock, on/off)."""
        _, expected = CAPABILITIES[self.capability]
        if expected is bool and not isinstance(value, bool):
            raise DeviceError(f"{self.capability} expects a bool, got {value!r}")
        if expected is float:
            value = float(value)
        self.actuations += 1
        self.set_state(self.state_key, value, cause=cause)

    def on_message(self, message: Message) -> None:
        if message.protocol == ZWAVE and message.payload.get("type") == "command":
            self.actuate(message.payload["value"], cause="hub")


class SmartThingsHub(HttpNode):
    """The SmartThings hub: LAN REST API over Z-Wave-ish device links.

    Routes
    ------
    ``POST /api/devices/<id>/command`` — actuate a device.
    ``GET /api/devices`` — state mirror of every paired device.
    ``POST /api/subscribe`` — register an event-push callback; events are
    delivered as ``POST <callback>/events/smartthings``.
    """

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.004) -> None:
        super().__init__(address, service_time=service_time)
        self.trace = trace
        self._devices: Dict[str, Address] = {}
        self._state_mirror: Dict[str, Dict[str, Any]] = {}
        self._subscribers: Dict[str, Address] = {}
        self.add_route("POST", "/api/devices/", self._handle_command)
        self.add_route("GET", "/api/devices", self._handle_list)
        self.add_route("POST", "/api/subscribe", self._handle_subscribe)

    def pair_device(self, device: GenericDevice) -> None:
        """Pair a device with the hub."""
        self._devices[device.device_id] = device.address
        self._state_mirror[device.device_id] = dict(device.state)
        device.subscribe(self.address)

    @property
    def device_ids(self):
        """IDs of all paired devices."""
        return sorted(self._devices)

    def command_device(self, device_id: str, value: Any) -> None:
        """Send an actuation command over the device link."""
        if device_id not in self._devices:
            raise DeviceError(f"unknown device {device_id!r}")
        self.send(self._devices[device_id], ZWAVE, {"type": "command", "value": value}, size_bytes=48)

    def _handle_command(self, request: HttpRequest):
        parts = request.path.strip("/").split("/")
        if len(parts) != 4 or parts[3] != "command":
            return 400, {"error": "expected /api/devices/<id>/command"}
        device_id = parts[2]
        if device_id not in self._devices:
            return 404, {"error": f"unknown device {device_id}"}
        self.command_device(device_id, request.body["value"])
        return {"accepted": device_id}

    def _handle_list(self, request: HttpRequest):
        return {"devices": {did: dict(state) for did, state in self._state_mirror.items()}}

    def _handle_subscribe(self, request: HttpRequest):
        callback = request.body["callback"]
        self._subscribers[callback] = Address(callback)
        return {"subscribed": callback}

    def on_non_http_message(self, message: Message) -> None:
        if message.protocol != ZWAVE:
            return
        payload = message.payload
        device_id = payload.get("device_id")
        if device_id not in self._devices:
            return
        self._state_mirror[device_id] = dict(payload.get("state", {}))
        if self.trace is not None:
            self.trace.record(self.now, "st_hub", "hub_event", device_id=device_id, event=payload.get("event"))
        for callback in self._subscribers.values():
            self.post(callback, "/events/smartthings", body=dict(payload), size_bytes=256)
