"""Messages carried by the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.net.address import Address

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A unit of data in flight between two nodes.

    Attributes
    ----------
    src, dst:
        Endpoint addresses.
    protocol:
        Wire protocol tag, e.g. ``"http"``, ``"upnp"``, ``"hue-rest"``,
        ``"proxy-custom"`` — the testbed distinguishes the protocols each
        hop speaks (§2.1).
    payload:
        Arbitrary structured body.
    size_bytes:
        Nominal size, used by links with serialization cost.
    msg_id:
        Unique id assigned at construction; ties request/response pairs
        and trace records together.
    """

    src: Address
    dst: Address
    protocol: str
    payload: Any
    size_bytes: int = 512
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    headers: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {self.size_bytes}")

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.protocol} "
            f"{self.src.host}->{self.dst.host}>"
        )
