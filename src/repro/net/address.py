"""Network addresses."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Address:
    """A hostname-like node identity, e.g. ``Address("hue-hub.home")``.

    Addresses are plain frozen strings with a ``zone`` convention: the part
    after the last dot names the network zone (``home`` for LAN devices,
    ``cloud`` for internet-hosted entities).  The zone is advisory — actual
    reachability is defined by the link topology.
    """

    host: str

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("address host must be non-empty")

    @property
    def zone(self) -> str:
        """Zone suffix of the host (text after the last dot), or ``""``."""
        _, dot, suffix = self.host.rpartition(".")
        return suffix if dot else ""

    def __str__(self) -> str:
        return self.host
