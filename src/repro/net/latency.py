"""Per-hop latency models.

The paper's Table 5 timeline implies sub-100 ms LAN hops (trigger observed
by the proxy at t=0.04 s) and WAN round trips of a few hundred ms.  These
models supply calibrated per-hop delays; the dominant §4 delays come from
the engine's polling schedule, not the network (the authors verified the
network was never the bottleneck).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.simcore.rng import Rng


class LatencyModel(ABC):
    """Produces a one-way delay (seconds) for each message on a link."""

    @abstractmethod
    def sample(self, rng: Rng, size_bytes: int = 0) -> float:
        """Draw a one-way delay for a message of the given size."""

    def mean_estimate(self) -> float:
        """Rough expected delay, used only for diagnostics/topology summaries."""
        return 0.0


class FixedLatency(LatencyModel):
    """Constant delay (useful for deterministic unit tests)."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = float(delay)

    def sample(self, rng: Rng, size_bytes: int = 0) -> float:
        return self.delay

    def mean_estimate(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay!r})"


class UniformLatency(LatencyModel):
    """Delay uniform in [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {low}, {high}")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: Rng, size_bytes: int = 0) -> float:
        return rng.uniform(self.low, self.high)

    def mean_estimate(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class LognormalLatency(LatencyModel):
    """Lognormal delay (median/sigma), optionally plus per-byte transfer cost.

    Lognormal is the standard shape for internet path RTT components: most
    samples near the median, occasional multi-x stragglers.
    """

    def __init__(
        self,
        median: float,
        sigma: float = 0.3,
        per_byte: float = 0.0,
        floor: float = 0.0,
    ) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)
        self.per_byte = float(per_byte)
        self.floor = float(floor)

    def sample(self, rng: Rng, size_bytes: int = 0) -> float:
        base = rng.lognormal_median(self.median, self.sigma) if self.sigma else self.median
        return max(self.floor, base) + self.per_byte * size_bytes

    def mean_estimate(self) -> float:
        return self.median

    def __repr__(self) -> str:
        return f"LognormalLatency(median={self.median!r}, sigma={self.sigma!r})"


def lan_latency() -> LatencyModel:
    """Home-LAN hop: ~5-30 ms one way (WiFi + hub processing)."""
    return LognormalLatency(median=0.012, sigma=0.5, floor=0.002)


def wan_latency() -> LatencyModel:
    """Residential-to-cloud WAN hop: ~40-150 ms one way."""
    return LognormalLatency(median=0.060, sigma=0.45, floor=0.015)


def cloud_internal_latency() -> LatencyModel:
    """Cloud-to-cloud hop (engine to partner service): ~15-60 ms one way."""
    return LognormalLatency(median=0.025, sigma=0.4, floor=0.005)
