"""The network: node registry, link topology, hop-by-hop routing."""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional

from repro.net.address import Address
from repro.net.link import Link
from repro.net.latency import LatencyModel
from repro.net.message import Message
from repro.net.node import Node
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator


class RoutingError(RuntimeError):
    """No usable path exists between two addresses."""


class Network:
    """A set of nodes joined by links, with shortest-hop routing.

    Each transmitted message is routed along the (cached) minimum-hop path
    between source and destination; every link on the path contributes an
    independently sampled delay, and delivery is scheduled at the sum.
    Links may be taken down (``link.up = False``) to model failures, which
    invalidates the route cache.
    """

    def __init__(
        self, sim: Simulator, rng: Optional[Rng] = None, metrics=None
    ) -> None:
        self.sim = sim
        self.rng = rng or Rng(seed=0, name="network")
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by
        #: the whole topology; attached nodes reach it via
        #: ``Node.metrics`` so one registry observes every vantage point.
        self.metrics = metrics
        #: Optional :class:`~repro.faults.injector.NetworkFaultState`
        #: installed by a :class:`~repro.faults.injector.FaultInjector`.
        #: ``None`` (the default) keeps transmission on the exact
        #: fault-free fast path.
        self.faults = None
        self._nodes: Dict[Address, Node] = {}
        self._links: Dict[FrozenSet[Address], Link] = {}
        self._adjacency: Dict[Address, List[Link]] = {}
        self._route_cache: Dict[tuple, List[Link]] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Cached per-message instrument handles (transmit runs once per
        # message; the registry's get-or-create path is too slow there).
        self._m_registry = None
        self._m_delivery = None
        self._m_delivered = None

    # -- topology ----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node; its address must be unique."""
        if node.address in self._nodes:
            raise ValueError(f"duplicate node address {node.address}")
        self._nodes[node.address] = node
        self._adjacency.setdefault(node.address, [])
        node.attach(self)
        return node

    def node(self, address: Address) -> Node:
        """Look up a node by address."""
        try:
            return self._nodes[address]
        except KeyError:
            raise KeyError(f"no node at address {address}") from None

    def has_node(self, address: Address) -> bool:
        """Whether an address is registered."""
        return address in self._nodes

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes."""
        return list(self._nodes.values())

    def connect(self, a: Address, b: Address, latency: LatencyModel) -> Link:
        """Create a bidirectional link between two registered nodes."""
        for end in (a, b):
            if end not in self._nodes:
                raise KeyError(f"cannot link unregistered address {end}")
        key = frozenset((a, b))
        if key in self._links:
            raise ValueError(f"link {a}<->{b} already exists")
        link = Link(a, b, latency)
        self._links[key] = link
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._route_cache.clear()
        return link

    def link_between(self, a: Address, b: Address) -> Optional[Link]:
        """The direct link between two addresses, if any."""
        return self._links.get(frozenset((a, b)))

    @property
    def links(self) -> List[Link]:
        """All links in the topology."""
        return list(self._links.values())

    def set_link_state(self, a: Address, b: Address, up: bool) -> None:
        """Bring a link up or down; routes are recomputed lazily."""
        link = self.link_between(a, b)
        if link is None:
            raise KeyError(f"no link between {a} and {b}")
        link.up = up
        self._route_cache.clear()

    # -- routing and transmission -------------------------------------------

    def route(self, src: Address, dst: Address) -> List[Link]:
        """Minimum-hop path from ``src`` to ``dst`` over up links (BFS)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            self._route_cache[key] = []
            return []
        parents: Dict[Address, tuple] = {src: (None, None)}
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            if here == dst:
                break
            for link in self._adjacency.get(here, ()):
                if not link.up:
                    continue
                neighbor = link.other(here)
                if neighbor not in parents:
                    parents[neighbor] = (here, link)
                    frontier.append(neighbor)
        if dst not in parents:
            raise RoutingError(f"no path from {src} to {dst}")
        path: List[Link] = []
        cursor = dst
        while cursor != src:
            parent, link = parents[cursor]
            path.append(link)
            cursor = parent
        path.reverse()
        self._route_cache[key] = path
        return path

    def path_delay(self, message: Message) -> float:
        """Sample the end-to-end delay for a message along its route."""
        path = self.route(message.src, message.dst)
        return sum(link.sample_delay(self.rng, message.size_bytes) for link in path)

    def transmit(self, message: Message) -> None:
        """Route and schedule delivery of a message.

        Messages to unreachable destinations are counted as dropped and
        the sender is told synchronously via
        :meth:`~repro.net.node.Node.on_transmit_failed` — the network
        *knows* there is no path, so callers get an immediate
        connection-refused instead of waiting out an HTTP timeout.
        In-flight loss injected by an active fault plan keeps classic
        timeout semantics: the message silently vanishes mid-path.
        """
        if message.dst not in self._nodes:
            raise KeyError(f"message to unregistered address {message.dst}")
        try:
            if self.faults is None:
                delay = self.path_delay(message)
            else:
                delay = self._faulted_path_delay(message)
        except RoutingError:
            self.messages_dropped += 1
            if self.metrics is not None:
                self.metrics.counter("net.messages_dropped").inc()
            sender = self._nodes.get(message.src)
            if sender is not None:
                sender.on_transmit_failed(message, "no route")
            return
        if delay is None:  # lost in flight by fault injection
            self.messages_dropped += 1
            if self.metrics is not None:
                self.metrics.counter("net.messages_dropped").inc()
                self.metrics.counter("net.messages_lost").inc()
            return
        metrics = self.metrics
        if metrics is not None:
            if metrics is not self._m_registry:
                self._m_registry = metrics
                self._m_delivery = metrics.histogram("net.delivery_seconds")
                self._m_delivered = metrics.counter("net.messages_delivered")
            self._m_delivery.observe(delay)
        self.sim.schedule(
            delay,
            self._deliver,
            message,
            label=f"deliver#{message.msg_id}",
        )

    def _faulted_path_delay(self, message: Message) -> Optional[float]:
        """Per-hop delay with active fault adjustments; ``None`` = lost."""
        path = self.route(message.src, message.dst)
        faults = self.faults
        total = 0.0
        for link in path:
            delay = link.sample_delay(self.rng, message.size_bytes)
            delay, dropped = faults.adjust(link, delay)
            if dropped:
                return None
            total += delay
        return total

    def _deliver(self, message: Message) -> None:
        self.messages_delivered += 1
        metrics = self.metrics
        if metrics is not None:
            if metrics is not self._m_registry:
                self._m_registry = metrics
                self._m_delivery = metrics.histogram("net.delivery_seconds")
                self._m_delivered = metrics.counter("net.messages_delivered")
            self._m_delivered.inc()
        self._nodes[message.dst].deliver(message)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self._nodes)} links={len(self._links)}>"
