"""The network: node registry, link topology, hop-by-hop routing."""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional

from repro.net.address import Address
from repro.net.link import Link
from repro.net.latency import LatencyModel, cloud_internal_latency
from repro.net.message import Message
from repro.net.node import Node
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator


class RoutingError(RuntimeError):
    """No usable path exists between two addresses."""


class Network:
    """A set of nodes joined by links, with shortest-hop routing.

    Each transmitted message is routed along the (cached) minimum-hop path
    between source and destination; every link on the path contributes an
    independently sampled delay, and delivery is scheduled at the sum.
    Links may be taken down (``link.up = False``) to model failures, which
    invalidates the route cache.
    """

    def __init__(
        self, sim: Simulator, rng: Optional[Rng] = None, metrics=None
    ) -> None:
        self.sim = sim
        self.rng = rng or Rng(seed=0, name="network")
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by
        #: the whole topology; attached nodes reach it via
        #: ``Node.metrics`` so one registry observes every vantage point.
        self.metrics = metrics
        #: Optional :class:`~repro.faults.injector.NetworkFaultState`
        #: installed by a :class:`~repro.faults.injector.FaultInjector`.
        #: ``None`` (the default) keeps transmission on the exact
        #: fault-free fast path.
        self.faults = None
        #: Optional :class:`CrossShardRouter` for sharded worlds whose
        #: shards run on separate simulators: messages addressed outside
        #: this network are handed to it instead of raising.  ``None``
        #: (the default) keeps single-world routing untouched.
        self.router = None
        #: The address cross-shard traffic exits through (the shard's
        #: core/uplink) when a router is attached.  Reachability to the
        #: gateway gates cross-shard sends, so an engine partitioned from
        #: its core cannot reach remote shards either.
        self.gateway: Optional[Address] = None
        self._nodes: Dict[Address, Node] = {}
        self._links: Dict[FrozenSet[Address], Link] = {}
        self._adjacency: Dict[Address, List[Link]] = {}
        self._route_cache: Dict[tuple, List[Link]] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Cached per-message instrument handles (transmit runs once per
        # message; the registry's get-or-create path is too slow there).
        self._m_registry = None
        self._m_delivery = None
        self._m_delivered = None

    # -- topology ----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node; its address must be unique."""
        if node.address in self._nodes:
            raise ValueError(f"duplicate node address {node.address}")
        self._nodes[node.address] = node
        self._adjacency.setdefault(node.address, [])
        node.attach(self)
        return node

    def node(self, address: Address) -> Node:
        """Look up a node by address."""
        try:
            return self._nodes[address]
        except KeyError:
            raise KeyError(f"no node at address {address}") from None

    def has_node(self, address: Address) -> bool:
        """Whether an address is registered."""
        return address in self._nodes

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes."""
        return list(self._nodes.values())

    def connect(self, a: Address, b: Address, latency: LatencyModel) -> Link:
        """Create a bidirectional link between two registered nodes."""
        for end in (a, b):
            if end not in self._nodes:
                raise KeyError(f"cannot link unregistered address {end}")
        key = frozenset((a, b))
        if key in self._links:
            raise ValueError(f"link {a}<->{b} already exists")
        link = Link(a, b, latency)
        self._links[key] = link
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._route_cache.clear()
        return link

    def link_between(self, a: Address, b: Address) -> Optional[Link]:
        """The direct link between two addresses, if any."""
        return self._links.get(frozenset((a, b)))

    @property
    def links(self) -> List[Link]:
        """All links in the topology."""
        return list(self._links.values())

    def set_link_state(self, a: Address, b: Address, up: bool) -> None:
        """Bring a link up or down; routes are recomputed lazily."""
        link = self.link_between(a, b)
        if link is None:
            raise KeyError(f"no link between {a} and {b}")
        link.up = up
        self._route_cache.clear()

    # -- routing and transmission -------------------------------------------

    def route(self, src: Address, dst: Address) -> List[Link]:
        """Minimum-hop path from ``src`` to ``dst`` over up links (BFS)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            self._route_cache[key] = []
            return []
        parents: Dict[Address, tuple] = {src: (None, None)}
        frontier = deque([src])
        while frontier:
            here = frontier.popleft()
            if here == dst:
                break
            for link in self._adjacency.get(here, ()):
                if not link.up:
                    continue
                neighbor = link.other(here)
                if neighbor not in parents:
                    parents[neighbor] = (here, link)
                    frontier.append(neighbor)
        if dst not in parents:
            raise RoutingError(f"no path from {src} to {dst}")
        path: List[Link] = []
        cursor = dst
        while cursor != src:
            parent, link = parents[cursor]
            path.append(link)
            cursor = parent
        path.reverse()
        self._route_cache[key] = path
        return path

    def path_delay(self, message: Message) -> float:
        """Sample the end-to-end delay for a message along its route."""
        path = self.route(message.src, message.dst)
        return sum(link.sample_delay(self.rng, message.size_bytes) for link in path)

    def transmit(self, message: Message) -> None:
        """Route and schedule delivery of a message.

        Messages to unreachable destinations are counted as dropped and
        the sender is told synchronously via
        :meth:`~repro.net.node.Node.on_transmit_failed` — the network
        *knows* there is no path, so callers get an immediate
        connection-refused instead of waiting out an HTTP timeout.
        In-flight loss injected by an active fault plan keeps classic
        timeout semantics: the message silently vanishes mid-path.
        """
        if message.dst not in self._nodes:
            if self.router is not None:
                self.router.transmit(self, message)
                return
            raise KeyError(f"message to unregistered address {message.dst}")
        try:
            if self.faults is None:
                delay = self.path_delay(message)
            else:
                delay = self._faulted_path_delay(message)
        except RoutingError:
            self.messages_dropped += 1
            if self.metrics is not None:
                self.metrics.counter("net.messages_dropped").inc()
            sender = self._nodes.get(message.src)
            if sender is not None:
                sender.on_transmit_failed(message, "no route")
            return
        if delay is None:  # lost in flight by fault injection
            self.messages_dropped += 1
            if self.metrics is not None:
                self.metrics.counter("net.messages_dropped").inc()
                self.metrics.counter("net.messages_lost").inc()
            return
        metrics = self.metrics
        if metrics is not None:
            if metrics is not self._m_registry:
                self._m_registry = metrics
                self._m_delivery = metrics.histogram("net.delivery_seconds")
                self._m_delivered = metrics.counter("net.messages_delivered")
            self._m_delivery.observe(delay)
        self.sim.schedule(
            delay,
            self._deliver,
            message,
            label=f"deliver#{message.msg_id}",
        )

    def _faulted_path_delay(self, message: Message) -> Optional[float]:
        """Per-hop delay with active fault adjustments; ``None`` = lost."""
        path = self.route(message.src, message.dst)
        faults = self.faults
        total = 0.0
        for link in path:
            delay = link.sample_delay(self.rng, message.size_bytes)
            delay, dropped = faults.adjust(link, delay)
            if dropped:
                return None
            total += delay
        return total

    def _ingress(self, message: Message) -> None:
        """Final intra-shard leg of a cross-shard delivery (gateway → dst).

        Runs on *this* network's simulator at the message's cross-shard
        arrival time, so the gateway→destination route is evaluated
        against the destination shard's live fault state: a destination
        partitioned from its own gateway loses inbound cross-shard
        traffic mid-path (the remote sender discovers it via timeout,
        exactly like in-flight loss — there is no synchronous
        connection-refused across shards).
        """
        gateway = self.gateway
        if gateway is None or message.dst == gateway:
            self._deliver(message)
            return
        try:
            path = self.route(gateway, message.dst)
        except RoutingError:
            self.messages_dropped += 1
            if self.metrics is not None:
                self.metrics.counter("net.messages_dropped").inc()
            return
        faults = self.faults
        total = 0.0
        for link in path:
            delay = link.sample_delay(self.rng, message.size_bytes)
            if faults is not None:
                delay, dropped = faults.adjust(link, delay)
                if dropped:
                    self.messages_dropped += 1
                    if self.metrics is not None:
                        self.metrics.counter("net.messages_dropped").inc()
                        self.metrics.counter("net.messages_lost").inc()
                    return
            total += delay
        if total > 0.0:
            self.sim.schedule(
                total, self._deliver, message,
                label=f"deliver#{message.msg_id}",
            )
        else:
            self._deliver(message)

    def _deliver(self, message: Message) -> None:
        self.messages_delivered += 1
        metrics = self.metrics
        if metrics is not None:
            if metrics is not self._m_registry:
                self._m_registry = metrics
                self._m_delivery = metrics.histogram("net.delivery_seconds")
                self._m_delivered = metrics.counter("net.messages_delivered")
            self._m_delivered.inc()
        self._nodes[message.dst].deliver(message)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self._nodes)} links={len(self._links)}>"


class CrossShardRouter:
    """Mailbox routing between shard-local networks on separate simulators.

    In an epoch-stepped sharded world
    (:class:`~repro.simcore.parallel.ShardedSimulator`) every shard owns
    a private :class:`Network`; a message addressed to a node in another
    shard cannot be scheduled into that shard's heap directly — a shard
    thread must never touch a neighbour's state.  Instead the source
    network hands the message here and it crosses through the stepper's
    per-shard mailbox, drained at the next epoch barrier:

    * the **source side** is charged the real topology cost: the sampled
      per-link delay from the sender to the shard's :attr:`Network.gateway`
      (so a shard partitioned from its core is connection-refused on
      cross-shard sends too, exactly like local ones) plus one sampled
      cross-shard hop;
    * the cross-shard hop is **floored at the stepper's lookahead**,
      which is the conservative guarantee that makes the epoch width
      safe: a message sent at ``s ≥ t`` in epoch ``[t, t+L)`` always
      delivers at ``s + hop ≥ t + L``, i.e. at or after the barrier;
    * every delay is sampled from the *source* shard's network RNG, so
      the draw order per shard — and therefore the whole fleet — is
      deterministic regardless of thread interleaving.

    Delivery lands in the destination network's :meth:`Network._ingress`
    path on the destination shard's simulator, in mailbox-drain order:
    the final gateway→destination leg is sampled and fault-adjusted
    *there*, against the destination's live topology, so a destination
    partitioned from its own gateway loses inbound cross-shard traffic
    too.
    """

    def __init__(self, stepper, latency: Optional[LatencyModel] = None) -> None:
        self.stepper = stepper
        #: One-way cross-shard hop model; the sampled value is floored at
        #: ``stepper.lookahead`` (see class docstring).
        self.latency = latency if latency is not None else cloud_internal_latency()
        self._networks: List[Network] = []
        self._shard_of: Dict[int, int] = {}  # id(network) -> shard index
        self._homes: Dict[Address, tuple] = {}  # dst -> (shard, network)
        self.messages_routed = 0

    def attach(self, network: Network, shard: int) -> Network:
        """Register one shard's network and install the transmit hook."""
        network.router = self
        self._networks.append(network)
        self._shard_of[id(network)] = shard
        self._homes.clear()  # nodes may be added after earlier attaches
        self.stepper.mark_coupled()
        return network

    def _locate(self, dst: Address) -> tuple:
        home = self._homes.get(dst)
        if home is None:
            matches = [
                (self._shard_of[id(network)], network)
                for network in self._networks
                if network.has_node(dst)
            ]
            if not matches:
                raise KeyError(f"message to unregistered address {dst}")
            if len(matches) > 1:
                raise ValueError(
                    f"address {dst} registered in {len(matches)} shards; "
                    "cross-shard destinations must be unique"
                )
            home = self._homes[dst] = matches[0]
        return home

    def transmit(self, src_net: Network, message: Message) -> None:
        """Route one message from ``src_net`` into its destination shard."""
        dst_shard, dst_net = self._locate(message.dst)
        try:
            delay = self._egress_delay(src_net, message)
        except RoutingError:
            src_net.messages_dropped += 1
            if src_net.metrics is not None:
                src_net.metrics.counter("net.messages_dropped").inc()
            sender = src_net._nodes.get(message.src)
            if sender is not None:
                sender.on_transmit_failed(message, "no route")
            return
        if delay is None:  # lost in flight on a faulted source-side link
            src_net.messages_dropped += 1
            if src_net.metrics is not None:
                src_net.metrics.counter("net.messages_dropped").inc()
                src_net.metrics.counter("net.messages_lost").inc()
            return
        hop = self.latency.sample(src_net.rng, message.size_bytes)
        delay += max(hop, self.stepper.lookahead)
        if src_net.metrics is not None:
            src_net.metrics.histogram("net.delivery_seconds").observe(delay)
        self.messages_routed += 1
        self.stepper.post(
            dst_shard,
            src_net.sim.now + delay,
            dst_net._ingress,
            message,
            src=self._shard_of[id(src_net)],
        )

    def _egress_delay(self, src_net: Network, message: Message) -> Optional[float]:
        """Sampled delay from the sender to its shard gateway.

        Mirrors :meth:`Network.transmit` semantics hop for hop:
        ``RoutingError`` propagates (connection refused), an active fault
        plan may inflate per-hop delay or drop the message (``None``).
        """
        gateway = src_net.gateway
        if gateway is None or message.src == gateway:
            return 0.0
        path = src_net.route(message.src, gateway)
        faults = src_net.faults
        total = 0.0
        for link in path:
            delay = link.sample_delay(src_net.rng, message.size_bytes)
            if faults is not None:
                delay, dropped = faults.adjust(link, delay)
                if dropped:
                    return None
            total += delay
        return total
