"""Point-to-point links."""

from __future__ import annotations

from repro.net.address import Address
from repro.net.latency import LatencyModel
from repro.simcore.rng import Rng


class Link:
    """A bidirectional link between two addresses with a latency model.

    Links carry statistics (messages and bytes forwarded) so topology-level
    tests and the testbed's traffic accounting can assert on them.
    """

    def __init__(self, a: Address, b: Address, latency: LatencyModel) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a} twice")
        self.a = a
        self.b = b
        self.latency = latency
        self.messages_forwarded = 0
        self.bytes_forwarded = 0
        self.up = True

    def endpoints(self) -> frozenset:
        """The unordered endpoint pair (used as the topology key)."""
        return frozenset((self.a, self.b))

    def other(self, end: Address) -> Address:
        """The endpoint opposite ``end``."""
        if end == self.a:
            return self.b
        if end == self.b:
            return self.a
        raise ValueError(f"{end} is not an endpoint of this link")

    def sample_delay(self, rng: Rng, size_bytes: int) -> float:
        """Draw the one-way delay for a message crossing this link."""
        self.messages_forwarded += 1
        self.bytes_forwarded += size_bytes
        return self.latency.sample(rng, size_bytes)

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.a.host}<->{self.b.host} {state}>"
