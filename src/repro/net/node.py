"""Base class for network-attached entities."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.address import Address
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class Node:
    """Anything attached to the simulated network.

    Subclasses (devices, hubs, proxies, services, the engine) override
    :meth:`on_message`.  Nodes gain a back-reference to the network when
    attached, through which they send and schedule.
    """

    def __init__(self, address: Address) -> None:
        self.address = address
        self.network: Optional["Network"] = None
        self.messages_received = 0
        self.messages_sent = 0
        self._metrics = None

    @property
    def metrics(self):
        """The node's metrics registry, if any.

        Falls back to the attached network's shared registry, so a node
        is observable the moment its topology is (without threading a
        registry through every constructor).
        """
        if self._metrics is not None:
            return self._metrics
        if self.network is not None:
            return self.network.metrics
        return None

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    @property
    def sim(self):
        """The simulator of the attached network."""
        if self.network is None:
            raise RuntimeError(f"node {self.address} is not attached to a network")
        return self.network.sim

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.add_node`; may be overridden for setup."""
        self.network = network

    def send(self, dst: Address, protocol: str, payload, size_bytes: int = 512, **headers) -> Message:
        """Construct and transmit a message to ``dst``."""
        if self.network is None:
            raise RuntimeError(f"node {self.address} is not attached to a network")
        message = Message(
            src=self.address,
            dst=dst,
            protocol=protocol,
            payload=payload,
            size_bytes=size_bytes,
            headers=dict(headers),
        )
        self.messages_sent += 1
        self.network.transmit(message)
        return message

    def deliver(self, message: Message) -> None:
        """Entry point invoked by the network on arrival."""
        self.messages_received += 1
        self.on_message(message)

    def on_message(self, message: Message) -> None:
        """Handle an arriving message.  Default: ignore."""

    def on_transmit_failed(self, message: Message, reason: str) -> None:
        """Synchronous notification that a sent message could not be routed.

        The network calls this when it knows *immediately* that a message
        has no path (the moral equivalent of a TCP connection refused /
        ICMP unreachable), as opposed to in-flight loss, which the sender
        only discovers via its own timeout.  Default: ignore.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.address.host}>"
