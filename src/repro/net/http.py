"""HTTP-like request/response layer over the message network.

IFTTT's partner-service protocol is plain HTTPS POST against well-known
URLs (``/ifttt/v1/triggers/<slug>``, ``/ifttt/v1/actions/<slug>``).  This
module models exactly that: an :class:`HttpNode` registers route handlers
and issues requests; responses are matched to requests by id, and pending
requests time out if the peer or path is unavailable.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.net.address import Address
from repro.net.message import Message
from repro.net.node import Node

_request_ids = itertools.count(1)

HTTP_PROTOCOL = "http"
DEFAULT_TIMEOUT = 30.0
#: How many timed-out request ids are remembered so that their responses,
#: should they straggle in later, are counted as late rather than lost.
TIMED_OUT_MEMORY = 4096


class HttpError(RuntimeError):
    """Raised by handlers to produce a non-200 response."""

    def __init__(self, status: int, reason: str = "") -> None:
        super().__init__(f"HTTP {status}: {reason}")
        self.status = status
        self.reason = reason


@dataclass
class HttpRequest:
    """An in-flight HTTP request."""

    method: str
    path: str
    body: Any = None
    headers: Dict[str, Any] = field(default_factory=dict)
    request_id: int = field(default_factory=lambda: next(_request_ids))
    src: Optional[Address] = None

    def header(self, name: str, default: Any = None) -> Any:
        """Case-sensitive header lookup."""
        return self.headers.get(name, default)


@dataclass
class HttpResponse:
    """The response to an :class:`HttpRequest`."""

    status: int
    body: Any = None
    headers: Dict[str, Any] = field(default_factory=dict)
    request_id: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    @property
    def timed_out(self) -> bool:
        """True when the client gave up waiting (synthetic status 599)."""
        return self.status == 599


ResponseCallback = Callable[[HttpResponse], None]
RouteHandler = Callable[[HttpRequest], Any]


class HttpNode(Node):
    """A node that speaks the HTTP-like protocol.

    Server side: :meth:`add_route` binds ``(method, path-prefix)`` to a
    handler.  Handlers may return an :class:`HttpResponse`, a
    ``(status, body)`` tuple, or a bare body (=> 200), or raise
    :class:`HttpError`.  An optional per-node ``service_time`` adds request
    processing delay before the response is sent.

    Client side: :meth:`request` sends a request and invokes the callback
    with the response (or a synthetic 599 on timeout).
    """

    def __init__(self, address: Address, service_time: float = 0.0) -> None:
        super().__init__(address)
        self.service_time = service_time
        self._routes: Dict[Tuple[str, str], RouteHandler] = {}
        self._pending: Dict[int, Tuple[ResponseCallback, Any, float]] = {}
        self._timed_out_ids: Set[int] = set()
        self._timed_out_order: Deque[int] = deque()
        self.requests_served = 0
        self.requests_issued = 0
        self.timeouts = 0
        self.late_responses = 0
        self.connection_refused = 0

    # -- server side ---------------------------------------------------------

    def add_route(self, method: str, path_prefix: str, handler: RouteHandler) -> None:
        """Bind a handler to all paths starting with ``path_prefix``."""
        key = (method.upper(), path_prefix)
        if key in self._routes:
            raise ValueError(f"route {method} {path_prefix} already registered on {self.address}")
        self._routes[key] = handler

    def remove_route(self, method: str, path_prefix: str) -> None:
        """Unbind a previously added route."""
        self._routes.pop((method.upper(), path_prefix), None)

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        handler = self._match_route(request.method, request.path)
        if handler is None:
            return HttpResponse(status=404, body={"error": "not found", "path": request.path})
        try:
            result = handler(request)
        except HttpError as exc:
            return HttpResponse(status=exc.status, body={"error": exc.reason})
        if isinstance(result, HttpResponse):
            return result
        if isinstance(result, tuple) and len(result) == 2 and isinstance(result[0], int):
            return HttpResponse(status=result[0], body=result[1])
        return HttpResponse(status=200, body=result)

    def _match_route(self, method: str, path: str) -> Optional[RouteHandler]:
        best: Optional[RouteHandler] = None
        best_len = -1
        for (m, prefix), handler in self._routes.items():
            if m == method.upper() and path.startswith(prefix) and len(prefix) > best_len:
                best = handler
                best_len = len(prefix)
        return best

    # -- client side ---------------------------------------------------------

    def request(
        self,
        dst: Address,
        method: str,
        path: str,
        body: Any = None,
        on_response: Optional[ResponseCallback] = None,
        timeout: float = DEFAULT_TIMEOUT,
        headers: Optional[Dict[str, Any]] = None,
        size_bytes: int = 512,
    ) -> HttpRequest:
        """Issue a request; the callback fires with the response or a 599."""
        req = HttpRequest(
            method=method.upper(),
            path=path,
            body=body,
            headers=dict(headers or {}),
            src=self.address,
        )
        self.requests_issued += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("http.requests_issued", node=self.address.host).inc()
        sent_at = self.now
        timeout_event = None
        if on_response is not None:
            timeout_event = self.sim.schedule(
                timeout, self._on_timeout, req.request_id, label=f"http-timeout#{req.request_id}"
            )
            self._pending[req.request_id] = (on_response, timeout_event, sent_at)
        self.send(dst, HTTP_PROTOCOL, {"type": "request", "request": req}, size_bytes=size_bytes)
        return req

    def get(self, dst: Address, path: str, **kwargs: Any) -> HttpRequest:
        """Shorthand for ``request(dst, "GET", path, ...)``."""
        return self.request(dst, "GET", path, **kwargs)

    def post(self, dst: Address, path: str, body: Any = None, **kwargs: Any) -> HttpRequest:
        """Shorthand for ``request(dst, "POST", path, body, ...)``."""
        return self.request(dst, "POST", path, body=body, **kwargs)

    def _on_timeout(self, request_id: int) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return
        callback, _, sent_at = entry
        self.timeouts += 1
        self._remember_timed_out(request_id)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("http.timeouts", node=self.address.host).inc()
        callback(HttpResponse(status=599, body=None, request_id=request_id, elapsed=self.now - sent_at))

    def _remember_timed_out(self, request_id: int) -> None:
        """Track a timed-out id (bounded) so late responses are countable."""
        self._timed_out_ids.add(request_id)
        self._timed_out_order.append(request_id)
        while len(self._timed_out_order) > TIMED_OUT_MEMORY:
            self._timed_out_ids.discard(self._timed_out_order.popleft())

    # -- synchronous transmit failures ---------------------------------------

    def on_transmit_failed(self, message: Message, reason: str) -> None:
        """Turn an unroutable outgoing request into an immediate 503.

        Without this, a request to an unreachable destination was
        indistinguishable from a slow peer: the caller waited out the
        full timeout.  The network reports the missing route
        synchronously, so we answer with a synthetic
        ``503 connection refused`` right away.  The callback is deferred
        by one zero-delay event so callers never observe a response
        before :meth:`request` has returned.
        """
        if message.protocol != HTTP_PROTOCOL:
            return
        payload = message.payload
        if not isinstance(payload, dict) or payload.get("type") != "request":
            return
        self.connection_refused += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("net.connection_refused", node=self.address.host).inc()
        request: HttpRequest = payload["request"]
        entry = self._pending.pop(request.request_id, None)
        if entry is None:
            return  # fire-and-forget: nothing awaits an answer
        callback, timeout_event, sent_at = entry
        if timeout_event is not None:
            timeout_event.cancel()
        response = HttpResponse(
            status=503,
            body={"error": "connection refused", "reason": reason},
            request_id=request.request_id,
        )
        self.sim.schedule(
            0.0, self._deliver_refusal, callback, response, sent_at,
            label=f"http-refused#{request.request_id}",
        )

    def _deliver_refusal(
        self, callback: ResponseCallback, response: HttpResponse, sent_at: float
    ) -> None:
        response.elapsed = self.now - sent_at
        callback(response)

    # -- wire handling ---------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.protocol != HTTP_PROTOCOL:
            self.on_non_http_message(message)
            return
        payload = message.payload
        metrics = self.metrics
        if payload["type"] == "request":
            request: HttpRequest = payload["request"]
            self.requests_served += 1
            response = self._dispatch(request)
            response.request_id = request.request_id
            if metrics is not None:
                metrics.counter("http.requests_served", node=self.address.host).inc()
                metrics.counter(
                    "http.responses", status_class=f"{response.status // 100}xx"
                ).inc()
            def reply() -> None:
                self.send(
                    message.src,
                    HTTP_PROTOCOL,
                    {"type": "response", "response": response},
                    size_bytes=max(128, message.size_bytes // 2),
                )
            if self.service_time > 0:
                self.sim.schedule(self.service_time, reply, label="http-service")
            else:
                reply()
        elif payload["type"] == "response":
            response: HttpResponse = payload["response"]
            entry = self._pending.pop(response.request_id, None)
            if entry is None:
                # Late response after the timeout already fired, or a
                # fire-and-forget request.  Late ones are counted — a
                # silent mismatch between issued timeouts and stragglers
                # hides slow-but-alive services; nothing is cancelled or
                # called back twice.
                if response.request_id in self._timed_out_ids:
                    self._timed_out_ids.discard(response.request_id)
                    self.late_responses += 1
                    if metrics is not None:
                        metrics.counter(
                            "http.late_responses", node=self.address.host
                        ).inc()
                return
            callback, timeout_event, sent_at = entry
            if timeout_event is not None:
                timeout_event.cancel()
            response.elapsed = self.now - sent_at
            if metrics is not None:
                metrics.histogram("http.rtt_seconds", node=self.address.host).observe(
                    response.elapsed
                )
            callback(response)
        else:
            raise ValueError(f"unknown http payload type {payload['type']!r}")

    def on_non_http_message(self, message: Message) -> None:
        """Hook for subclasses that also speak device protocols."""
