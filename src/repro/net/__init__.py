"""Simulated network substrate.

Models the communication paths of the paper's testbed (Figure 1): home-LAN
links between IoT devices, their hubs, and the local proxy; WAN paths
between the home gateway, partner-service servers, web applications, and
the IFTTT engine.  Messages are routed hop-by-hop over links whose
per-hop delay comes from calibrated latency models, and an HTTP-like
request/response layer on top carries the IFTTT partner-service protocol.
"""

from repro.net.address import Address
from repro.net.message import Message
from repro.net.latency import (
    LatencyModel,
    FixedLatency,
    UniformLatency,
    LognormalLatency,
    lan_latency,
    wan_latency,
    cloud_internal_latency,
)
from repro.net.link import Link
from repro.net.node import Node
from repro.net.network import Network, RoutingError
from repro.net.http import HttpRequest, HttpResponse, HttpNode, HttpError

__all__ = [
    "Address",
    "Message",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LognormalLatency",
    "lan_latency",
    "wan_latency",
    "cloud_internal_latency",
    "Link",
    "Node",
    "Network",
    "RoutingError",
    "HttpRequest",
    "HttpResponse",
    "HttpNode",
    "HttpError",
]
