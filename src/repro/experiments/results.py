"""Result records for experiment matrices, with a deterministic JSON form.

Every float that lands in a result file passes through :func:`_round`
(six decimals), every dict is serialized with sorted keys, and nothing
wall-clock-dependent is stored — so the same spec produces *byte
identical* ``results.json`` and per-cell files run after run, which is
exactly what ``make experiments-smoke`` diffs in CI.  Timing and host
details go to a separate, un-gated ``run_meta.json``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.stats import (
    bootstrap_median_interval,
    mean_confidence_interval,
    pooled_quartiles,
)
from repro.simcore.rng import quantiles as exact_quantiles

#: Confidence level every cell interval is reported at.
CONFIDENCE = 0.95


def _round(value: float) -> float:
    """Canonical float rounding for serialized results."""
    return round(float(value), 6)


def _round_seq(values: Sequence[float]) -> List[float]:
    return [_round(v) for v in values]


def snapshot_sha256(snapshot: Mapping[str, Any]) -> str:
    """Content hash of a metrics snapshot (canonical JSON)."""
    blob = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class RepeatOutcome:
    """One deterministic run of a cell: samples, counters, snapshot."""

    repeat: int
    seed: int
    #: Latency samples (T2A seconds) the run produced, in arrival order.
    samples: List[float]
    #: Integer/float counters the runner extracted (kind-specific).
    counters: Dict[str, Any]
    #: Deterministic metrics snapshot (wall-clock families filtered).
    snapshot: Dict[str, Any] = field(repr=False)

    def median(self) -> Optional[float]:
        if not self.samples:
            return None
        return exact_quantiles(self.samples, [0.5])[0]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "repeat": self.repeat,
            "seed": self.seed,
            "n": len(self.samples),
            "samples": _round_seq(self.samples),
            "counters": dict(sorted(self.counters.items())),
            "snapshot_sha256": snapshot_sha256(self.snapshot),
        }


@dataclass
class CellResult:
    """One matrix cell, aggregated over its repeats."""

    index: int
    sweep: str
    kind: str
    params: Dict[str, Any]
    repeats: List[RepeatOutcome]

    # -- aggregates ------------------------------------------------------------

    @property
    def pooled_samples(self) -> List[float]:
        """Every repeat's samples, concatenated in repeat order."""
        pooled: List[float] = []
        for outcome in self.repeats:
            pooled.extend(outcome.samples)
        return pooled

    def quartiles(self) -> Optional[Tuple[float, float, float]]:
        """p25/p50/p75 of the pooled T2A samples (P2 sketch)."""
        return pooled_quartiles(self.pooled_samples)

    def median_interval(self) -> Optional[Dict[str, Any]]:
        """A confidence interval for the cell's median T2A.

        With two or more repeats: a Student-t interval over the
        repeat-level medians (run-to-run variability).  With a single
        repeat: a seeded percentile bootstrap over its samples
        (within-run variability).  ``None`` when there is not enough
        data for either.
        """
        medians = [m for m in (r.median() for r in self.repeats) if m is not None]
        if len(medians) >= 2:
            interval = mean_confidence_interval(medians, CONFIDENCE)
            if interval is None:
                return None
            center, lo, hi = interval
            method = "t"
        else:
            pooled = self.pooled_samples
            if not self.repeats:
                return None
            interval = bootstrap_median_interval(
                pooled, seed=self.repeats[0].seed, confidence=CONFIDENCE
            )
            if interval is None:
                return None
            center, lo, hi = interval
            method = "bootstrap"
        return {
            "center": _round(center),
            "lo": _round(lo),
            "hi": _round(hi),
            "confidence": CONFIDENCE,
            "method": method,
        }

    def counters_total(self) -> Dict[str, Any]:
        """Integer counters summed across repeats (floats are skipped)."""
        totals: Dict[str, int] = {}
        for outcome in self.repeats:
            for key, value in outcome.counters.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    continue
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def to_dict(self) -> Dict[str, Any]:
        quartiles = self.quartiles()
        return {
            "index": self.index,
            "sweep": self.sweep,
            "kind": self.kind,
            "params": dict(sorted(self.params.items())),
            "n": len(self.pooled_samples),
            "t2a_quartiles": _round_seq(quartiles) if quartiles else None,
            "median_ci": self.median_interval(),
            "counters": self.counters_total(),
            "repeats": [outcome.to_dict() for outcome in self.repeats],
        }

    @staticmethod
    def cell_filename(index: int) -> str:
        return f"cell_{index:04d}.json"

    def write(self, cells_dir: str) -> str:
        """Write the per-cell artifact (summary + full snapshots)."""
        import os

        path = os.path.join(cells_dir, self.cell_filename(self.index))
        payload = self.to_dict()
        payload["snapshots"] = [
            {"repeat": outcome.repeat, "snapshot": outcome.snapshot}
            for outcome in self.repeats
        ]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @staticmethod
    def read(path: str) -> Dict[str, Any]:
        """Load a per-cell artifact written by :meth:`write`."""
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)


@dataclass
class MatrixResults:
    """The aggregated matrix: one summary dict per cell, in index order."""

    spec_name: str
    spec_sha256: str
    description: str
    cells: List[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_name": self.spec_name,
            "spec_sha256": self.spec_sha256,
            "description": self.description,
            "cell_count": len(self.cells),
            "cells": self.cells,
        }

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON of the aggregated results."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_cell_dicts(
        spec_name: str,
        spec_sha256: str,
        description: str,
        cell_dicts: Sequence[Dict[str, Any]],
    ) -> "MatrixResults":
        """Assemble from per-cell dicts (full snapshots are dropped here;
        they stay in the per-cell files)."""
        cells = []
        for data in sorted(cell_dicts, key=lambda d: d["index"]):
            summary = {k: v for k, v in data.items() if k != "snapshots"}
            cells.append(summary)
        return MatrixResults(
            spec_name=spec_name,
            spec_sha256=spec_sha256,
            description=description,
            cells=cells,
        )
