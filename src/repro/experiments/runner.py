"""Cell execution and matrix orchestration.

:func:`run_cell` executes one matrix cell — every repeat — fully
in-process and returns its :class:`~repro.experiments.results.CellResult`.
:func:`run_matrix` orchestrates a whole spec, by default isolating each
cell in a subprocess (the ``bench_fleet_scale.py`` pattern: a fresh
interpreter per measurement, so no allocator/GC state or import-order
residue bleeds between cells) and fanning out up to ``--jobs`` cells at
a time.  Isolation and parallelism are pure orchestration choices: the
seeds come from :func:`~repro.experiments.spec.cell_seed`, so serial,
``--jobs N``, and one-``--cell``-at-a-time runs produce byte-identical
results.

Three cell kinds map onto the reproduction's existing worlds:

``chaos``  → :class:`~repro.testbed.chaos.ChaosWorld` /
             :class:`~repro.testbed.chaos.ShardedChaosWorld`
``t2a``    → :class:`~repro.testbed.testbed.Testbed` +
             :meth:`~repro.testbed.controller.TestController.measure_t2a`
``fleet``  → :func:`~repro.testbed.workload.run_fleet_experiment`
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Tuple

from repro.engine.config import EngineConfig
from repro.engine.poller import FixedPollingPolicy
from repro.experiments.results import CellResult, MatrixResults, RepeatOutcome
from repro.experiments.spec import (
    Cell,
    ExperimentSpec,
    KIND_CHAOS,
    KIND_FLEET,
    KIND_T2A,
    cell_seed,
    expand_cells,
    resolve_fault_plan,
)
from repro.obs.metrics import deterministic_snapshot
from repro.testbed.chaos import (
    ChaosScenario,
    ChaosWorld,
    ShardedChaosWorld,
    chaos_scenario,
)
from repro.testbed.controller import TestController
from repro.testbed.testbed import Testbed, TestbedConfig
from repro.testbed.workload import run_fleet_experiment

#: Phase order used to flatten chaos T2A samples deterministically.
PHASE_ORDER = ("before", "during", "after")


# -- kind runners ------------------------------------------------------------------


def _chaos_engine_config(poll_interval: float, poll_dispatch: str) -> EngineConfig:
    """The chaos worlds' default engine config, plus the swept dispatcher."""
    return EngineConfig(
        poll_policy=FixedPollingPolicy(poll_interval),
        initial_poll_delay=0.5,
        poll_timeout=10.0,
        action_timeout=10.0,
        poll_dispatch=poll_dispatch,
    )


def _chaos_scenario_for(spec: ExperimentSpec, cell: Cell) -> ChaosScenario:
    """The cell's scenario, with a spec-defined plan swapped in if named."""
    scenario = chaos_scenario(cell.params["scenario"])
    plan = resolve_fault_plan(spec, cell)
    if plan is None:
        return scenario
    return ChaosScenario(
        name=scenario.name,
        description=f"{scenario.description} (plan {cell.params['fault_plan']!r})",
        event_times=scenario.event_times,
        plan=plan,
    )


def _run_chaos(spec: ExperimentSpec, cell: Cell, seed: int) -> Tuple[List[float], Dict[str, Any], Dict[str, Any]]:
    params = cell.params
    knobs = cell.sweep.knobs
    scenario = _chaos_scenario_for(spec, cell)
    config = _chaos_engine_config(knobs["poll_interval"], params["poll_dispatch"])
    sharded = params["shards"] > 1 or params["corpus_size"] > 1
    if sharded:
        world = ShardedChaosWorld(
            seed=seed,
            poll_interval=knobs["poll_interval"],
            num_shards=params["shards"],
            shard_strategy=params["shard_strategy"],
            pairs=params["corpus_size"],
            engine_config=config,
            delivery_mode=params["delivery_mode"],
        )
    else:
        world = ChaosWorld(
            seed=seed,
            poll_interval=knobs["poll_interval"],
            engine_config=config,
            delivery_mode=params["delivery_mode"],
        )
    result = world.run(scenario, drain=knobs["drain"])

    samples: List[float] = []
    if sharded:
        for shard in range(result.num_shards):
            by_phase = result.t2a_by_shard.get(shard, {})
            for phase in PHASE_ORDER:
                samples.extend(by_phase.get(phase, []))
        stats = result.fleet_stats
        counters = {
            "actions_dead_lettered": stats["dead_letters"],
            "actions_delivered": stats["actions_delivered"],
            "actions_dispatched": stats["actions_dispatched"],
            "actions_in_replay": stats["actions_in_replay"],
            "actions_in_retry": stats["actions_in_retry"],
        }
    else:
        for phase in PHASE_ORDER:
            samples.extend(result.t2a_by_phase.get(phase, []))
        counters = {
            "actions_dead_lettered": result.actions_dead_lettered,
            "actions_delivered": result.actions_delivered,
            "actions_dispatched": result.actions_dispatched,
            "actions_in_replay": result.actions_in_replay,
            "actions_in_retry": result.actions_in_retry,
        }
    counters.update(
        actions_silently_lost=result.actions_silently_lost,
        events_injected=result.events_injected,
        events_observed=result.events_observed,
        faults_activated=result.faults_activated,
        faults_deactivated=result.faults_deactivated,
    )
    return samples, counters, result.snapshot


def _run_t2a(spec: ExperimentSpec, cell: Cell, seed: int) -> Tuple[List[float], Dict[str, Any], Dict[str, Any]]:
    params = cell.params
    knobs = cell.sweep.knobs
    testbed = Testbed(
        TestbedConfig(
            seed=seed,
            engine_config=EngineConfig(poll_dispatch=params["poll_dispatch"]),
            fault_plan=resolve_fault_plan(spec, cell),
        )
    )
    testbed.build()
    controller = TestController(testbed, timeout=knobs["timeout"])
    samples = controller.measure_t2a(
        params["applet"],
        runs=knobs["runs"],
        variant=knobs["variant"],
        spacing=knobs["spacing"],
    )
    counters = {
        "runs_completed": len(samples),
        "runs_requested": knobs["runs"],
    }
    return samples, counters, deterministic_snapshot(testbed.metrics)


def _run_fleet(spec: ExperimentSpec, cell: Cell, seed: int) -> Tuple[List[float], Dict[str, Any], Dict[str, Any]]:
    params = cell.params
    knobs = cell.sweep.knobs
    result = run_fleet_experiment(
        n_applets=params["corpus_size"],
        publications=knobs["publications"],
        seed=seed,
        delivery_mode=params["delivery_mode"],
    )
    counters = {
        "actions_executed": result.actions_executed,
        "peak_polls_per_second": result.peak_polls_per_second(),
        "polls_sent": result.polls_sent,
    }
    snapshot = deterministic_snapshot(result.metrics_snapshot or {})
    return list(result.latencies), counters, snapshot


_KIND_RUNNERS = {
    KIND_CHAOS: _run_chaos,
    KIND_T2A: _run_t2a,
    KIND_FLEET: _run_fleet,
}


def run_cell(spec: ExperimentSpec, index: int) -> CellResult:
    """Run one cell (all repeats) in-process, deterministically."""
    cells = expand_cells(spec)
    if not 0 <= index < len(cells):
        raise IndexError(
            f"cell index {index} out of range (spec has {len(cells)} cells)"
        )
    cell = cells[index]
    runner = _KIND_RUNNERS[cell.sweep.kind]
    repeats: List[RepeatOutcome] = []
    for repeat in range(cell.sweep.repeats):
        seed = cell_seed(spec, index, repeat)
        samples, counters, snapshot = runner(spec, cell, seed)
        repeats.append(
            RepeatOutcome(
                repeat=repeat,
                seed=seed,
                samples=samples,
                counters=counters,
                snapshot=snapshot,
            )
        )
    return CellResult(
        index=index,
        sweep=cell.sweep.name,
        kind=cell.sweep.kind,
        params=dict(cell.params),
        repeats=repeats,
    )


# -- matrix orchestration ----------------------------------------------------------


class MatrixRunError(RuntimeError):
    """A cell subprocess failed (non-zero exit or missing artifact)."""


def _cells_dir(output_dir: str) -> str:
    path = os.path.join(output_dir, "cells")
    os.makedirs(path, exist_ok=True)
    return path


def run_cell_to_file(spec: ExperimentSpec, index: int, output_dir: str) -> str:
    """Run one cell and write its artifact under ``output_dir/cells/``.

    This is what ``repro experiments SPEC --cell i`` calls — both for
    users slicing a matrix by hand and for the parent orchestrator's
    subprocesses.
    """
    result = run_cell(spec, index)
    return result.write(_cells_dir(output_dir))


def _child_command(spec_path: str, index: int, output_dir: str) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "experiments",
        spec_path,
        "--cell",
        str(index),
        "--output",
        output_dir,
    ]


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def run_matrix(
    spec: ExperimentSpec,
    spec_path: str,
    output_dir: str,
    jobs: int = 1,
    isolate: bool = True,
    progress=None,
) -> MatrixResults:
    """Run every cell of ``spec`` and assemble the aggregated results.

    ``isolate=True`` (the default) runs each cell in its own
    interpreter via ``python -m repro experiments SPEC --cell i``; up to
    ``jobs`` subprocesses run concurrently.  ``isolate=False`` runs the
    cells serially in-process (useful under test).  Either way the
    output layout is::

        output_dir/
          cells/cell_0000.json ...   per-cell artifacts (full snapshots)
          results.json               aggregated matrix (byte-stable)
          results.txt                rendered table
          run_meta.json              wall-clock timings (NOT gated)

    Raises :class:`MatrixRunError` when any cell subprocess fails.
    """
    from repro.reporting import render_experiment_table

    cells = expand_cells(spec)
    os.makedirs(output_dir, exist_ok=True)
    cells_dir = _cells_dir(output_dir)
    started = time.time()
    timings: Dict[str, float] = {}

    if isolate:
        pending = list(range(len(cells)))
        running: List[Tuple[int, subprocess.Popen, float]] = []
        env = _child_env()
        jobs = max(1, jobs)

        def _reap() -> None:
            """Block until at least one running cell finishes, then fold it in."""
            while True:
                done = [entry for entry in running if entry[1].poll() is not None]
                if done:
                    break
                time.sleep(0.05)
            for entry in done:
                index, proc, t0 = entry
                running.remove(entry)
                timings[str(index)] = round(time.time() - t0, 3)
                if proc.returncode != 0:
                    stderr = proc.stderr.read() if proc.stderr else ""
                    for other in running:
                        other[1].kill()
                    raise MatrixRunError(
                        f"cell {index} failed (exit {proc.returncode}):\n{stderr}"
                    )
                if progress is not None:
                    progress(index, cells[index])

        while pending or running:
            while pending and len(running) < jobs:
                index = pending.pop(0)
                proc = subprocess.Popen(
                    _child_command(spec_path, index, output_dir),
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.PIPE,
                    text=True,
                )
                running.append((index, proc, time.time()))
            if running:
                _reap()
    else:
        for index in range(len(cells)):
            t0 = time.time()
            run_cell_to_file(spec, index, output_dir)
            timings[str(index)] = round(time.time() - t0, 3)
            if progress is not None:
                progress(index, cells[index])

    cell_dicts = []
    for index in range(len(cells)):
        path = os.path.join(cells_dir, CellResult.cell_filename(index))
        if not os.path.exists(path):
            raise MatrixRunError(f"cell {index} produced no artifact at {path}")
        cell_dicts.append(CellResult.read(path))

    results = MatrixResults.from_cell_dicts(
        spec.name, spec.sha256, spec.description, cell_dicts
    )
    with open(os.path.join(output_dir, "results.json"), "w", encoding="utf-8") as handle:
        handle.write(results.to_json())
    with open(os.path.join(output_dir, "results.txt"), "w", encoding="utf-8") as handle:
        handle.write(render_experiment_table(results.to_dict()) + "\n")
    meta = {
        "wall_seconds": round(time.time() - started, 3),
        "jobs": jobs if isolate else 0,
        "isolated": isolate,
        "cell_wall_seconds": timings,
    }
    with open(os.path.join(output_dir, "run_meta.json"), "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return results
