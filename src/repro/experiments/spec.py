"""Experiment-matrix specs: parse, validate, expand, derive seeds.

A spec is a JSON object::

    {
      "name": "matrix_smoke",
      "description": "...",
      "sweeps": [
        {
          "name": "chaos",
          "kind": "chaos",
          "repeats": 2,
          "axes": {
            "scenario": ["outage"],
            "shards": [1, 4],
            "shard_strategy": ["service_hash"],
            "corpus_size": [6],
            "delivery_mode": ["poll", "push"],
            "poll_dispatch": ["heap"]
          },
          "knobs": {"poll_interval": 5.0}
        },
        {
          "name": "t2a",
          "kind": "t2a",
          "repeats": 2,
          "axes": {"applet": ["A2", "A5"], "fault_plan": ["baseline", "storm"]},
          "knobs": {"runs": 10, "spacing": 150.0}
        }
      ],
      "fault_plans": {"storm": {"faults": [ ... ]}}
    }

Each sweep is one runner *kind* plus a set of *axes*; the cartesian
product of a sweep's axis values, concatenated across sweeps in
declaration order, is the matrix's flat cell list.  Omitted axes take
their single default value, so a sweep only names the axes it varies.

Three kinds ship built in:

``chaos``
    The fault-injection worlds of :mod:`repro.testbed.chaos`.  Axes:
    ``scenario`` (built-in chaos scenario name), ``fault_plan``
    (``"builtin"`` keeps the scenario's plan; any other value names an
    entry of the spec's ``fault_plans``), ``shards``, ``shard_strategy``,
    ``corpus_size`` (sensor/sink pairs), ``delivery_mode``,
    ``poll_dispatch``.
``t2a``
    The Figure 4 testbed: one Table 4 applet measured through
    :meth:`~repro.testbed.controller.TestController.measure_t2a`, with
    the ``fault_plan`` axis driving ``TestbedConfig.fault_plan``
    (``"baseline"`` = fault-free Figure 4 run).  Axes: ``applet``,
    ``fault_plan``, ``poll_dispatch``.
``fleet``
    The NASA-wallpaper fleet of :mod:`repro.testbed.workload`.  Axes:
    ``corpus_size`` (installed applets), ``delivery_mode``.

Determinism contract: the seed of cell ``i``, repeat ``r`` is
``cell_seed(spec, i, r)`` — a SHA-256 digest of the spec's canonical
JSON, the index, and the repeat — so the same spec file always replays
the same matrix, cell by cell, regardless of ``--jobs`` or ``--cell``
slicing.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.config import SHARD_STRATEGIES
from repro.engine.push import DELIVERY_MODES
from repro.engine.scheduler import POLL_DISPATCH_MODES
from repro.faults.plan import FaultPlan, FaultPlanError
from repro.testbed.applets import APPLET_SUITE
from repro.testbed.chaos import CHAOS_SCENARIOS


class ExperimentSpecError(ValueError):
    """Raised for malformed experiment specs."""


#: Sentinel fault-plan values (not names into ``fault_plans``).
BUILTIN_PLAN = "builtin"  # chaos: keep the scenario's own plan
BASELINE_PLAN = "baseline"  # t2a: no fault plan (Figure 4 baseline)

KIND_CHAOS = "chaos"
KIND_T2A = "t2a"
KIND_FLEET = "fleet"
KINDS = (KIND_CHAOS, KIND_T2A, KIND_FLEET)

#: Per-kind axis vocabulary: name -> (default value, validator).
#: A sweep may only name axes of its kind; omitted axes contribute the
#: default as a single-value dimension.


def _positive_int(axis: str, value: Any) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ExperimentSpecError(f"axis {axis!r}: need a positive integer, got {value!r}")


def _choice(options: Sequence[str]):
    def check(axis: str, value: Any) -> None:
        if value not in options:
            raise ExperimentSpecError(
                f"axis {axis!r}: {value!r} is not one of {sorted(options)}"
            )

    return check


def _any_string(axis: str, value: Any) -> None:
    if not isinstance(value, str) or not value:
        raise ExperimentSpecError(f"axis {axis!r}: need a non-empty string, got {value!r}")


AXES: Dict[str, Dict[str, Tuple[Any, Any]]] = {
    KIND_CHAOS: {
        "scenario": ("outage", _choice(tuple(CHAOS_SCENARIOS))),
        "fault_plan": (BUILTIN_PLAN, _any_string),
        "shards": (1, _positive_int),
        "shard_strategy": ("service_hash", _choice(SHARD_STRATEGIES)),
        "corpus_size": (1, _positive_int),
        "delivery_mode": ("poll", _choice(DELIVERY_MODES)),
        "poll_dispatch": ("heap", _choice(POLL_DISPATCH_MODES)),
    },
    KIND_T2A: {
        "applet": ("A2", _choice(tuple(APPLET_SUITE))),
        "fault_plan": (BASELINE_PLAN, _any_string),
        "poll_dispatch": ("heap", _choice(POLL_DISPATCH_MODES)),
    },
    KIND_FLEET: {
        "corpus_size": (150, _positive_int),
        "delivery_mode": ("poll", _choice(DELIVERY_MODES)),
    },
}

#: Per-kind knob vocabulary: name -> (default, type).  Knobs are scalar
#: settings shared by every cell of a sweep (not swept axes).
KNOBS: Dict[str, Dict[str, Tuple[Any, type]]] = {
    KIND_CHAOS: {"poll_interval": (5.0, float), "drain": (90.0, float)},
    KIND_T2A: {
        "runs": (10, int),
        "spacing": (150.0, float),
        "variant": ("official", str),
        "timeout": (1800.0, float),
    },
    KIND_FLEET: {"publications": (3, int)},
}

MAX_CELLS = 4096


@dataclass(frozen=True)
class Sweep:
    """One sweep: a runner kind, its axes, and shared knobs."""

    name: str
    kind: str
    repeats: int
    #: Axis name -> tuple of values, in declaration order, defaults
    #: filled in for omitted axes.
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    knobs: Mapping[str, Any] = field(default_factory=dict)

    def axis_values(self) -> Dict[str, Tuple[Any, ...]]:
        """The axes as an ordered mapping."""
        return dict(self.axes)

    @property
    def cell_count(self) -> int:
        """Cells this sweep expands into (product of axis sizes)."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count


@dataclass(frozen=True)
class ExperimentSpec:
    """A parsed, validated experiment matrix."""

    name: str
    description: str
    sweeps: Tuple[Sweep, ...]
    fault_plans: Mapping[str, FaultPlan]
    #: SHA-256 of the spec's canonical JSON — the seed root and the
    #: provenance stamp carried by every result file.
    sha256: str

    @property
    def cell_count(self) -> int:
        """Total cells across all sweeps."""
        return sum(sweep.cell_count for sweep in self.sweeps)


@dataclass(frozen=True)
class Cell:
    """One point of the matrix: a sweep plus concrete axis values."""

    index: int
    sweep: Sweep
    params: Mapping[str, Any]

    def label(self) -> str:
        """Compact ``axis=value`` string of the swept (non-default) axes."""
        defaults = {axis: default for axis, (default, _) in AXES[self.sweep.kind].items()}
        parts = [
            f"{axis}={value}"
            for axis, value in self.params.items()
            if value != defaults.get(axis)
        ]
        return " ".join(parts) if parts else "defaults"


# -- parsing ---------------------------------------------------------------------


def _parse_sweep(index: int, data: Any, plan_names: Sequence[str]) -> Sweep:
    if not isinstance(data, dict):
        raise ExperimentSpecError(f"sweeps[{index}] must be an object, got {type(data).__name__}")
    unknown = set(data) - {"name", "kind", "repeats", "axes", "knobs"}
    if unknown:
        raise ExperimentSpecError(f"sweeps[{index}]: unknown fields {sorted(unknown)}")
    kind = data.get("kind")
    if kind not in KINDS:
        raise ExperimentSpecError(
            f"sweeps[{index}]: kind must be one of {list(KINDS)}, got {kind!r}"
        )
    name = data.get("name", f"sweep{index}")
    if not isinstance(name, str) or not name:
        raise ExperimentSpecError(f"sweeps[{index}]: 'name' must be a non-empty string")
    repeats = data.get("repeats", 1)
    if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
        raise ExperimentSpecError(
            f"sweep {name!r}: 'repeats' must be a positive integer, got {repeats!r}"
        )

    vocabulary = AXES[kind]
    raw_axes = data.get("axes", {})
    if not isinstance(raw_axes, dict):
        raise ExperimentSpecError(f"sweep {name!r}: 'axes' must be an object")
    unknown = set(raw_axes) - set(vocabulary)
    if unknown:
        raise ExperimentSpecError(
            f"sweep {name!r} (kind {kind}): unknown axes {sorted(unknown)}; "
            f"valid axes are {sorted(vocabulary)}"
        )
    axes: List[Tuple[str, Tuple[Any, ...]]] = []
    for axis, (default, validate) in vocabulary.items():
        if axis in raw_axes:
            values = raw_axes[axis]
            if not isinstance(values, list) or not values:
                raise ExperimentSpecError(
                    f"sweep {name!r}: axis {axis!r} must be a non-empty list"
                )
            if len(set(map(repr, values))) != len(values):
                raise ExperimentSpecError(f"sweep {name!r}: axis {axis!r} has duplicate values")
            for value in values:
                validate(axis, value)
            axes.append((axis, tuple(values)))
        else:
            axes.append((axis, (default,)))
    # Fault-plan axis values must resolve against the spec's plan table.
    for axis, values in axes:
        if axis != "fault_plan":
            continue
        sentinel = BUILTIN_PLAN if kind == KIND_CHAOS else BASELINE_PLAN
        for value in values:
            if value != sentinel and value not in plan_names:
                raise ExperimentSpecError(
                    f"sweep {name!r}: fault plan {value!r} is not defined in "
                    f"'fault_plans' (and is not {sentinel!r})"
                )

    knob_vocab = KNOBS[kind]
    raw_knobs = data.get("knobs", {})
    if not isinstance(raw_knobs, dict):
        raise ExperimentSpecError(f"sweep {name!r}: 'knobs' must be an object")
    unknown = set(raw_knobs) - set(knob_vocab)
    if unknown:
        raise ExperimentSpecError(
            f"sweep {name!r} (kind {kind}): unknown knobs {sorted(unknown)}; "
            f"valid knobs are {sorted(knob_vocab)}"
        )
    knobs: Dict[str, Any] = {}
    for knob, (default, typ) in knob_vocab.items():
        value = raw_knobs.get(knob, default)
        if typ is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, typ) or isinstance(value, bool):
            raise ExperimentSpecError(
                f"sweep {name!r}: knob {knob!r} must be {typ.__name__}, got {value!r}"
            )
        knobs[knob] = value
    return Sweep(name=name, kind=kind, repeats=repeats, axes=tuple(axes), knobs=knobs)


def parse_spec(data: Any) -> ExperimentSpec:
    """Validate a decoded JSON document into an :class:`ExperimentSpec`."""
    if not isinstance(data, dict):
        raise ExperimentSpecError(f"spec must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - {"name", "description", "sweeps", "fault_plans"}
    if unknown:
        raise ExperimentSpecError(f"spec: unknown fields {sorted(unknown)}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ExperimentSpecError("spec: 'name' must be a non-empty string")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise ExperimentSpecError("spec: 'description' must be a string")

    raw_plans = data.get("fault_plans", {})
    if not isinstance(raw_plans, dict):
        raise ExperimentSpecError("spec: 'fault_plans' must be an object")
    fault_plans: Dict[str, FaultPlan] = {}
    for plan_name, plan_data in raw_plans.items():
        if plan_name in (BUILTIN_PLAN, BASELINE_PLAN):
            raise ExperimentSpecError(
                f"fault plan name {plan_name!r} shadows a reserved sentinel"
            )
        try:
            fault_plans[plan_name] = FaultPlan.from_json(json.dumps(plan_data))
        except FaultPlanError as exc:
            raise ExperimentSpecError(f"fault plan {plan_name!r}: {exc}") from None

    raw_sweeps = data.get("sweeps")
    if not isinstance(raw_sweeps, list) or not raw_sweeps:
        raise ExperimentSpecError("spec: 'sweeps' must be a non-empty list")
    sweeps = tuple(
        _parse_sweep(index, entry, tuple(fault_plans))
        for index, entry in enumerate(raw_sweeps)
    )
    names = [sweep.name for sweep in sweeps]
    if len(set(names)) != len(names):
        raise ExperimentSpecError(f"spec: duplicate sweep names in {names}")

    spec = ExperimentSpec(
        name=name,
        description=description,
        sweeps=sweeps,
        fault_plans=fault_plans,
        sha256=spec_sha256(data),
    )
    if spec.cell_count > MAX_CELLS:
        raise ExperimentSpecError(
            f"spec expands to {spec.cell_count} cells; the limit is {MAX_CELLS}"
        )
    return spec


def spec_sha256(data: Any) -> str:
    """Content hash of the spec's canonical JSON (the seed root)."""
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_spec(path: str) -> ExperimentSpec:
    """Load and validate a spec from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ExperimentSpecError(f"cannot read spec {path}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentSpecError(f"invalid spec JSON in {path}: {exc}") from None
    return parse_spec(data)


# -- expansion + seeds --------------------------------------------------------------


def expand_cells(spec: ExperimentSpec) -> List[Cell]:
    """The matrix's flat cell list, in deterministic declaration order."""
    cells: List[Cell] = []
    for sweep in spec.sweeps:
        names = [axis for axis, _ in sweep.axes]
        for combo in itertools.product(*(values for _, values in sweep.axes)):
            cells.append(
                Cell(index=len(cells), sweep=sweep, params=dict(zip(names, combo)))
            )
    return cells


def cell_seed(spec: ExperimentSpec, index: int, repeat: int = 0) -> int:
    """The deterministic seed of one (cell, repeat) run.

    Derives from the spec's content hash, so editing the spec reseeds
    the whole matrix, while re-running an unchanged spec — serially, in
    parallel, or one ``--cell`` at a time — replays identical runs.
    """
    digest = hashlib.sha256(f"{spec.sha256}:{index}:{repeat}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


def resolve_fault_plan(spec: ExperimentSpec, cell: Cell) -> Optional[FaultPlan]:
    """The cell's fault plan, or ``None`` for builtin/baseline sentinels."""
    name = cell.params.get("fault_plan")
    if name in (None, BUILTIN_PLAN, BASELINE_PLAN):
        return None
    return spec.fault_plans[name]
