"""Dependency-free statistics for the experiment matrix.

Two confidence-interval constructions, both deterministic:

* :func:`mean_confidence_interval` — a Student-t interval over a small
  set of repeat-level statistics (the classic treatment for "n repeat
  runs of the same cell"; critical values are tabulated, no scipy).
* :func:`bootstrap_median_interval` — a seeded percentile bootstrap of
  the median over one pooled sample, for cells that only ran once.

Quartile pooling reuses the P2 streaming sketches of
:mod:`repro.obs.quantiles` (the same estimator the metrics registry's
histograms run), so a cell's reported p25/p50/p75 is computed by the
observability stack's own machinery rather than a second ad-hoc path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.quantiles import QuantileSketch
from repro.simcore.rng import Rng, quantiles as exact_quantiles

#: The quartile points every cell reports (paper tables use p25/p50/p75).
QUARTILE_POINTS = (0.25, 0.5, 0.75)

#: Two-sided Student-t critical values by degrees of freedom (1..30);
#: beyond 30 the normal limit is used.  Rows: confidence level.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
        1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
        1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
        3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
        2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ),
}

_NORMAL_LIMIT = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom."""
    if confidence not in _T_TABLE:
        raise ValueError(
            f"confidence must be one of {sorted(_T_TABLE)}, got {confidence}"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE[confidence]
    if df <= len(table):
        return table[df - 1]
    return _NORMAL_LIMIT[confidence]


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Optional[Tuple[float, float, float]]:
    """``(mean, lo, hi)`` t-interval for the mean of ``values``.

    Returns ``None`` when fewer than two values exist (no dispersion to
    estimate).  A zero-variance sample yields a zero-width interval.
    """
    n = len(values)
    if n < 2:
        return None
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical(n - 1, confidence) * (variance / n) ** 0.5
    return (mean, mean - half, mean + half)


def bootstrap_median_interval(
    samples: Sequence[float],
    seed: int,
    resamples: int = 200,
    confidence: float = 0.95,
) -> Optional[Tuple[float, float, float]]:
    """``(median, lo, hi)`` percentile-bootstrap interval of the median.

    Deterministic given ``seed`` (resampling runs on a private
    :class:`~repro.simcore.rng.Rng`).  Returns ``None`` for samples of
    fewer than two observations.
    """
    n = len(samples)
    if n < 2:
        return None
    if confidence not in _NORMAL_LIMIT:
        raise ValueError(
            f"confidence must be one of {sorted(_NORMAL_LIMIT)}, got {confidence}"
        )
    rng = Rng(seed=seed, name="bootstrap")
    medians: List[float] = []
    for _ in range(resamples):
        resample = [samples[rng.randint(0, n - 1)] for _ in range(n)]
        medians.append(exact_quantiles(resample, [0.5])[0])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = exact_quantiles(medians, [alpha, 1.0 - alpha])
    return (exact_quantiles(list(samples), [0.5])[0], lo, hi)


def pooled_quartiles(samples: Sequence[float]) -> Optional[Tuple[float, float, float]]:
    """p25/p50/p75 of a pooled sample via the P2 streaming sketch.

    Mirrors what a registry histogram would report for the same stream
    (exact below five observations, five-marker P2 estimate beyond).
    The three independently-tracked markers can cross by a hair on
    tightly clustered samples, so the estimates are monotone-rearranged
    (sorted) before being returned.  Returns ``None`` for an empty
    sample.
    """
    if not samples:
        return None
    sketch = QuantileSketch(points=QUARTILE_POINTS)
    for value in samples:
        sketch.observe(float(value))
    values = sketch.values()
    return tuple(sorted(values[q] for q in QUARTILE_POINTS))
