"""Declarative experiment matrices (ROADMAP: topology x scale x fault matrix).

One JSON spec sweeps the reproduction's axes — ``shards`` x
``shard_strategy`` x ``corpus_size`` x ``fault_plan`` x
``delivery_mode`` x ``poll_dispatch`` — and expands into a flat list of
*cells*.  Every cell runs deterministically (its seed derives from the
spec's content hash and the cell index, never from the host), emits a
per-cell metrics snapshot, and folds into an aggregated results table
with confidence intervals.  ``repro experiments SPEC.json`` is the CLI;
``make experiments-smoke`` gates CI on the committed
``EXPERIMENTS/matrix_smoke.json`` being byte-identical run over run.

Modules
-------

:mod:`repro.experiments.spec`
    Spec parsing, validation, cell expansion, and seed derivation.
:mod:`repro.experiments.runner`
    Per-cell execution (chaos / t2a / fleet kinds) and matrix
    orchestration with subprocess-isolated cells.
:mod:`repro.experiments.stats`
    Dependency-free t-intervals and bootstrap confidence intervals,
    plus P2-quantile pooling (reusing :mod:`repro.obs.quantiles`).
:mod:`repro.experiments.results`
    Cell/matrix result records and their deterministic JSON form.
"""

from repro.experiments.spec import (
    Cell,
    ExperimentSpec,
    ExperimentSpecError,
    Sweep,
    cell_seed,
    expand_cells,
    load_spec,
)
from repro.experiments.results import (
    CellResult,
    MatrixResults,
    RepeatOutcome,
)
from repro.experiments.runner import run_cell, run_matrix
from repro.experiments.stats import (
    bootstrap_median_interval,
    mean_confidence_interval,
    pooled_quartiles,
)

__all__ = [
    "Cell",
    "CellResult",
    "ExperimentSpec",
    "ExperimentSpecError",
    "MatrixResults",
    "RepeatOutcome",
    "Sweep",
    "bootstrap_median_interval",
    "cell_seed",
    "expand_cells",
    "load_spec",
    "mean_confidence_interval",
    "pooled_quartiles",
    "run_cell",
    "run_matrix",
]
