"""Official vendor partner services (Figure 1, ❻).

Each official service is wired the way the vendor's production cloud
reaches its devices or data:

* **Philips Hue** talks directly to the home Hue hub (the paper notes the
  official service uses a proprietary hub protocol; we use the hub's
  subscription + REST interface over the WAN path Lamp-Hub-Gateway-Cloud).
* **WeMo** subscribes to the switch over its UPnP eventing.
* **Alexa** consumes parsed intents pushed by the Alexa cloud, and is
  realtime-capable: it hints the engine on every new trigger event (which
  the engine honours for Alexa — the cause of A5-A7's low latency).
* **Gmail / Sheets / Drive / Weather** poll or call their web apps'
  APIs directly — §2.2's "polling approach for web apps".
* **Nest** and **SmartThings** receive device/hub push over their own
  transports.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.iot.nest import NEST_PROTOCOL
from repro.iot.wemo import UPNP
from repro.net.address import Address
from repro.net.http import HttpRequest
from repro.net.message import Message
from repro.services.endpoints import (
    ActionEndpoint,
    QueryEndpoint,
    TriggerEndpoint,
    field_channel,
    static_channels,
)
from repro.services.partner import PartnerService
from repro.simcore.process import Process, Timeout
from repro.simcore.trace import Trace


class OfficialHueService(PartnerService):
    """Philips Hue: lighting actions (Table 3's top action service)."""

    def __init__(self, address: Address, hub: Address, trace: Optional[Trace] = None) -> None:
        super().__init__(address, slug="philips_hue", trace=trace, service_time=0.02)
        self.hub = hub
        self.add_trigger(
            TriggerEndpoint(
                slug="light_turned_on",
                name="Light turned on",
                matcher=lambda event, fields: event.get("on") is True
                and (not fields.get("lamp_id") or fields["lamp_id"] == event.get("lamp_id")),
                ingredients=lambda event: {"lamp_id": event.get("lamp_id", "")},
                reads_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="light_turned_off",
                name="Light turned off",
                matcher=lambda event, fields: event.get("on") is False
                and (not fields.get("lamp_id") or fields["lamp_id"] == event.get("lamp_id")),
                ingredients=lambda event: {"lamp_id": event.get("lamp_id", "")},
                reads_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="turn_on_lights",
                name="Turn on lights",
                executor=lambda fields: self._command(fields, {"on": True}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="turn_off_lights",
                name="Turn off lights",
                executor=lambda fields: self._command(fields, {"on": False}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="change_color",
                name="Change color",
                executor=lambda fields: self._command(
                    fields, {"on": True, "color": fields.get("color", "white")}
                ),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="blink_lights",
                name="Blink lights",
                executor=lambda fields: self._command(fields, {"effect": "blink"}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="turn_on_color_loop",
                name="Turn on color loop",
                executor=lambda fields: self._command(fields, {"on": True, "effect": "colorloop"}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_route("POST", "/events/hue", self._handle_hub_event)

    def connect(self) -> None:
        """Subscribe to the home hub's event push (call once nodes are wired)."""
        self.post(self.hub, "/api/subscribe", body={"callback": self.address.host})

    def _command(self, fields: Dict[str, Any], command: Dict[str, Any]) -> Dict[str, Any]:
        lamp_id = fields.get("lamp_id", "")
        if not lamp_id:
            raise ValueError("hue action requires a lamp_id field")
        self.request(self.hub, "PUT", f"/api/lights/{lamp_id}/state", body=command)
        return {"lamp_id": lamp_id, "command": command}

    def _handle_hub_event(self, request: HttpRequest):
        body = request.body or {}
        state = body.get("state", {})
        event = {"lamp_id": body.get("device_id", ""), "on": state.get("on")}
        for slug in ("light_turned_on", "light_turned_off"):
            self.ingest_event(slug, event)
        return {"ok": True}


class OfficialWemoService(PartnerService):
    """Belkin WeMo: switch trigger/action over UPnP eventing."""

    def __init__(self, address: Address, trace: Optional[Trace] = None) -> None:
        super().__init__(address, slug="wemo", trace=trace, service_time=0.02)
        self._switches: Dict[str, Address] = {}
        self.add_trigger(
            TriggerEndpoint(
                slug="switch_activated",
                name="Switch turned on",
                matcher=lambda event, fields: event.get("on") is True
                and (not fields.get("device_id") or fields["device_id"] == event.get("device_id")),
                ingredients=lambda event: {"device_id": event.get("device_id", "")},
                reads_channels=field_channel("wemo", "device_id"),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="switch_deactivated",
                name="Switch turned off",
                matcher=lambda event, fields: event.get("on") is False
                and (not fields.get("device_id") or fields["device_id"] == event.get("device_id")),
                ingredients=lambda event: {"device_id": event.get("device_id", "")},
                reads_channels=field_channel("wemo", "device_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="activate_switch",
                name="Turn switch on",
                executor=lambda fields: self._set_switch(fields, True),
                writes_channels=field_channel("wemo", "device_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="deactivate_switch",
                name="Turn switch off",
                executor=lambda fields: self._set_switch(fields, False),
                writes_channels=field_channel("wemo", "device_id"),
            )
        )

    def connect_switch(self, device_id: str, switch: Address) -> None:
        """UPnP-subscribe to one switch."""
        self._switches[device_id] = switch
        self.send(switch, UPNP, {"type": "subscribe", "callback": self.address.host}, size_bytes=64)

    def _set_switch(self, fields: Dict[str, Any], on: bool) -> Dict[str, Any]:
        device_id = fields.get("device_id", "")
        switch = self._switches.get(device_id)
        if switch is None:
            raise ValueError(f"wemo switch {device_id!r} is not connected")
        self.send(switch, UPNP, {"type": "set_binary_state", "on": on}, size_bytes=64)
        return {"device_id": device_id, "on": on}

    def on_non_http_message(self, message: Message) -> None:
        if message.protocol != UPNP or not message.payload.get("event"):
            return
        payload = message.payload
        event = {
            "device_id": payload.get("device_id", ""),
            "on": payload.get("state", {}).get("on"),
        }
        for slug in ("switch_activated", "switch_deactivated"):
            self.ingest_event(slug, event)


class OfficialAlexaService(PartnerService):
    """Amazon Alexa: the top IoT trigger service (Table 3), realtime-capable."""

    def __init__(self, address: Address, alexa_cloud: Address, trace: Optional[Trace] = None) -> None:
        super().__init__(address, slug="amazon_alexa", trace=trace, realtime=True, service_time=0.02)
        self.alexa_cloud = alexa_cloud
        self.add_trigger(
            TriggerEndpoint(
                slug="say_phrase",
                name="Say a specific phrase",
                matcher=lambda event, fields: event.get("intent") == "say_phrase"
                and (not fields.get("phrase") or fields["phrase"] == event.get("phrase")),
                ingredients=lambda event: {"phrase": event.get("phrase", "")},
                reads_channels=static_channels(("alexa", "voice")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="todo_item_added",
                name="Item added to your to-do list",
                matcher=lambda event, fields: event.get("intent") == "todo_item_added",
                ingredients=lambda event: {"item": event.get("item", "")},
                reads_channels=static_channels(("alexa", "todo")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="shopping_item_added",
                name="Item added to your shopping list",
                matcher=lambda event, fields: event.get("intent") == "shopping_item_added",
                ingredients=lambda event: {"item": event.get("item", "")},
                reads_channels=static_channels(("alexa", "shopping")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="shopping_list_asked",
                name="Ask what's on your shopping list",
                matcher=lambda event, fields: event.get("intent") == "shopping_list_asked",
                ingredients=lambda event: {},
                reads_channels=static_channels(("alexa", "shopping")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="song_played",
                name="New song played",
                matcher=lambda event, fields: event.get("intent") == "song_played",
                ingredients=lambda event: {"song": event.get("song", "")},
                reads_channels=static_channels(("alexa", "music")),
            )
        )
        self.add_route("POST", "/events/alexa", self._handle_intent)

    def connect(self) -> None:
        """Register with the Alexa cloud as an intent consumer."""
        self.post(self.alexa_cloud, "/v1/consumers", body={"callback": self.address.host})

    def _handle_intent(self, request: HttpRequest):
        intent = request.body or {}
        for slug in self.trigger_slugs:
            self.ingest_event(slug, intent)
        return {"ok": True}


class OfficialGmailService(PartnerService):
    """Gmail: new-email/new-attachment triggers (polled) + send-email action."""

    def __init__(
        self,
        address: Address,
        gmail: Address,
        user_email: str,
        poll_interval: float = 10.0,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(address, slug="gmail", trace=trace, service_time=0.02)
        self.gmail = gmail
        self.user_email = user_email
        self.poll_interval = poll_interval
        self._last_msg_id = 0
        self._poll_process: Optional[Process] = None
        self.add_trigger(
            TriggerEndpoint(
                slug="new_email",
                name="Any new email in inbox",
                ingredients=lambda event: {
                    "subject": event.get("subject", ""),
                    "from": event.get("from", ""),
                    "body": event.get("body", ""),
                },
                reads_channels=static_channels(("gmail_inbox", "me")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="new_attachment",
                name="New email with attachment",
                matcher=lambda event, fields: bool(event.get("attachments")),
                ingredients=lambda event: {
                    "subject": event.get("subject", ""),
                    "from": event.get("from", ""),
                    "attachments": list(event.get("attachments", [])),
                    "attachment": (event.get("attachments") or [""])[0],
                },
                reads_channels=static_channels(("gmail_inbox", "me")),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="send_email",
                name="Send an email",
                executor=self._send_email,
                writes_channels=static_channels(("gmail_inbox", "me")),
            )
        )

    def start_polling(self) -> Process:
        """Spawn the service's internal mailbox poll loop (§2.2's app polling)."""
        if self._poll_process is not None and self._poll_process.alive:
            return self._poll_process

        def loop():
            while True:
                self.get(
                    self.gmail,
                    "/api/messages",
                    body={"user": self.user_email, "since_id": self._last_msg_id},
                    on_response=self._on_mailbox,
                )
                yield Timeout(self.poll_interval)

        self._poll_process = Process(self.sim, loop(), name=f"{self.slug}.mailpoll")
        return self._poll_process

    def _on_mailbox(self, response) -> None:
        if not response.ok:
            return
        for message in (response.body or {}).get("messages", []):
            self._last_msg_id = max(self._last_msg_id, message["msg_id"])
            self.ingest_event("new_email", message)
            if message.get("attachments"):
                self.ingest_event("new_attachment", message)

    def _send_email(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        self.post(
            self.gmail,
            "/api/send",
            body={
                "to": fields.get("to", self.user_email),
                "from": self.user_email,
                "subject": fields.get("subject", ""),
                "body": fields.get("body", ""),
            },
        )
        return {"to": fields.get("to", self.user_email)}


class OfficialSheetsService(PartnerService):
    """Google Sheets: add-row action + new-row trigger."""

    def __init__(
        self,
        address: Address,
        sheets: Address,
        poll_interval: float = 15.0,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(address, slug="google_sheets", trace=trace, service_time=0.02)
        self.sheets = sheets
        self.poll_interval = poll_interval
        self._last_activity_id = 0
        self._poll_process: Optional[Process] = None
        self.add_trigger(
            TriggerEndpoint(
                slug="new_row",
                name="New row added to spreadsheet",
                matcher=lambda event, fields: not fields.get("sheet")
                or fields["sheet"] == event.get("sheet"),
                ingredients=lambda event: {"sheet": event.get("sheet", ""), "row": event.get("row", 0)},
                reads_channels=field_channel("sheets", "sheet"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="add_row",
                name="Add row to spreadsheet",
                executor=self._add_row,
                writes_channels=field_channel("sheets", "sheet"),
            )
        )
        self.add_query(
            QueryEndpoint(
                slug="row_count",
                name="Number of rows in spreadsheet",
                executor=self._row_count,
                reads_channels=field_channel("sheets", "sheet"),
            )
        )
        self._row_counts: Dict[str, int] = {}

    def _row_count(self, fields: Dict[str, Any]) -> Any:
        """Rows currently in a sheet, from the mirrored activity stream.

        The service tracks row counts from the ``row_added`` activity it
        already polls, so the query answers from local state — the engine
        sees a single round trip.
        """
        sheet = str(fields.get("sheet", "default"))
        return [{"sheet": sheet, "rows": self._row_counts.get(sheet, 0)}]

    def start_polling(self) -> Process:
        """Spawn the spreadsheet-activity poll loop."""
        if self._poll_process is not None and self._poll_process.alive:
            return self._poll_process

        def loop():
            while True:
                # The sheets app's activity log is global; track a cursor.
                self.get(
                    self.sheets,
                    "/api/activity",
                    body={"since_id": self._last_activity_id},
                    on_response=self._on_activity,
                )
                yield Timeout(self.poll_interval)

        self._poll_process = Process(self.sim, loop(), name=f"{self.slug}.activitypoll")
        return self._poll_process

    def _on_activity(self, response) -> None:
        if not response.ok:
            return
        for record in (response.body or {}).get("activity", []):
            self._last_activity_id = max(self._last_activity_id, record["id"])
            if record.get("activity") == "row_added":
                sheet = str(record.get("sheet", "default"))
                self._row_counts[sheet] = max(
                    self._row_counts.get(sheet, 0), int(record.get("row", 0))
                )
                self.ingest_event("new_row", record)

    def _add_row(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        sheet = fields.get("sheet", "default")
        cells = fields.get("cells")
        if not isinstance(cells, list):
            cells = [fields.get("row", "")]
        self.post(self.sheets, f"/api/sheets/{sheet}/rows", body={"cells": cells})
        return {"sheet": sheet}


class OfficialDriveService(PartnerService):
    """Google Drive: upload-file action (applet A4's sink)."""

    def __init__(self, address: Address, drive: Address, trace: Optional[Trace] = None) -> None:
        super().__init__(address, slug="google_drive", trace=trace, service_time=0.02)
        self.drive = drive
        self.add_action(
            ActionEndpoint(
                slug="upload_file",
                name="Upload file from URL",
                executor=self._upload,
                writes_channels=field_channel("drive", "user"),
            )
        )

    def _upload(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        self.post(
            self.drive,
            "/api/upload",
            body={
                "user": fields.get("user", "me"),
                "name": fields.get("name", "attachment"),
                "folder": fields.get("folder", "/ifttt"),
            },
        )
        return {"name": fields.get("name", "attachment")}


class OfficialNestService(PartnerService):
    """Nest Thermostat: temperature triggers + set-temperature action."""

    def __init__(self, address: Address, trace: Optional[Trace] = None) -> None:
        super().__init__(address, slug="nest_thermostat", trace=trace, service_time=0.02)
        self._thermostats: Dict[str, Address] = {}
        self.add_trigger(
            TriggerEndpoint(
                slug="temperature_rises_above",
                name="Temperature rises above",
                matcher=lambda event, fields: event.get("key") == "ambient_c"
                and float(event.get("value", 0.0)) > float(fields.get("threshold_c", 1e9)),
                ingredients=lambda event: {"temperature_c": event.get("value")},
                reads_channels=field_channel("nest", "device_id"),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="temperature_drops_below",
                name="Temperature drops below",
                matcher=lambda event, fields: event.get("key") == "ambient_c"
                and float(event.get("value", 1e9)) < float(fields.get("threshold_c", -1e9)),
                ingredients=lambda event: {"temperature_c": event.get("value")},
                reads_channels=field_channel("nest", "device_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="set_temperature",
                name="Set temperature",
                executor=self._set_temperature,
                writes_channels=field_channel("nest", "device_id"),
            )
        )

    def connect_thermostat(self, device_id: str, thermostat: Address) -> None:
        """Track one thermostat's cloud session (the device pushes to us)."""
        self._thermostats[device_id] = thermostat

    def _set_temperature(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        device_id = fields.get("device_id", "")
        thermostat = self._thermostats.get(device_id)
        if thermostat is None:
            raise ValueError(f"nest thermostat {device_id!r} is not connected")
        self.send(
            thermostat,
            NEST_PROTOCOL,
            {"type": "set_target", "target_c": float(fields.get("target_c", 21.0))},
            size_bytes=64,
        )
        return {"device_id": device_id, "target_c": fields.get("target_c")}

    def on_non_http_message(self, message: Message) -> None:
        if message.protocol != NEST_PROTOCOL or not message.payload.get("event"):
            return
        payload = message.payload
        data = payload.get("data", {})
        event = {
            "device_id": payload.get("device_id", ""),
            "key": data.get("key"),
            "value": data.get("value"),
        }
        for slug in ("temperature_rises_above", "temperature_drops_below"):
            self.ingest_event(slug, event)


class OfficialSmartThingsService(PartnerService):
    """SmartThings: generic hub device triggers and control actions."""

    def __init__(self, address: Address, hub: Address, trace: Optional[Trace] = None) -> None:
        super().__init__(address, slug="smartthings", trace=trace, service_time=0.02)
        self.hub = hub
        self.add_trigger(
            TriggerEndpoint(
                slug="device_state_changed",
                name="Any device state changed",
                matcher=lambda event, fields: not fields.get("device_id")
                or fields["device_id"] == event.get("device_id"),
                ingredients=lambda event: {
                    "device_id": event.get("device_id", ""),
                    "key": event.get("key", ""),
                    "value": event.get("value"),
                },
                reads_channels=field_channel("smartthings", "device_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="control_device",
                name="Control a device",
                executor=self._control,
                writes_channels=field_channel("smartthings", "device_id"),
            )
        )
        self.add_route("POST", "/events/smartthings", self._handle_hub_event)

    def connect(self) -> None:
        """Subscribe to the hub's event push."""
        self.post(self.hub, "/api/subscribe", body={"callback": self.address.host})

    def _control(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        device_id = fields.get("device_id", "")
        self.post(self.hub, f"/api/devices/{device_id}/command", body={"value": fields.get("value")})
        return {"device_id": device_id}

    def _handle_hub_event(self, request: HttpRequest):
        body = request.body or {}
        data = body.get("data", {})
        event = {
            "device_id": body.get("device_id", ""),
            "key": data.get("key", ""),
            "value": data.get("value"),
        }
        self.ingest_event("device_state_changed", event)
        return {"ok": True}


class OfficialWeatherService(PartnerService):
    """Weather: condition-change triggers, polled from the weather app."""

    def __init__(
        self,
        address: Address,
        weather: Address,
        location: str = "home",
        poll_interval: float = 60.0,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(address, slug="weather", trace=trace, service_time=0.02)
        self.weather = weather
        self.location = location
        self.poll_interval = poll_interval
        self._last_change_id = 0
        self._poll_process: Optional[Process] = None
        self.add_trigger(
            TriggerEndpoint(
                slug="rain_starts",
                name="It starts raining",
                matcher=lambda event, fields: event.get("condition") == "rain",
                ingredients=lambda event: {"location": event.get("location", "")},
                reads_channels=static_channels(("weather", "conditions")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="condition_changes",
                name="Current condition changes",
                ingredients=lambda event: {
                    "location": event.get("location", ""),
                    "condition": event.get("condition", ""),
                },
                reads_channels=static_channels(("weather", "conditions")),
            )
        )

        self.add_query(
            QueryEndpoint(
                slug="current_conditions",
                name="Current weather conditions",
                executor=self._current_conditions,
                reads_channels=static_channels(("weather", "conditions")),
            )
        )
        self._last_condition: Dict[str, str] = {}

    def _current_conditions(self, fields: Dict[str, Any]) -> Any:
        location = str(fields.get("location", self.location))
        return [{"location": location,
                 "condition": self._last_condition.get(location, "unknown")}]

    def start_polling(self) -> Process:
        """Spawn the weather-change poll loop."""
        if self._poll_process is not None and self._poll_process.alive:
            return self._poll_process

        def loop():
            while True:
                self.get(
                    self.weather,
                    "/api/changes",
                    body={"location": self.location, "since_id": self._last_change_id},
                    on_response=self._on_changes,
                )
                yield Timeout(self.poll_interval)

        self._poll_process = Process(self.sim, loop(), name=f"{self.slug}.weatherpoll")
        return self._poll_process

    def _on_changes(self, response) -> None:
        if not response.ok:
            return
        for record in (response.body or {}).get("changes", []):
            self._last_change_id = max(self._last_change_id, record["id"])
            self._last_condition[str(record.get("location", ""))] = str(
                record.get("condition", "unknown")
            )
            for slug in ("rain_starts", "condition_changes"):
                self.ingest_event(slug, record)
