"""IFTTT partner-service framework (Figure 1, ❺ and ❻).

A *partner service* abstracts a device vendor's or web app's
functionality behind IFTTT's uniform HTTP interface: trigger endpoints
(``POST /ifttt/v1/triggers/<slug>``) the engine polls, and action
endpoints (``POST /ifttt/v1/actions/<slug>``) the engine invokes.  This
package provides the generic framework — endpoint declarations, per-
trigger-identity event buffering, authentication, realtime hints — plus
concrete services:

* :mod:`repro.services.official` — the official vendor services (Hue,
  WeMo, Alexa, SmartThings, Nest, Gmail, Drive, Sheets, Weather), wired
  the way each vendor's cloud actually reaches its devices.
* :mod:`repro.services.custom` — "Our Service" ❺: the paper's
  self-implemented partner service that reaches home IoT devices through
  the local proxy (push) and web apps by polling, used for experiments
  E1/E2/E3.
"""

from repro.services.buffer import TriggerEvent, TriggerBuffer
from repro.services.endpoints import TriggerEndpoint, ActionEndpoint, QueryEndpoint, Channel
from repro.services.partner import BatchActionRequest, PartnerService, AuthError
from repro.services.custom import CustomService
from repro.services.official import (
    OfficialHueService,
    OfficialWemoService,
    OfficialAlexaService,
    OfficialGmailService,
    OfficialSheetsService,
    OfficialDriveService,
    OfficialNestService,
    OfficialSmartThingsService,
    OfficialWeatherService,
)

__all__ = [
    "TriggerEvent",
    "TriggerBuffer",
    "TriggerEndpoint",
    "ActionEndpoint",
    "QueryEndpoint",
    "Channel",
    "PartnerService",
    "BatchActionRequest",
    "AuthError",
    "CustomService",
    "OfficialHueService",
    "OfficialWemoService",
    "OfficialAlexaService",
    "OfficialGmailService",
    "OfficialSheetsService",
    "OfficialDriveService",
    "OfficialNestService",
    "OfficialSmartThingsService",
    "OfficialWeatherService",
]
