"""Trigger and action endpoint declarations.

An endpoint couples a protocol slug (the path component under
``/ifttt/v1/triggers/`` or ``/ifttt/v1/actions/``) with the service-side
behaviour: for triggers, how raw upstream events map onto trigger
identities (field matching) and ingredients; for actions, the executor
that drives the device or web app.

Endpoints also declare the *channels* they read and write — an abstract
resource key like ``("sheets", "songs")`` or ``("hue", "lamp1")``.
Channels are invisible to the real IFTTT engine (which is precisely why
it cannot detect loops, §4); our static loop analyzer
(:mod:`repro.engine.loops`) uses them to reproduce the explicit- and
implicit-loop findings and to ablate the paper's §6 recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Tuple

#: An abstract resource affected by an action or observed by a trigger.
Channel = Tuple[str, str]

Matcher = Callable[[Dict[str, Any], Dict[str, Any]], bool]
IngredientExtractor = Callable[[Dict[str, Any]], Dict[str, Any]]
Executor = Callable[[Dict[str, Any]], Any]
ChannelFn = Callable[[Dict[str, Any]], FrozenSet[Channel]]


def match_all(event: Dict[str, Any], fields: Dict[str, Any]) -> bool:
    """Default matcher: every upstream event matches every identity."""
    return True


def match_fields_subset(event: Dict[str, Any], fields: Dict[str, Any]) -> bool:
    """Matcher requiring every trigger field to equal the event's value.

    Fields absent from the event are treated as non-matching, so an applet
    with ``{"phrase": "good night"}`` only fires on that exact phrase.
    """
    return all(event.get(key) == value for key, value in fields.items())


def _no_channels(fields: Dict[str, Any]) -> FrozenSet[Channel]:
    return frozenset()


def _identity_ingredients(event: Dict[str, Any]) -> Dict[str, Any]:
    return dict(event)


def _no_op_executor(fields: Dict[str, Any]) -> None:
    return None


def _empty_rows(fields: Dict[str, Any]) -> List[Dict[str, Any]]:
    return []


@dataclass
class TriggerEndpoint:
    """A trigger exposed by a partner service.

    Attributes
    ----------
    slug:
        Path component (``/ifttt/v1/triggers/<slug>``).
    name:
        Human-readable trigger name (as shown on ifttt.com).
    matcher:
        Predicate deciding whether an upstream event belongs to a trigger
        identity, given the identity's trigger fields.
    ingredients:
        Maps the raw upstream event to the ingredient dict embedded in the
        trigger event.
    reads_channels:
        Channels whose mutation can fire this trigger, as a function of
        the trigger fields (for loop analysis).
    """

    slug: str
    name: str
    matcher: Matcher = match_all
    ingredients: IngredientExtractor = _identity_ingredients
    reads_channels: ChannelFn = _no_channels

    def __post_init__(self) -> None:
        if not self.slug or "/" in self.slug:
            raise ValueError(f"invalid trigger slug {self.slug!r}")


@dataclass
class ActionEndpoint:
    """An action exposed by a partner service.

    Attributes
    ----------
    slug, name:
        As for :class:`TriggerEndpoint`.
    executor:
        Called with the resolved action fields; drives the device/web app.
        Its return value becomes the action response body.
    writes_channels:
        Channels this action mutates, as a function of the action fields.
    """

    slug: str
    name: str
    executor: Executor = _no_op_executor
    writes_channels: ChannelFn = _no_channels

    def __post_init__(self) -> None:
        if not self.slug or "/" in self.slug:
            raise ValueError(f"invalid action slug {self.slug!r}")


@dataclass
class QueryEndpoint:
    """A query exposed by a partner service (the §6 "queries" feature).

    Queries are side-effect-free reads the engine performs while
    executing an applet, to feed its filter condition — e.g. "how many
    rows does the spreadsheet have", "is anyone home".  The executor
    returns a list of row dicts.
    """

    slug: str
    name: str
    executor: Callable[[Dict[str, Any]], Any] = _empty_rows
    reads_channels: ChannelFn = _no_channels

    def __post_init__(self) -> None:
        if not self.slug or "/" in self.slug:
            raise ValueError(f"invalid query slug {self.slug!r}")


def static_channels(*channels: Channel) -> ChannelFn:
    """Channel function ignoring fields: always the given channels."""
    fixed = frozenset(channels)

    def fn(fields: Dict[str, Any]) -> FrozenSet[Channel]:
        return fixed

    return fn


def field_channel(kind: str, field_name: str, default: str = "*") -> ChannelFn:
    """Channel function keyed by one field value.

    ``field_channel("sheets", "sheet")`` maps fields ``{"sheet": "songs"}``
    to the channel ``("sheets", "songs")``.
    """

    def fn(fields: Dict[str, Any]) -> FrozenSet[Channel]:
        return frozenset({(kind, str(fields.get(field_name, default)))})

    return fn
