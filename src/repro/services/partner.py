"""The generic IFTTT partner service.

Implements the service side of the IFTTT web-based protocol observed in
§2.2:

* the service exposes a base URL; each trigger or action has a unique URL
  under it (``/ifttt/v1/triggers/<slug>``, ``/ifttt/v1/actions/<slug>``);
* IFTTT issues a per-service **key** at publication, embedded in every
  message for authentication, alongside the user's OAuth2 bearer token and
  a random request id;
* polls carry a ``trigger_identity``, the ``triggerFields``, and a
  ``limit`` (50 by default); the response returns buffered trigger events;
* services supporting the **realtime API** proactively notify the engine
  when a trigger event occurs (the engine still polls to fetch it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.address import Address
from repro.net.http import HttpError, HttpNode, HttpRequest
from repro.obs.metrics import COUNT_BUCKETS
from repro.services.buffer import TriggerBuffer, TriggerEvent
from repro.services.endpoints import ActionEndpoint, QueryEndpoint, TriggerEndpoint
from repro.simcore.trace import Trace

TRIGGER_PATH = "/ifttt/v1/triggers/"
ACTION_PATH = "/ifttt/v1/actions/"
QUERY_PATH = "/ifttt/v1/queries/"
STATUS_PATH = "/ifttt/v1/status"
REALTIME_NOTIFY_PATH = "/ifttt/v1/webhooks/service/notify"
#: Push-first delivery (opt-in per-service contract): the service POSTs
#: trigger-event *payloads* here, not mere identity hints.  The engine
#: registers the route only when ``EngineConfig.push_policy`` is set.
PUSH_NOTIFY_PATH = "/ifttt/v1/webhooks/push"
#: Batched action dispatch (dead-letter replay catch-up).  Longest-prefix
#: routing keeps it from shadowing single actions under ``ACTION_PATH``.
BATCH_ACTION_PATH = "/ifttt/v1/actions/batch"


@dataclass(frozen=True)
class BatchActionRequest:
    """Several same-service action executions coalesced into one request.

    The engine's replay pass uses this to flatten the post-heal catch-up
    burst: instead of one HTTP request per dead-lettered action, up to
    ``ReplayPolicy.batch_limit`` of them (the paper's k = 50 batching
    default) travel together.  Each entry is one would-be single-action
    body: ``{"action_slug", "actionFields", "user"}``.
    """

    entries: Tuple[Dict[str, Any], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a BatchActionRequest needs at least one entry")
        for entry in self.entries:
            if "action_slug" not in entry:
                raise ValueError(f"batch entry missing action_slug: {entry!r}")

    def __len__(self) -> int:
        return len(self.entries)

    def to_body(self) -> Dict[str, Any]:
        """The wire body (``POST /ifttt/v1/actions/batch``)."""
        return {"actions": [dict(entry) for entry in self.entries]}

    @staticmethod
    def from_body(body: Optional[Dict[str, Any]]) -> "BatchActionRequest":
        """Parse a wire body; raises ``ValueError`` when malformed."""
        entries = tuple(dict(entry) for entry in (body or {}).get("actions", []))
        return BatchActionRequest(entries=entries)


class AuthError(RuntimeError):
    """Service-side authentication failure."""


class PartnerService(HttpNode):
    """A partner service: trigger/action endpoints behind IFTTT auth.

    Parameters
    ----------
    address:
        The service server's network address (its "base URL").
    slug:
        The service's identity on the platform (e.g. ``"philips_hue"``).
    trace:
        Shared experiment trace (optional).
    realtime:
        Whether the service sends realtime hints to the engine on each
        new trigger event.
    push:
        Whether the service offers the push-first contract: when the
        publishing engine accepts it (``EngineConfig.push_policy`` set),
        each new trigger event is POSTed to the engine *with its
        payload* (``PUSH_NOTIFY_PATH``) instead of a realtime hint.
        The capability is a declaration; :attr:`push_contract` records
        the negotiated outcome.
    service_time:
        Server-side processing delay per HTTP request.
    """

    def __init__(
        self,
        address: Address,
        slug: str,
        trace: Optional[Trace] = None,
        realtime: bool = False,
        push: bool = False,
        service_time: float = 0.01,
        buffer_capacity: int = 500,
    ) -> None:
        super().__init__(address, service_time=service_time)
        self.slug = slug
        self.trace = trace
        self.realtime = realtime
        self.push = push
        #: Set at publication when the engine accepts the push contract.
        self.push_contract = False
        self.buffer_capacity = buffer_capacity
        self.service_key: Optional[str] = None
        #: Every engine-issued key this service accepts.  A standalone
        #: engine issues exactly one; a :class:`ShardedEngine` publishes
        #: the service on every shard, each issuing its own key, and the
        #: service must authenticate requests from any of them.
        self.service_keys: Set[str] = set()
        self.engine_address: Optional[Address] = None
        self._triggers: Dict[str, TriggerEndpoint] = {}
        self._actions: Dict[str, ActionEndpoint] = {}
        self._queries: Dict[str, QueryEndpoint] = {}
        #: trigger identity -> (trigger slug, fields, buffer)
        self._identities: Dict[str, Tuple[str, Dict[str, Any], TriggerBuffer]] = {}
        self._valid_tokens: Set[str] = set()
        self.polls_served = 0
        self.actions_executed = 0
        self.batch_requests_served = 0
        self.batch_actions_executed = 0
        self.events_ingested = 0
        self.realtime_hints_sent = 0
        self.push_notifications_sent = 0
        self.auth_failures = 0
        self.outage = False
        self.requests_rejected_during_outage = 0
        #: Optional :class:`~repro.faults.injector.ServiceFaultState`
        #: installed by a fault injector; ``None`` keeps the request path
        #: free of fault checks.
        self.faults = None
        self.requests_rejected_by_faults = 0
        self.add_route("POST", TRIGGER_PATH, self._handle_trigger_poll)
        self.add_route("POST", ACTION_PATH, self._handle_action)
        self.add_route("POST", BATCH_ACTION_PATH, self._handle_batch_action)
        self.add_route("POST", QUERY_PATH, self._handle_query)
        self.add_route("GET", STATUS_PATH, self._handle_status)

    # -- endpoint declaration ----------------------------------------------------

    def add_trigger(self, endpoint: TriggerEndpoint) -> TriggerEndpoint:
        """Expose a trigger endpoint."""
        if endpoint.slug in self._triggers:
            raise ValueError(f"duplicate trigger slug {endpoint.slug!r} on {self.slug}")
        self._triggers[endpoint.slug] = endpoint
        return endpoint

    def add_action(self, endpoint: ActionEndpoint) -> ActionEndpoint:
        """Expose an action endpoint."""
        if endpoint.slug in self._actions:
            raise ValueError(f"duplicate action slug {endpoint.slug!r} on {self.slug}")
        self._actions[endpoint.slug] = endpoint
        return endpoint

    def add_query(self, endpoint: QueryEndpoint) -> QueryEndpoint:
        """Expose a query endpoint (side-effect-free read)."""
        if endpoint.slug in self._queries:
            raise ValueError(f"duplicate query slug {endpoint.slug!r} on {self.slug}")
        self._queries[endpoint.slug] = endpoint
        return endpoint

    @property
    def query_slugs(self) -> List[str]:
        """Slugs of all exposed queries."""
        return sorted(self._queries)

    @property
    def trigger_slugs(self) -> List[str]:
        """Slugs of all exposed triggers."""
        return sorted(self._triggers)

    @property
    def action_slugs(self) -> List[str]:
        """Slugs of all exposed actions."""
        return sorted(self._actions)

    def trigger(self, slug: str) -> TriggerEndpoint:
        """Look up a trigger endpoint."""
        return self._triggers[slug]

    def action(self, slug: str) -> ActionEndpoint:
        """Look up an action endpoint."""
        return self._actions[slug]

    # -- platform lifecycle ---------------------------------------------------------

    def published(
        self, engine_address: Address, service_key: str, push: bool = False
    ) -> None:
        """Callback from the engine when this service is published.

        Stores the engine-issued service key (used to authenticate all
        future engine requests) and the engine address (for realtime
        hints and push notifications).  Publishing on several engines
        (one per shard) accretes keys; the *last* publisher becomes the
        realtime-hint/push target, so a sharded coordinator publishes
        the trigger's home shard last.  ``push`` is the negotiated
        contract outcome: the engine passes ``True`` when its
        ``push_policy`` is set and this service declared ``push=True``.
        """
        self.engine_address = engine_address
        self.service_key = service_key
        self.service_keys.add(service_key)
        self.push_contract = push

    def grant_token(self, token: str) -> None:
        """Mark an OAuth2 access token as valid for this service."""
        self._valid_tokens.add(token)

    def revoke_token(self, token: str) -> None:
        """Invalidate an access token."""
        self._valid_tokens.discard(token)

    def register_identity(self, trigger_slug: str, identity: str, fields: Dict[str, Any]) -> None:
        """Create the event buffer for one trigger identity.

        The engine's first poll for a new applet registers the identity;
        events arriving before registration are not retroactively visible,
        matching the protocol.
        """
        if trigger_slug not in self._triggers:
            raise KeyError(f"service {self.slug} has no trigger {trigger_slug!r}")
        if identity not in self._identities:
            self._identities[identity] = (trigger_slug, dict(fields), TriggerBuffer(self.buffer_capacity))

    @property
    def known_identities(self) -> List[str]:
        """All registered trigger identities."""
        return sorted(self._identities)

    def buffer_for(self, identity: str) -> TriggerBuffer:
        """The event buffer of a registered identity."""
        return self._identities[identity][2]

    # -- event ingestion -----------------------------------------------------------

    def ingest_event(self, trigger_slug: str, event: Dict[str, Any]) -> int:
        """Route one upstream event into matching identity buffers.

        Returns the number of identities that buffered the event.  Under
        an accepted push contract each affected identity's fresh event is
        POSTed to the engine with its payload; otherwise, when the
        service is realtime-capable, a hint naming each affected
        identity is sent (push supersedes hint — the payload is a strict
        superset of the identity list).
        """
        endpoint = self._triggers.get(trigger_slug)
        if endpoint is None:
            raise KeyError(f"service {self.slug} has no trigger {trigger_slug!r}")
        self.events_ingested += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service.events_ingested", service=self.slug, trigger=trigger_slug
            ).inc()
        affected: List[str] = []
        pushed: List[Tuple[str, TriggerEvent]] = []
        for identity, (slug, fields, buffer) in self._identities.items():
            if slug != trigger_slug:
                continue
            if not endpoint.matcher(event, fields):
                continue
            fresh = TriggerEvent.create(self.now, **endpoint.ingredients(event))
            buffer.append(fresh)
            affected.append(identity)
            if self.push_contract:
                pushed.append((identity, fresh))
        if self.trace is not None:
            self.trace.record(
                self.now,
                f"service:{self.slug}",
                "service_event_buffered",
                trigger=trigger_slug,
                identities=len(affected),
            )
        if pushed:
            self._send_push_notification(pushed)
        elif affected and self.realtime:
            self._send_realtime_hint(affected)
        return len(affected)

    def _send_realtime_hint(self, identities: List[str]) -> None:
        if self.engine_address is None:
            return
        self.realtime_hints_sent += 1
        self.post(
            self.engine_address,
            REALTIME_NOTIFY_PATH,
            body={"data": [{"trigger_identity": identity} for identity in identities]},
            headers={"IFTTT-Service-Key": self.service_key, "service_slug": self.slug},
        )

    def _send_push_notification(
        self, entries: List[Tuple[str, TriggerEvent]]
    ) -> None:
        """POST the fresh events (with payloads) to the contract engine.

        One notification per publication, carrying every affected
        identity's new event in poll-response wire shape (newest-first
        within each identity) — the engine ingests them through its
        dedupe, so a later safety-net poll re-returning the same events
        cannot double-deliver.
        """
        if self.engine_address is None:
            return
        self.push_notifications_sent += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service.push_notifications_sent", service=self.slug
            ).inc()
        self.post(
            self.engine_address,
            PUSH_NOTIFY_PATH,
            body={
                "data": [
                    {"trigger_identity": identity, "events": [event.to_wire()]}
                    for identity, event in entries
                ]
            },
            headers={"IFTTT-Service-Key": self.service_key, "service_slug": self.slug},
        )

    # -- failure injection ---------------------------------------------------------

    def set_outage(self, active: bool) -> None:
        """Simulate a service outage: API requests return 503 while active.

        Event ingestion from devices keeps working (device clouds buffer
        independently of the IFTTT-facing API), so buffered trigger events
        are delivered by the first successful poll after recovery —
        exercising the engine's dedup and the client-visible latency spike.
        """
        self.outage = active

    def _check_outage(self):
        """Whole-request gate: hard outage first, then one brownout draw.

        Single-action/poll/query handlers carry one operation per
        request, so one draw per request *is* one draw per operation.
        The batch-action handler must not use this combined gate for its
        brownout half — see :meth:`_handle_batch_action`.
        """
        rejected = self._check_hard_outage()
        if rejected is not None:
            return rejected
        if self._brownout_rejects():
            return 503, {"errors": [{"message": "service browning out"}]}
        return None

    def _check_hard_outage(self):
        if self.outage:
            self.requests_rejected_during_outage += 1
            return 503, {"errors": [{"message": "service unavailable"}]}
        return None

    def _brownout_rejects(self) -> bool:
        """One brownout rejection draw (no RNG consumed when no brownout
        fault is active), counted in ``service.brownout_rejections``."""
        if self.faults is not None and self.faults.rejects():
            self.requests_rejected_by_faults += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "service.brownout_rejections", service=self.slug
                ).inc()
            return True
        return False

    def _handle_status(self, request: HttpRequest):
        rejected = self._check_outage()
        if rejected is not None:
            return rejected
        return {"status": "ok", "service": self.slug}

    # -- protocol handlers ------------------------------------------------------------

    def _authenticate(self, request: HttpRequest) -> None:
        if self.service_keys and request.header("IFTTT-Service-Key") not in self.service_keys:
            self.auth_failures += 1
            raise AuthError("bad service key")
        token = request.header("Authorization", "")
        if self._valid_tokens and not (
            token.startswith("Bearer ") and token[len("Bearer "):] in self._valid_tokens
        ):
            self.auth_failures += 1
            raise AuthError("bad bearer token")

    def _handle_trigger_poll(self, request: HttpRequest):
        rejected = self._check_outage()
        if rejected is not None:
            return rejected
        try:
            self._authenticate(request)
        except AuthError as exc:
            return 401, {"errors": [{"message": str(exc)}]}
        slug = request.path[len(TRIGGER_PATH):]
        endpoint = self._triggers.get(slug)
        if endpoint is None:
            return 404, {"errors": [{"message": f"unknown trigger {slug!r}"}]}
        body = request.body or {}
        identity = body.get("trigger_identity")
        if not identity:
            return 400, {"errors": [{"message": "missing trigger_identity"}]}
        fields = body.get("triggerFields", {})
        limit = int(body.get("limit", 50))
        self.register_identity(slug, identity, fields)
        events = self.buffer_for(identity).fetch(limit)
        self.polls_served += 1
        if self.metrics is not None:
            self.metrics.counter("service.polls_served", service=self.slug).inc()
            self.metrics.histogram(
                "service.poll_batch_size", bounds=COUNT_BUCKETS, service=self.slug
            ).observe(len(events))
        if self.trace is not None:
            self.trace.record(
                self.now,
                f"service:{self.slug}",
                "service_poll_served",
                trigger=slug,
                identity=identity,
                returned=len(events),
            )
        return {"data": [event.to_wire() for event in events]}

    def _handle_action(self, request: HttpRequest):
        rejected = self._check_outage()
        if rejected is not None:
            return rejected
        try:
            self._authenticate(request)
        except AuthError as exc:
            return 401, {"errors": [{"message": str(exc)}]}
        slug = request.path[len(ACTION_PATH):]
        endpoint = self._actions.get(slug)
        if endpoint is None:
            return 404, {"errors": [{"message": f"unknown action {slug!r}"}]}
        fields = (request.body or {}).get("actionFields", {})
        self.actions_executed += 1
        if self.trace is not None:
            self.trace.record(
                self.now,
                f"service:{self.slug}",
                "service_action_received",
                action=slug,
            )
        result = endpoint.executor(fields)
        return {"data": [{"id": f"{self.slug}:{slug}:{self.actions_executed}", "result": result}]}

    def _handle_batch_action(self, request: HttpRequest):
        """Execute a :class:`BatchActionRequest`; per-entry status in order.

        Hard outage and authentication fail the whole batch (one healed
        service answers for all entries it carries); a bad entry —
        unknown slug, an executor raising :class:`HttpError`, or a
        *brownout rejection draw* — fails only itself, so one poisoned
        action cannot re-dead-letter its batchmates.

        Brownout is drawn **per entry**, not per request: a batch of 50
        replayed actions faces the same 50 independent rejection draws
        the retry path's 50 single-action requests would, so replay
        catch-up sees exactly the degraded service the rest of delivery
        does.  (Brownout ``extra_latency`` needs no special casing: the
        injector raises the node's per-request service time, which this
        endpoint already pays like any other.)
        """
        rejected = self._check_hard_outage()
        if rejected is not None:
            return rejected
        try:
            self._authenticate(request)
        except AuthError as exc:
            return 401, {"errors": [{"message": str(exc)}]}
        try:
            batch = BatchActionRequest.from_body(request.body)
        except ValueError as exc:
            return 400, {"errors": [{"message": str(exc)}]}
        self.batch_requests_served += 1
        if self.metrics is not None:
            self.metrics.counter("service.batch_requests_served", service=self.slug).inc()
            self.metrics.histogram(
                "service.batch_action_size", bounds=COUNT_BUCKETS, service=self.slug
            ).observe(len(batch))
        results: List[Dict[str, Any]] = []
        for entry in batch.entries:
            slug = entry["action_slug"]
            if self._brownout_rejects():
                results.append(
                    {"status": 503,
                     "errors": [{"message": "service browning out"}]}
                )
                continue
            endpoint = self._actions.get(slug)
            if endpoint is None:
                results.append(
                    {"status": 404,
                     "errors": [{"message": f"unknown action {slug!r}"}]}
                )
                continue
            try:
                result = endpoint.executor(entry.get("actionFields", {}))
            except HttpError as exc:
                results.append(
                    {"status": exc.status, "errors": [{"message": exc.reason}]}
                )
                continue
            self.actions_executed += 1
            self.batch_actions_executed += 1
            results.append(
                {"status": 200,
                 "id": f"{self.slug}:{slug}:{self.actions_executed}",
                 "result": result}
            )
        if self.trace is not None:
            self.trace.record(
                self.now,
                f"service:{self.slug}",
                "service_batch_action_received",
                entries=len(batch),
                executed=sum(1 for r in results if r["status"] == 200),
            )
        return {"data": results}

    def _handle_query(self, request: HttpRequest):
        rejected = self._check_outage()
        if rejected is not None:
            return rejected
        try:
            self._authenticate(request)
        except AuthError as exc:
            return 401, {"errors": [{"message": str(exc)}]}
        slug = request.path[len(QUERY_PATH):]
        endpoint = self._queries.get(slug)
        if endpoint is None:
            return 404, {"errors": [{"message": f"unknown query {slug!r}"}]}
        fields = (request.body or {}).get("queryFields", {})
        rows = endpoint.executor(fields)
        if not isinstance(rows, list):
            rows = [rows]
        if self.trace is not None:
            self.trace.record(
                self.now,
                f"service:{self.slug}",
                "service_query_served",
                query=slug,
                rows=len(rows),
            )
        return {"data": rows}

    # -- loop-analysis support -----------------------------------------------------------

    def trigger_channels(self, slug: str, fields: Dict[str, Any]):
        """Channels read by one of this service's triggers."""
        return self._triggers[slug].reads_channels(fields)

    def action_channels(self, slug: str, fields: Dict[str, Any]):
        """Channels written by one of this service's actions."""
        return self._actions[slug].writes_channels(fields)

    def __repr__(self) -> str:
        return (
            f"<PartnerService {self.slug!r} triggers={len(self._triggers)} "
            f"actions={len(self._actions)} queries={len(self._queries)} "
            f"realtime={self.realtime}>"
        )
