""""Our Service" (Figure 1, ❺) — the paper's self-implemented partner service.

The authors obtained a service-provider testing account and published
their own service so they could observe engine↔service interactions from
the provider side.  It reaches home IoT devices through the local proxy
(the *push* approach: the proxy forwards device events as they happen and
relays action commands) and web apps by *polling* their APIs — matching
§2.2 exactly.

For the substitution experiments, one :class:`CustomService` can host the
triggers and actions of every device the testbed owns: E1 swaps it in as
the trigger service, E2 as both trigger and action service, and the
"host Alexa ourselves" experiment registers it as an Alexa-cloud consumer
(without the official service's realtime privilege at the engine, so its
hints are ignored — reproducing the observation that Alexa-via-our-service
becomes slow).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.address import Address
from repro.net.http import HttpRequest
from repro.services.endpoints import (
    ActionEndpoint,
    TriggerEndpoint,
    field_channel,
    static_channels,
)
from repro.services.partner import PartnerService
from repro.simcore.process import Process, Timeout
from repro.simcore.trace import Trace


class CustomService(PartnerService):
    """The testbed's own partner service.

    Parameters
    ----------
    address:
        The service server's address (a lab machine in the paper).
    proxy:
        The home local proxy used to reach LAN devices.
    slug:
        Platform identity; defaults to ``our_service``.
    realtime:
        Whether to send realtime hints (the service *can*; whether the
        engine honours them is the engine's allowlist decision).
    """

    def __init__(
        self,
        address: Address,
        proxy: Optional[Address] = None,
        slug: str = "our_service",
        realtime: bool = False,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(address, slug=slug, trace=trace, realtime=realtime, service_time=0.005)
        self.proxy = proxy
        self._gmail: Optional[Address] = None
        self._gmail_user: Optional[str] = None
        self._sheets: Optional[Address] = None
        self._drive: Optional[Address] = None
        self._last_msg_id = 0
        self._poll_processes: Dict[str, Process] = {}
        self.add_route("POST", "/proxy/event", self._handle_proxy_event)
        self.add_route("POST", "/events/alexa", self._handle_alexa_intent)
        self._declare_iot_endpoints()

    # -- endpoint declarations -------------------------------------------------------

    def _declare_iot_endpoints(self) -> None:
        self.add_trigger(
            TriggerEndpoint(
                slug="wemo_activated",
                name="WeMo switch turned on (via proxy)",
                matcher=lambda event, fields: event.get("kind") == "wemo_switch"
                and event.get("on") is True,
                ingredients=lambda event: {"device_id": event.get("device_id", "")},
                reads_channels=field_channel("wemo", "device_id"),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="wemo_deactivated",
                name="WeMo switch turned off (via proxy)",
                matcher=lambda event, fields: event.get("kind") == "wemo_switch"
                and event.get("on") is False,
                ingredients=lambda event: {"device_id": event.get("device_id", "")},
                reads_channels=field_channel("wemo", "device_id"),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="hue_light_on",
                name="Hue light turned on (via proxy)",
                matcher=lambda event, fields: event.get("kind") == "hue_lamp"
                and event.get("on") is True,
                ingredients=lambda event: {"lamp_id": event.get("device_id", "")},
                reads_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="turn_on_hue",
                name="Turn on Hue light (via proxy)",
                executor=lambda fields: self._proxy_hue(fields, {"on": True}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="turn_off_hue",
                name="Turn off Hue light (via proxy)",
                executor=lambda fields: self._proxy_hue(fields, {"on": False}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="blink_hue",
                name="Blink Hue light (via proxy)",
                executor=lambda fields: self._proxy_hue(fields, {"effect": "blink"}),
                writes_channels=field_channel("hue", "lamp_id"),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="activate_wemo",
                name="Turn WeMo switch on (via proxy)",
                executor=lambda fields: self._proxy_wemo(fields, True),
                writes_channels=field_channel("wemo", "device_id"),
            )
        )
        # Alexa triggers (used when this service "hosts" Alexa, §4).
        self.add_trigger(
            TriggerEndpoint(
                slug="alexa_phrase",
                name="Alexa phrase said (hosted)",
                matcher=lambda event, fields: event.get("intent") == "say_phrase"
                and (not fields.get("phrase") or fields["phrase"] == event.get("phrase")),
                ingredients=lambda event: {"phrase": event.get("phrase", "")},
                reads_channels=static_channels(("alexa", "voice")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="alexa_song_played",
                name="Alexa song played (hosted)",
                matcher=lambda event, fields: event.get("intent") == "song_played",
                ingredients=lambda event: {"song": event.get("song", "")},
                reads_channels=static_channels(("alexa", "music")),
            )
        )

    # -- web-app wiring ------------------------------------------------------------------

    def connect_gmail(self, gmail: Address, user_email: str, poll_interval: float = 10.0) -> None:
        """Wire Gmail: declares mail trigger/action endpoints and a poll loop."""
        self._gmail = gmail
        self._gmail_user = user_email
        self.add_trigger(
            TriggerEndpoint(
                slug="gmail_new_email",
                name="Any new email (our service)",
                ingredients=lambda event: {
                    "subject": event.get("subject", ""),
                    "from": event.get("from", ""),
                },
                reads_channels=static_channels(("gmail_inbox", "me")),
            )
        )
        self.add_trigger(
            TriggerEndpoint(
                slug="gmail_new_attachment",
                name="New email with attachment (our service)",
                matcher=lambda event, fields: bool(event.get("attachments")),
                ingredients=lambda event: {
                    "subject": event.get("subject", ""),
                    "attachments": list(event.get("attachments", [])),
                    "attachment": (event.get("attachments") or [""])[0],
                },
                reads_channels=static_channels(("gmail_inbox", "me")),
            )
        )
        self.add_action(
            ActionEndpoint(
                slug="send_email",
                name="Send an email (our service)",
                executor=self._send_email,
                writes_channels=static_channels(("gmail_inbox", "me")),
            )
        )

        def loop():
            while True:
                self.get(
                    gmail,
                    "/api/messages",
                    body={"user": user_email, "since_id": self._last_msg_id},
                    on_response=self._on_mailbox,
                )
                yield Timeout(poll_interval)

        self._poll_processes["gmail"] = Process(self.sim, loop(), name=f"{self.slug}.mailpoll")

    def connect_sheets(self, sheets: Address) -> None:
        """Wire Google Sheets: declares the add-row action."""
        self._sheets = sheets
        self.add_action(
            ActionEndpoint(
                slug="add_row",
                name="Add row to spreadsheet (our service)",
                executor=self._add_row,
                writes_channels=field_channel("sheets", "sheet"),
            )
        )

    def connect_drive(self, drive: Address) -> None:
        """Wire Google Drive: declares the upload-file action."""
        self._drive = drive
        self.add_action(
            ActionEndpoint(
                slug="upload_file",
                name="Upload file (our service)",
                executor=self._upload_file,
                writes_channels=field_channel("drive", "user"),
            )
        )

    def host_alexa(self, alexa_cloud: Address) -> None:
        """Register as an Alexa-cloud intent consumer (the hosted-Alexa test)."""
        self.post(alexa_cloud, "/v1/consumers", body={"callback": self.address.host})

    # -- upstream event handling --------------------------------------------------------------

    def _handle_proxy_event(self, request: HttpRequest):
        body = request.body or {}
        event = {
            "kind": body.get("kind", ""),
            "device_id": body.get("device_id", ""),
            "on": body.get("state", {}).get("on"),
        }
        if self.trace is not None:
            self.trace.record(
                self.now,
                f"service:{self.slug}",
                "service_proxy_event",
                device_id=event["device_id"],
                device_kind=event["kind"],
            )
        for slug in ("wemo_activated", "wemo_deactivated", "hue_light_on"):
            self.ingest_event(slug, event)
        return {"confirmed": True}

    def _handle_alexa_intent(self, request: HttpRequest):
        intent = request.body or {}
        for slug in ("alexa_phrase", "alexa_song_played"):
            self.ingest_event(slug, intent)
        return {"ok": True}

    def _on_mailbox(self, response) -> None:
        if not response.ok:
            return
        for message in (response.body or {}).get("messages", []):
            self._last_msg_id = max(self._last_msg_id, message["msg_id"])
            self.ingest_event("gmail_new_email", message)
            if message.get("attachments"):
                self.ingest_event("gmail_new_attachment", message)

    # -- action executors -----------------------------------------------------------------------

    def _require_proxy(self) -> Address:
        if self.proxy is None:
            raise RuntimeError(f"service {self.slug} has no local proxy configured")
        return self.proxy

    def _proxy_hue(self, fields: Dict[str, Any], command: Dict[str, Any]) -> Dict[str, Any]:
        lamp_id = fields.get("lamp_id", "")
        merged = dict(command)
        if "color" in fields:
            merged["color"] = fields["color"]
        self.post(
            self._require_proxy(),
            "/proxy/command",
            body={"target": "hue", "lamp_id": lamp_id, "command": merged},
        )
        return {"lamp_id": lamp_id}

    def _proxy_wemo(self, fields: Dict[str, Any], on: bool) -> Dict[str, Any]:
        device_id = fields.get("device_id", "")
        self.post(
            self._require_proxy(),
            "/proxy/command",
            body={"target": "wemo", "device_id": device_id, "on": on},
        )
        return {"device_id": device_id, "on": on}

    def _send_email(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        if self._gmail is None:
            raise RuntimeError("gmail is not connected to this service")
        self.post(
            self._gmail,
            "/api/send",
            body={
                "to": fields.get("to", self._gmail_user),
                "from": self._gmail_user or "our-service",
                "subject": fields.get("subject", ""),
                "body": fields.get("body", ""),
            },
        )
        return {"to": fields.get("to", self._gmail_user)}

    def _add_row(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        if self._sheets is None:
            raise RuntimeError("sheets is not connected to this service")
        sheet = fields.get("sheet", "default")
        cells = fields.get("cells")
        if not isinstance(cells, list):
            cells = [fields.get("row", "")]
        self.post(self._sheets, f"/api/sheets/{sheet}/rows", body={"cells": cells})
        return {"sheet": sheet}

    def _upload_file(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        if self._drive is None:
            raise RuntimeError("drive is not connected to this service")
        self.post(
            self._drive,
            "/api/upload",
            body={
                "user": fields.get("user", "me"),
                "name": fields.get("name", "attachment"),
                "folder": fields.get("folder", "/our-service"),
            },
        )
        return {"name": fields.get("name", "attachment")}
