"""Per-trigger-identity event buffering.

§4 ("Sequential Execution of Applets") explains the clustered action
pattern: *"Upon receiving a polling query, the trigger service should
return many buffered trigger events (up to k) to IFTTT"* — k being the
``limit`` field of the poll, 50 by default.  This module implements that
buffer: trigger events accumulate per trigger identity between polls, and
each poll drains up to ``limit`` of the most recent ones (newest first,
as the IFTTT API specifies).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List

_event_ids = itertools.count(1)

DEFAULT_CAPACITY = 500


@dataclass(frozen=True)
class TriggerEvent:
    """One occurrence of a trigger condition.

    Attributes
    ----------
    event_id:
        Globally unique id (the protocol's ``meta.id``); the engine
        deduplicates on it across polls.
    created_at:
        When the trigger condition was met (``meta.timestamp``).
    ingredients:
        Values exposed to the action's field templating
        (e.g. ``{"subject": ..., "from": ...}`` for a new-email event).
    """

    event_id: int
    created_at: float
    ingredients: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def create(created_at: float, **ingredients: Any) -> "TriggerEvent":
        """Mint a new event with a fresh id."""
        return TriggerEvent(event_id=next(_event_ids), created_at=created_at, ingredients=dict(ingredients))

    def to_wire(self) -> Dict[str, Any]:
        """Serialize to the poll-response shape."""
        return {
            "meta": {"id": self.event_id, "timestamp": self.created_at},
            "ingredients": dict(self.ingredients),
        }


class TriggerBuffer:
    """A bounded ring of trigger events for one trigger identity."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TriggerEvent] = deque(maxlen=capacity)
        self.total_appended = 0
        self.dropped = 0

    def append(self, event: TriggerEvent) -> None:
        """Buffer one event; the oldest is dropped when full."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.total_appended += 1

    def fetch(self, limit: int = 50) -> List[TriggerEvent]:
        """Up to ``limit`` most recent events, newest first (poll semantics).

        Fetching does not consume: IFTTT polls are idempotent reads and the
        engine deduplicates by ``meta.id``.
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        newest_first = list(self._events)[::-1]
        return newest_first[:limit]

    def __len__(self) -> int:
        return len(self._events)

    def latest(self) -> TriggerEvent:
        """The most recent event; raises ``IndexError`` when empty."""
        return self._events[-1]

    def __repr__(self) -> str:
        return f"<TriggerBuffer {len(self._events)}/{self.capacity}>"
