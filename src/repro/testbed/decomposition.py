"""T2A latency decomposition: Table 5, distributionally.

Table 5 breaks one execution of A2/E2 into stages; this module computes
the same decomposition across many runs, quantifying each component's
share of the total:

* ``device_to_service`` — trigger event → proxy → service confirmation;
* ``wait_for_poll``     — service has the event → engine's carrying poll;
* ``poll_to_action``    — carrying poll → action request sent;
* ``action_to_device``  — action request → device actuation observed.

The paper's conclusion ("the polling interval dominates the overall T2A
latency") becomes a measured share here, asserted by the §4 tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.testbed.applets import applet_spec
from repro.testbed.scenarios import build_scenario


@dataclass(frozen=True)
class StageBreakdown:
    """One run's component latencies (seconds)."""

    device_to_service: float
    wait_for_poll: float
    poll_to_action: float
    action_to_device: float

    @property
    def total(self) -> float:
        """Sum of all components (≈ the run's T2A latency)."""
        return (self.device_to_service + self.wait_for_poll
                + self.poll_to_action + self.action_to_device)

    @property
    def poll_share(self) -> float:
        """Fraction of the total spent waiting for the engine's poll."""
        return self.wait_for_poll / self.total if self.total > 0 else 0.0


def _carrying_poll_time(trace, since: float) -> Optional[float]:
    for response in trace.query(kind="engine_poll_response", since=since):
        if response.get("new", 0) > 0:
            applet_id = response.get("applet_id")
            polls = [
                rec for rec in trace.query(kind="engine_poll_sent", since=since,
                                           applet_id=applet_id)
                if rec.time <= response.time
            ]
            return polls[-1].time if polls else None
    return None


def decompose_run(testbed, spec, trigger_time: float, action_time: float) -> Optional[StageBreakdown]:
    """Decompose one completed run from the shared trace.

    Returns ``None`` when a stage marker is missing (e.g. non-proxy
    scenarios where the device path isn't instrumented).
    """
    trace = testbed.trace
    confirmations = trace.query(kind="proxy_confirmed", since=trigger_time)
    if not confirmations:
        return None
    confirmed_at = confirmations[0].time
    polled_at = _carrying_poll_time(trace, since=trigger_time)
    if polled_at is None:
        return None
    actions = trace.query(kind="engine_action_sent", since=trigger_time)
    if not actions:
        return None
    action_sent_at = actions[0].time
    return StageBreakdown(
        device_to_service=confirmed_at - trigger_time,
        wait_for_poll=polled_at - confirmed_at,
        poll_to_action=action_sent_at - polled_at,
        action_to_device=action_time - action_sent_at,
    )


def run_decomposition(
    runs: int = 20, seed: int = 7, scenario_name: str = "E2", applet_key: str = "A2"
) -> List[StageBreakdown]:
    """Measure the stage decomposition across repeated runs of one applet."""
    testbed, controller, chosen = build_scenario(scenario_name, seed=seed)
    spec = applet_spec(applet_key)
    controller.install(applet_key, variant=chosen.applet_variant)
    testbed.run_for(5.0)
    breakdowns: List[StageBreakdown] = []
    for run in range(runs):
        measurement = controller.run_once(spec, run=run)
        if measurement.completed:
            breakdown = decompose_run(
                testbed, spec, measurement.trigger_time, measurement.action_time
            )
            if breakdown is not None:
                breakdowns.append(breakdown)
        testbed.run_for(testbed.rng.uniform(30.0, 200.0))
    return breakdowns


def mean_shares(breakdowns: List[StageBreakdown]) -> Dict[str, float]:
    """Average share of the total per stage, over all runs."""
    if not breakdowns:
        raise ValueError("no breakdowns to average")
    totals = {"device_to_service": 0.0, "wait_for_poll": 0.0,
              "poll_to_action": 0.0, "action_to_device": 0.0}
    for breakdown in breakdowns:
        total = breakdown.total or 1.0
        totals["device_to_service"] += breakdown.device_to_service / total
        totals["wait_for_poll"] += breakdown.wait_for_poll / total
        totals["poll_to_action"] += breakdown.poll_to_action / total
        totals["action_to_device"] += breakdown.action_to_device / total
    return {stage: share / len(breakdowns) for stage, share in totals.items()}
