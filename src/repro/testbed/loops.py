"""The §4 infinite-loop experiments.

* **Explicit loop** — two chained applets: "add a row to my spreadsheet
  when an email is received" and "email me when a row is added".  IFTTT
  performs no syntax check, so both install fine and the chain feeds
  itself.
* **Implicit loop** — only the first applet is installed, but the user
  has enabled the spreadsheet's *notification feature* (email on
  modification).  The loop closes outside IFTTT, so no offline analysis
  of applets can reveal it.

Both experiments also evaluate the countermeasures of §4/§6: the static
channel-graph analyzer (catches the explicit loop; catches the implicit
one only when the external automation is declared) and the runtime
rate-limit detector (catches both, and with a kill switch actually stops
the loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.engine.applet import ActionRef, Applet, TriggerRef
from repro.engine.config import EngineConfig
from repro.engine.loops import LoopFinding, StaticLoopAnalyzer
from repro.testbed.applets import _deliver_email
from repro.testbed.testbed import TEST_EMAIL, TEST_USER, Testbed, TestbedConfig

LOOP_SHEET = "inbox_log"


@dataclass
class LoopExperimentResult:
    """Outcome of one loop experiment."""

    kind: str
    duration: float
    rows_added: int
    emails_received: int
    executions: List[int]
    static_findings: List[LoopFinding]
    static_findings_with_external_knowledge: List[LoopFinding]
    runtime_flagged: List[int]
    disabled_applets: List[int]

    @property
    def looped(self) -> bool:
        """Whether the feedback loop actually self-sustained.

        One seed email should produce one row; any growth beyond a couple
        of rows means actions kept re-triggering.
        """
        return self.rows_added >= 3


def _loop_engine_config(runtime_detection: bool) -> EngineConfig:
    # The loop cycles once per poll round (~minutes), so the detector
    # needs a long window: >4 executions in 30 simulated minutes is far
    # beyond any legitimate email-to-spreadsheet usage here.
    return EngineConfig(
        runtime_loop_detection=runtime_detection,
        runtime_loop_threshold=4,
        runtime_loop_window=1800.0,
    )


def _run_loop(
    kind: str,
    install_reverse_applet: bool,
    enable_sheet_notifications: bool,
    duration: float,
    seed: int,
    runtime_detection: bool,
) -> LoopExperimentResult:
    testbed = Testbed(
        TestbedConfig(seed=seed, engine_config=_loop_engine_config(runtime_detection))
    ).build()
    engine = testbed.engine

    forward = engine.install_applet(
        user=TEST_USER,
        name="Add a row to my spreadsheet when an email is received",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef(
            "google_sheets", "add_row", {"sheet": LOOP_SHEET, "row": "mail: {{subject}}"}
        ),
    )
    applets: List[Applet] = [forward]
    if install_reverse_applet:
        reverse = engine.install_applet(
            user=TEST_USER,
            name="Email me when a row is added to my spreadsheet",
            trigger=TriggerRef("google_sheets", "new_row", {"sheet": LOOP_SHEET}),
            action=ActionRef(
                "gmail", "send_email", {"to": TEST_EMAIL, "subject": "row added to {{sheet}}"}
            ),
        )
        applets.append(reverse)
    if enable_sheet_notifications:
        testbed.sheets.enable_notifications(LOOP_SHEET, testbed.gmail.address, TEST_EMAIL)

    testbed.run_for(10.0)
    start_rows = testbed.sheets.row_count(LOOP_SHEET)
    start_mail = len(testbed.gmail.inbox(TEST_EMAIL))
    _deliver_email(testbed)  # the seed event
    testbed.run_for(duration)

    # Offline analysis, as IFTTT could run it (channel graph from the
    # published services), without and with external-automation knowledge.
    services = {s.slug: s for s in testbed.all_services()}
    analyzer = StaticLoopAnalyzer(services)
    blind_findings = analyzer.find_cycles(applets)
    informed = StaticLoopAnalyzer(services)
    if enable_sheet_notifications:
        informed.add_external_edge(("sheets", LOOP_SHEET), ("gmail_inbox", "me"))
    informed_findings = informed.find_cycles(applets)

    return LoopExperimentResult(
        kind=kind,
        duration=duration,
        rows_added=testbed.sheets.row_count(LOOP_SHEET) - start_rows,
        emails_received=len(testbed.gmail.inbox(TEST_EMAIL)) - start_mail,
        executions=[applet.executions for applet in applets],
        static_findings=blind_findings,
        static_findings_with_external_knowledge=informed_findings,
        runtime_flagged=sorted(engine.loop_detector.flagged),
        disabled_applets=[a.applet_id for a in applets if not a.enabled],
    )


def run_explicit_loop_experiment(
    duration: float = 7200.0, seed: int = 7, runtime_detection: bool = False
) -> LoopExperimentResult:
    """Two chained applets forming "A triggers B triggers A"."""
    return _run_loop(
        kind="explicit",
        install_reverse_applet=True,
        enable_sheet_notifications=False,
        duration=duration,
        seed=seed,
        runtime_detection=runtime_detection,
    )


def run_implicit_loop_experiment(
    duration: float = 7200.0, seed: int = 7, runtime_detection: bool = False
) -> LoopExperimentResult:
    """One applet + the Sheets notification feature closing the loop."""
    return _run_loop(
        kind="implicit",
        install_reverse_applet=False,
        enable_sheet_notifications=True,
        duration=duration,
        seed=seed,
        runtime_detection=runtime_detection,
    )
