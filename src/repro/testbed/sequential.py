"""Figure 6: sequential trigger activations and action clustering.

"We next test the performance when a trigger is activated multiple times
sequentially (every 5 seconds in our experiment) ... the action
associated with the first trigger is executed together with a cluster of
subsequent actions ... Such a clustered pattern ... is caused by the
batched process of IFTTT polling" — each poll response carries up to
k (=50) buffered events, so the actions of all events accumulated since
the previous poll fire together.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import List, Optional

from repro.engine.config import EngineConfig
from repro.engine.poller import ProductionPollingPolicy
from repro.testbed.applets import OFFICIAL, applet_spec
from repro.testbed.controller import TestController
from repro.testbed.testbed import Testbed, TestbedConfig


@dataclass
class SequentialResult:
    """Trigger/action timelines of a sequential-activation experiment."""

    applet_key: str
    trigger_times: List[float]
    action_times: List[float]
    clusters: List[List[float]]

    @property
    def cluster_sizes(self) -> List[int]:
        """Number of actions in each cluster."""
        return [len(cluster) for cluster in self.clusters]

    @property
    def max_inter_cluster_gap(self) -> float:
        """Largest gap between consecutive clusters (the paper saw 14 min)."""
        starts = [cluster[0] for cluster in self.clusters]
        if len(starts) < 2:
            return 0.0
        return max(later - earlier for earlier, later in zip(starts, starts[1:]))


def find_clusters(times: List[float], gap_threshold: float = 15.0) -> List[List[float]]:
    """Group sorted timestamps into clusters split at gaps > ``gap_threshold``."""
    if gap_threshold <= 0:
        raise ValueError(f"gap_threshold must be positive, got {gap_threshold}")
    ordered = sorted(times)
    clusters: List[List[float]] = []
    for t in ordered:
        if clusters and t - clusters[-1][-1] <= gap_threshold:
            clusters[-1].append(t)
        else:
            clusters.append([t])
    return clusters


def run_sequential_experiment(
    applet_key: str = "A4",
    triggers: int = 30,
    interval: float = 5.0,
    seed: int = 7,
    settle_after: float = 2400.0,
    engine_config: Optional[EngineConfig] = None,
) -> SequentialResult:
    """Activate one applet's trigger every ``interval`` seconds, ``triggers`` times.

    Returns the trigger timeline, the action timeline (observed at the
    action service), and the clusters the actions form.
    """
    config = TestbedConfig(seed=seed)
    if engine_config is not None:
        config = dataclass_replace(config, engine_config=engine_config)
    testbed = Testbed(config).build()
    controller = TestController(testbed)
    spec = applet_spec(applet_key)
    controller.install(applet_key, variant=OFFICIAL)
    spec.reset(testbed)
    testbed.run_for(30.0)

    action_service = spec.refs(OFFICIAL)[1].service_slug
    start = testbed.sim.now
    trigger_times: List[float] = []
    for _ in range(triggers):
        trigger_times.append(testbed.sim.now)
        spec.activate(testbed)
        testbed.run_for(interval)
    testbed.run_for(settle_after)

    action_times = [
        rec.time
        for rec in testbed.trace.query(
            kind="service_action_received", source=f"service:{action_service}", since=start
        )
    ]
    return SequentialResult(
        applet_key=applet_key,
        trigger_times=[t - start for t in trigger_times],
        action_times=[t - start for t in action_times],
        clusters=find_clusters([t - start for t in action_times]),
    )


def run_sequential_extreme(
    applet_key: str = "A4", triggers: int = 60, interval: float = 20.0, seed: int = 23
) -> SequentialResult:
    """The bottom half of Figure 6: an engine under high load.

    A heavily inflated polling policy reproduces the observed extreme
    case where "the polling delay between two clusters inflate[s] to 14
    minutes".  The trigger train spans several poll intervals so that
    multiple clusters form and the inflated gap between them is visible.
    """
    loaded = EngineConfig(
        poll_policy=ProductionPollingPolicy(
            median=200.0, sigma=0.6, inflation_prob=0.35, inflation_min=3.0, inflation_max=6.0
        )
    )
    return run_sequential_experiment(
        applet_key=applet_key,
        triggers=triggers,
        interval=interval,
        seed=seed,
        settle_after=3600.0,
        engine_config=loaded,
    )
