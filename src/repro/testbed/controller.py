"""The test controller (Figure 1, ❾).

"The Test Controller automates the controlled experiments" (§2.1) and
"serves two roles.  First, it automates the experiments by activating the
trigger ... The second role is to measure the T2A latency by recording
TT and TA." (§4)

The controller drives the testbed's devices directly (it is physically in
the lab/home: it flips the WeMo, plays recorded voice commands at the
Echo, injects emails) and reads the shared trace to observe actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.applet import Applet
from repro.testbed.applets import AppletSpec, OFFICIAL, applet_spec
from repro.testbed.testbed import TEST_USER, Testbed


@dataclass
class T2AMeasurement:
    """One trigger-to-action measurement."""

    applet_key: str
    run: int
    trigger_time: float
    action_time: Optional[float]

    @property
    def completed(self) -> bool:
        """Whether the action was observed before the experiment timeout."""
        return self.action_time is not None

    @property
    def latency(self) -> Optional[float]:
        """T2A latency in seconds (None if the action never executed)."""
        if self.action_time is None:
            return None
        return self.action_time - self.trigger_time


class TestController:
    """Automates activation, observation, and T2A measurement."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, testbed: Testbed, timeout: float = 1800.0) -> None:
        self.testbed = testbed
        self.timeout = timeout
        self.measurements: List[T2AMeasurement] = []

    # -- applet installation ----------------------------------------------------------

    def install(self, key: str, variant: str = OFFICIAL, user: str = TEST_USER) -> Applet:
        """Install one of the Table 4 applets on the engine."""
        spec = applet_spec(key)
        trigger, action = spec.refs(variant)
        return self.testbed.engine.install_applet(
            user=user, name=spec.name, trigger=trigger, action=action, author=user
        )

    # -- single-run measurement ----------------------------------------------------------

    def run_once(self, spec: AppletSpec, run: int = 0, settle: float = 30.0) -> T2AMeasurement:
        """Reset, activate, and wait for the action (or timeout).

        ``settle`` seconds are simulated after the reset so reset-induced
        device events drain before TT is stamped.
        """
        testbed = self.testbed
        spec.reset(testbed)
        testbed.run_for(settle)
        trigger_time = testbed.sim.now
        spec.activate(testbed)
        action_time = self._wait_for_action(spec, trigger_time)
        measurement = T2AMeasurement(
            applet_key=spec.key, run=run, trigger_time=trigger_time, action_time=action_time
        )
        self.measurements.append(measurement)
        return measurement

    def _wait_for_action(self, spec: AppletSpec, since: float, step: float = 0.5) -> Optional[float]:
        testbed = self.testbed
        deadline = since + self.timeout
        while testbed.sim.now < deadline:
            observed = spec.observe(testbed, since)
            if observed is not None:
                return observed
            testbed.run_for(step)
        return spec.observe(testbed, since)

    # -- repeated measurement ---------------------------------------------------------------

    def measure_t2a(
        self,
        key: str,
        runs: int = 50,
        variant: str = OFFICIAL,
        spacing: float = 120.0,
        install: bool = True,
    ) -> List[float]:
        """Measure T2A latency across ``runs`` activations of one applet.

        Activations are spread out in simulated time (the paper ran each
        applet 50 times at different times over three days) with a
        randomized inter-run gap around ``spacing`` so that trigger times
        are uncorrelated with poll phases.  Returns completed latencies.
        """
        testbed = self.testbed
        spec = applet_spec(key)
        if install:
            self.install(key, variant=variant)
        latencies: List[float] = []
        for run in range(runs):
            measurement = self.run_once(spec, run=run)
            if measurement.latency is not None:
                latencies.append(measurement.latency)
            gap = testbed.rng.uniform(0.2 * spacing, 1.8 * spacing)
            testbed.run_for(gap)
        return latencies

    @property
    def completed_fraction(self) -> float:
        """Fraction of all measurements whose action executed in time."""
        if not self.measurements:
            return 0.0
        done = sum(1 for m in self.measurements if m.completed)
        return done / len(self.measurements)
