"""The seven test applets of Table 4.

Each :class:`AppletSpec` bundles everything the controller needs to run
one of the paper's controlled experiments: the trigger/action endpoint
references per service variant (official services, or the E1/E2
substitutions with "Our Service"), a physical activation routine, a
pre-run reset routine, and an observer that detects the executed action
in the shared trace.

===  =================================================  ==================
Key  Applet (verbatim from Table 4)                      Flow
===  =================================================  ==================
A1   If my Wemo switch is activated, add line to         IoT -> WebApp
     spreadsheet.
A2   Turn on my Hue light from the Wemo light switch.    IoT -> IoT
A3   When any new email arrives in gmail, blink the      WebApp -> IoT
     Hue light.
A4   Automatically save new gmail attachments to         WebApp -> WebApp
     google drive.
A5   Use Alexa's voice control to turn off the Hue       Alexa -> IoT
     light.
A6   Use Alexa's voice control to activate the Wemo      Alexa -> IoT
     switch.
A7   Keep a google spreadsheet of songs you listen to    Alexa -> WebApp
     on Alexa.
===  =================================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.engine.applet import ActionRef, TriggerRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testbed.testbed import Testbed

#: Variant names for :meth:`AppletSpec.refs`.
OFFICIAL = "official"
E1 = "e1"  # custom trigger service, official action service
E2 = "e2"  # custom trigger and action services
HOSTED_ALEXA = "hosted_alexa"  # Alexa events consumed by Our Service

Activate = Callable[["Testbed"], None]
Reset = Callable[["Testbed"], None]
Observe = Callable[["Testbed", float], Optional[float]]


@dataclass
class AppletSpec:
    """One Table 4 applet, fully experiment-ready."""

    key: str
    name: str
    flow: str
    group: str
    variants: Dict[str, "tuple[TriggerRef, ActionRef]"]
    activate: Activate
    reset: Reset
    observe: Observe

    def refs(self, variant: str = OFFICIAL) -> "tuple[TriggerRef, ActionRef]":
        """The (trigger, action) references for a service variant."""
        try:
            return self.variants[variant]
        except KeyError:
            raise KeyError(f"applet {self.key} has no {variant!r} variant") from None


# -- observers ---------------------------------------------------------------------------


def _observe_lamp_state(value: bool) -> Observe:
    def observe(testbed: "Testbed", since: float) -> Optional[float]:
        for rec in testbed.trace.query(kind="device_state_changed", source="lamp1", since=since):
            if rec.get("key") == "on" and rec.get("value") is value:
                return rec.time
        return None

    return observe


def _observe_lamp_effect(effect: str) -> Observe:
    def observe(testbed: "Testbed", since: float) -> Optional[float]:
        for rec in testbed.trace.query(kind="device_state_changed", source="lamp1", since=since):
            if rec.get("key") == "effect" and rec.get("value") == effect:
                return rec.time
        return None

    return observe


def _observe_wemo_on(testbed: "Testbed", since: float) -> Optional[float]:
    for rec in testbed.trace.query(kind="device_state_changed", source="wemo1", since=since):
        if rec.get("key") == "on" and rec.get("value") is True and rec.get("cause") != "physical":
            return rec.time
    return None


def _observe_sheet_row(sheet: str) -> Observe:
    def observe(testbed: "Testbed", since: float) -> Optional[float]:
        records = testbed.trace.query(kind="app_row_added", since=since, sheet=sheet)
        return records[0].time if records else None

    return observe


def _observe_drive_upload(testbed: "Testbed", since: float) -> Optional[float]:
    records = testbed.trace.query(kind="app_file_uploaded", since=since)
    return records[0].time if records else None


# -- activation / reset routines ----------------------------------------------------------


def _press_wemo_on(testbed: "Testbed") -> None:
    if testbed.wemo.get_state("on"):
        raise RuntimeError("wemo must be reset off before activation")
    testbed.wemo.press()


def _reset_wemo_off(testbed: "Testbed") -> None:
    if testbed.wemo.get_state("on"):
        testbed.wemo.set_binary_state(False, cause="reset")


def _reset_lamp_off(testbed: "Testbed") -> None:
    testbed.hue_lamp.apply_command({"on": False, "effect": "none"}, cause="reset")


def _reset_lamp_on(testbed: "Testbed") -> None:
    testbed.hue_lamp.apply_command({"on": True, "effect": "none"}, cause="reset")


_email_counter = [0]


def _deliver_email(testbed: "Testbed", attachments: "tuple[str, ...]" = ()) -> None:
    from repro.testbed.testbed import TEST_EMAIL

    _email_counter[0] += 1
    testbed.gmail.deliver_email(
        to=TEST_EMAIL,
        sender="experimenter@lab",
        subject=f"test message {_email_counter[0]}",
        body="controlled experiment",
        attachments=attachments,
    )


def _noop(testbed: "Testbed") -> None:
    return None


# -- the suite -------------------------------------------------------------------------------


def _build_suite() -> Dict[str, AppletSpec]:
    lamp = {"lamp_id": "lamp1"}
    switch = {"device_id": "wemo1"}
    suite: Dict[str, AppletSpec] = {}

    suite["A1"] = AppletSpec(
        key="A1",
        name="If my Wemo switch is activated, add line to spreadsheet.",
        flow="IoT -> WebApp",
        group="A1-A4",
        variants={
            OFFICIAL: (
                TriggerRef("wemo", "switch_activated", dict(switch)),
                ActionRef("google_sheets", "add_row", {"sheet": "wemo_log", "row": "switch {{device_id}} activated"}),
            ),
            E1: (
                TriggerRef("our_service", "wemo_activated", dict(switch)),
                ActionRef("google_sheets", "add_row", {"sheet": "wemo_log", "row": "switch {{device_id}} activated"}),
            ),
            E2: (
                TriggerRef("our_service", "wemo_activated", dict(switch)),
                ActionRef("our_service", "add_row", {"sheet": "wemo_log", "row": "switch {{device_id}} activated"}),
            ),
        },
        activate=_press_wemo_on,
        reset=_reset_wemo_off,
        observe=_observe_sheet_row("wemo_log"),
    )

    suite["A2"] = AppletSpec(
        key="A2",
        name="Turn on my Hue light from the Wemo light switch.",
        flow="IoT -> IoT",
        group="A1-A4",
        variants={
            OFFICIAL: (
                TriggerRef("wemo", "switch_activated", dict(switch)),
                ActionRef("philips_hue", "turn_on_lights", dict(lamp)),
            ),
            E1: (
                TriggerRef("our_service", "wemo_activated", dict(switch)),
                ActionRef("philips_hue", "turn_on_lights", dict(lamp)),
            ),
            E2: (
                TriggerRef("our_service", "wemo_activated", dict(switch)),
                ActionRef("our_service", "turn_on_hue", dict(lamp)),
            ),
        },
        activate=_press_wemo_on,
        reset=lambda tb: (_reset_wemo_off(tb), _reset_lamp_off(tb)),
        observe=_observe_lamp_state(True),
    )

    suite["A3"] = AppletSpec(
        key="A3",
        name="When any new email arrives in gmail, blink the Hue light.",
        flow="WebApp -> IoT",
        group="A1-A4",
        variants={
            OFFICIAL: (
                TriggerRef("gmail", "new_email"),
                ActionRef("philips_hue", "blink_lights", dict(lamp)),
            ),
            E1: (
                TriggerRef("our_service", "gmail_new_email"),
                ActionRef("philips_hue", "blink_lights", dict(lamp)),
            ),
            E2: (
                TriggerRef("our_service", "gmail_new_email"),
                ActionRef("our_service", "blink_hue", dict(lamp)),
            ),
        },
        activate=lambda tb: _deliver_email(tb),
        reset=_reset_lamp_off,
        observe=_observe_lamp_effect("blink"),
    )

    suite["A4"] = AppletSpec(
        key="A4",
        name="Automatically save new gmail attachments to google drive.",
        flow="WebApp -> WebApp",
        group="A1-A4",
        variants={
            OFFICIAL: (
                TriggerRef("gmail", "new_attachment"),
                ActionRef("google_drive", "upload_file", {"user": "me", "name": "{{attachment}}"}),
            ),
            E1: (
                TriggerRef("our_service", "gmail_new_attachment"),
                ActionRef("google_drive", "upload_file", {"user": "me", "name": "{{attachment}}"}),
            ),
            E2: (
                TriggerRef("our_service", "gmail_new_attachment"),
                ActionRef("our_service", "upload_file", {"user": "me", "name": "{{attachment}}"}),
            ),
        },
        activate=lambda tb: _deliver_email(tb, attachments=("report.pdf",)),
        reset=_noop,
        observe=_observe_drive_upload,
    )

    suite["A5"] = AppletSpec(
        key="A5",
        name="Use Alexa's voice control to turn off the Hue light.",
        flow="Alexa -> IoT",
        group="A5-A7",
        variants={
            OFFICIAL: (
                TriggerRef("amazon_alexa", "say_phrase", {"phrase": "light off"}),
                ActionRef("philips_hue", "turn_off_lights", dict(lamp)),
            ),
            HOSTED_ALEXA: (
                TriggerRef("our_service", "alexa_phrase", {"phrase": "light off"}),
                ActionRef("philips_hue", "turn_off_lights", dict(lamp)),
            ),
        },
        activate=lambda tb: tb.echo.hear("Alexa, trigger light off"),
        reset=_reset_lamp_on,
        observe=_observe_lamp_state(False),
    )

    suite["A6"] = AppletSpec(
        key="A6",
        name="Use Alexa's voice control to actviate the Wemo switch.",
        flow="Alexa -> IoT",
        group="A5-A7",
        variants={
            OFFICIAL: (
                TriggerRef("amazon_alexa", "say_phrase", {"phrase": "switch on"}),
                ActionRef("wemo", "activate_switch", dict(switch)),
            ),
            HOSTED_ALEXA: (
                TriggerRef("our_service", "alexa_phrase", {"phrase": "switch on"}),
                ActionRef("wemo", "activate_switch", dict(switch)),
            ),
        },
        activate=lambda tb: tb.echo.hear("Alexa, trigger switch on"),
        reset=_reset_wemo_off,
        observe=_observe_wemo_on,
    )

    suite["A7"] = AppletSpec(
        key="A7",
        name="Keep a google spreadsheet of songs you listen to on Alexa.",
        flow="Alexa -> WebApp",
        group="A5-A7",
        variants={
            OFFICIAL: (
                TriggerRef("amazon_alexa", "song_played"),
                ActionRef("google_sheets", "add_row", {"sheet": "songs", "row": "{{song}}"}),
            ),
            HOSTED_ALEXA: (
                TriggerRef("our_service", "alexa_song_played"),
                ActionRef("google_sheets", "add_row", {"sheet": "songs", "row": "{{song}}"}),
            ),
        },
        activate=lambda tb: tb.echo.hear("Alexa, play experiment song"),
        reset=_noop,
        observe=_observe_sheet_row("songs"),
    )
    return suite


APPLET_SUITE: Dict[str, AppletSpec] = _build_suite()


def applet_spec(key: str) -> AppletSpec:
    """Look up one of A1-A7."""
    try:
        return APPLET_SUITE[key]
    except KeyError:
        raise KeyError(f"unknown applet key {key!r}; expected A1..A7") from None


def applet_keys(group: Optional[str] = None) -> List[str]:
    """All applet keys, optionally restricted to a group ("A1-A4"/"A5-A7")."""
    return [k for k, spec in APPLET_SUITE.items() if group is None or spec.group == group]
