"""Figure 4: T2A latency of the seven applets on official services.

"Over a period of three days, the testbed executed each applet 50 times
at different time[s]" — A1-A4's latency is large and highly variable
(quartiles 58/84/122 s, extreme ~15 min), while A5-A7 (Alexa triggers,
whose realtime hints the engine honours) execute in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.simcore.rng import quantiles
from repro.testbed.applets import APPLET_SUITE, HOSTED_ALEXA
from repro.testbed.controller import TestController
from repro.testbed.testbed import Testbed, TestbedConfig


@dataclass
class T2AResults:
    """Per-applet latency samples plus group aggregation."""

    latencies: Dict[str, List[float]] = field(default_factory=dict)

    def group(self, group_name: str) -> List[float]:
        """Pooled latencies of one applet group ("A1-A4" or "A5-A7")."""
        pooled: List[float] = []
        for key, samples in self.latencies.items():
            if APPLET_SUITE[key].group == group_name:
                pooled.extend(samples)
        return pooled

    def group_quartiles(self, group_name: str) -> List[float]:
        """25th/50th/75th percentiles of a group (Figure 4's headline stats)."""
        return quantiles(self.group(group_name), (0.25, 0.50, 0.75))

    def maximum(self, group_name: str) -> float:
        """Worst-case latency in a group (the paper saw ~15 minutes)."""
        return max(self.group(group_name))


def run_official_t2a(
    keys: List[str] = ("A1", "A2", "A3", "A4", "A5", "A6", "A7"),
    runs: int = 50,
    seed: int = 7,
    spacing: float = 120.0,
) -> T2AResults:
    """Run the Figure 4 experiment.

    Each applet runs in its own fresh testbed (isolating its trigger
    stream, as the paper's per-applet experiments effectively did) with a
    seed derived from the master seed.
    """
    results = T2AResults()
    for index, key in enumerate(keys):
        testbed = Testbed(TestbedConfig(seed=seed * 1000 + index)).build()
        controller = TestController(testbed)
        results.latencies[key] = controller.measure_t2a(key, runs=runs, spacing=spacing)
    return results


def run_hosted_alexa_t2a(key: str = "A5", runs: int = 20, seed: int = 11) -> List[float]:
    """The "host Alexa on our service" observation.

    §4: "When we use our own service to host Alexa, its latency becomes
    large" — Our Service receives the same Alexa-cloud intents, but its
    realtime hints are not honoured by the engine, so latency reverts to
    the polling residual.
    """
    testbed = Testbed(TestbedConfig(seed=seed, custom_service_realtime=True)).build()
    testbed.custom_service.host_alexa(testbed.alexa_cloud.address)
    testbed.run_for(5.0)
    controller = TestController(testbed)
    return controller.measure_t2a(key, runs=runs, variant=HOSTED_ALEXA)
