"""Figure 7: concurrent execution of two applets sharing one trigger.

"Users can create two applets with the same trigger ... to realize 'if A
then B and C'.  When A is triggered, ideally B and C should be executed
at the same time."  The paper measures the T2A latency *difference*
between "turn on Hue light when email arrives" and "activate WeMo switch
when email arrives" across 20 tests and finds it ranges from −60 to
+140 s — because each applet has its own (fluctuating) polling schedule
and poll responses are not shared across applets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.applet import ActionRef, TriggerRef
from repro.testbed.applets import _deliver_email, _reset_lamp_off, _reset_wemo_off
from repro.testbed.testbed import TEST_USER, Testbed, TestbedConfig


@dataclass
class ConcurrentResult:
    """Latency pairs and differences across runs."""

    hue_latencies: List[Optional[float]]
    wemo_latencies: List[Optional[float]]

    @property
    def differences(self) -> List[float]:
        """Per-run (hue − wemo) T2A difference, for completed pairs."""
        return [
            hue - wemo
            for hue, wemo in zip(self.hue_latencies, self.wemo_latencies)
            if hue is not None and wemo is not None
        ]

    @property
    def spread(self) -> float:
        """max − min of the differences (the paper's range is ~200 s)."""
        diffs = self.differences
        if not diffs:
            return 0.0
        return max(diffs) - min(diffs)


def _observe_lamp_on(testbed: Testbed, since: float) -> Optional[float]:
    for rec in testbed.trace.query(kind="device_state_changed", source="lamp1", since=since):
        if rec.get("key") == "on" and rec.get("value") is True:
            return rec.time
    return None


def _observe_wemo_on(testbed: Testbed, since: float) -> Optional[float]:
    for rec in testbed.trace.query(kind="device_state_changed", source="wemo1", since=since):
        if rec.get("key") == "on" and rec.get("value") is True:
            return rec.time
    return None


def run_concurrent_experiment(
    runs: int = 20, seed: int = 7, timeout: float = 1800.0, spacing: float = 120.0
) -> ConcurrentResult:
    """Run the Figure 7 experiment.

    Two applets share the trigger "any new email arrives"; per run, one
    email is delivered and the completion times of both actions are
    recorded.
    """
    testbed = Testbed(TestbedConfig(seed=seed)).build()
    engine = testbed.engine
    engine.install_applet(
        user=TEST_USER,
        name="Turn on Hue light when email arrives",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef("philips_hue", "turn_on_lights", {"lamp_id": "lamp1"}),
    )
    engine.install_applet(
        user=TEST_USER,
        name="Activate WeMo switch when email arrives",
        trigger=TriggerRef("gmail", "new_email"),
        action=ActionRef("wemo", "activate_switch", {"device_id": "wemo1"}),
    )
    testbed.run_for(10.0)

    hue_latencies: List[Optional[float]] = []
    wemo_latencies: List[Optional[float]] = []
    for _ in range(runs):
        _reset_lamp_off(testbed)
        _reset_wemo_off(testbed)
        testbed.run_for(30.0)
        trigger_time = testbed.sim.now
        _deliver_email(testbed)
        deadline = trigger_time + timeout
        hue_at = wemo_at = None
        while testbed.sim.now < deadline and (hue_at is None or wemo_at is None):
            testbed.run_for(0.5)
            if hue_at is None:
                hue_at = _observe_lamp_on(testbed, trigger_time)
            if wemo_at is None:
                wemo_at = _observe_wemo_on(testbed, trigger_time)
        hue_latencies.append(None if hue_at is None else hue_at - trigger_time)
        wemo_latencies.append(None if wemo_at is None else wemo_at - trigger_time)
        testbed.run_for(testbed.rng.uniform(0.2 * spacing, 1.8 * spacing))
    return ConcurrentResult(hue_latencies=hue_latencies, wemo_latencies=wemo_latencies)
