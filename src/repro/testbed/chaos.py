"""Chaos scenarios: fault plans driven against a dedicated trigger/action world.

A :class:`ChaosWorld` is the smallest topology that exercises every
resilience mechanism end to end — one engine, one trigger ("sensor")
service, one action ("sink") service, joined through a core router — so
the effects of a :class:`~repro.faults.plan.FaultPlan` can be measured
precisely:

* every injected event carries its injection time, so trigger-to-action
  latency is measured at the *delivery* point (the sink's executor), not
  just at dispatch — retries and breaker shedding are visible in T2A;
* the engine's action accounting (delivered + dead-lettered + in-retry)
  is checked against dispatches: a chaos run proves no action is
  silently lost;
* the world snapshots its metrics via
  :func:`~repro.obs.metrics.deterministic_snapshot`, so the same
  ``(scenario, seed)`` serializes byte-identically run after run
  (``make chaos-check``).

Three scenarios ship built in:

``outage``
    A 60 s full outage of the action service, landing on top of an
    event burst — actions retry, shed against the open breaker, and
    dead-letter; T2A recovers to baseline after the heal.
``partition``
    The engine↔core link partitions for 40 s and heals — polls fail
    fast as connection-refused, events buffer at the (healthy) sensor,
    and delivery catches up after the heal.
``flappy``
    The sensor flaps (down half of every 24 s) for three minutes under
    steady load — a soak proving dedup and delivery conservation
    through repeated short outages.
``brownout``
    The sensor browns out for 120 s (50% of requests rejected, +100 ms
    service time) under steady load — the partial-failure mode the
    consecutive-failure breaker never trips on.  With
    :class:`~repro.engine.delivery.DeliveryPolicy` enabled
    (``delivery=`` / ``repro chaos --adaptive``) the run measures the
    adaptive stretch: arrivals at the victim during the fault window
    (sampled exactly by a :class:`_FaultWindowWatcher`), the post-heal
    stretch factors, and the post-heal poll-interval quartiles against
    the base policy's — the ≥3× request-rate drop and the §4
    distribution restoration are both pinned by ``make degrade-check``.

:class:`ShardedChaosWorld` scales the same experiments to a
:class:`~repro.engine.sharding.ShardedEngine` fleet: several
sensor/sink pairs spread across N shards, with every scenario's fault
retargeted to exactly one "victim" pair (and, for partitions, its home
shard's uplink).  A sharded run proves *isolation* — the victim shard's
breaker opens and recovers while the other shards' T2A matches a
fault-free run — on top of the fleet-wide conservation invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.applet import ActionRef, TriggerRef
from repro.engine.config import EngineConfig
from repro.engine.delivery import (
    AdaptiveDeliveryPolicy,
    DEGRADATION_LEVEL_NAMES,
    DeliveryPolicy,
    sampled_interval_quartiles,
)
from repro.engine.engine import IftttEngine
from repro.engine.oauth import OAuthAuthority
from repro.engine.push import DELIVERY_MODES, PushDeliveryPolicy, PushPolicy
from repro.engine.poller import FixedPollingPolicy
from repro.engine.replay import ReplayController
from repro.engine.resilience import ReplayPolicy
from repro.engine.sharding import (
    ShardedEngine,
    merged_fleet_snapshot,
    stable_service_hash,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    link_down,
    service_brownout,
    service_flap,
    service_outage,
)
from repro.iot.gateway import GatewayRouter
from repro.net.address import Address
from repro.net.latency import cloud_internal_latency
from repro.net.network import CrossShardRouter, Network
from repro.obs.metrics import (
    MetricsRegistry,
    deterministic_snapshot,
    merge_snapshots,
)
from repro.services.endpoints import ActionEndpoint, TriggerEndpoint
from repro.services.partner import PartnerService
from repro.simcore.parallel import DEFAULT_LOOKAHEAD, ShardedSimulator
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator
from repro.simcore.trace import Trace

ENGINE_HOST = "engine.ifttt.cloud"
CORE_HOST = "core.internet"
SENSOR_HOST = "sensor.cloud"
SINK_HOST = "sink.cloud"
SENSOR_SLUG = "chaos_sensor"
SINK_SLUG = "chaos_sink"
CHAOS_USER = "chaos"

#: Extra settle time after the injection horizon so in-flight retries,
#: breaker recoveries, and buffered events all conclude before the
#: world's accounting is read.
DRAIN_SECONDS = 90.0


def _apply_delivery_mode(config: EngineConfig, delivery_mode: str) -> EngineConfig:
    """Rewrite an engine config for one of the three delivery modes.

    ``poll`` leaves the config untouched (the byte-identical default).
    ``hint`` honours every service's realtime hints
    (``realtime_allowlist=None``); the world then builds its sensors
    with ``realtime=True``.  ``push`` installs a default
    :class:`~repro.engine.push.PushPolicy` (an explicitly configured one
    wins) and the world builds its sensors with ``push=True``, so the
    contract negotiates at publication.
    """
    if delivery_mode not in DELIVERY_MODES:
        raise ValueError(
            f"unknown delivery_mode {delivery_mode!r}; "
            f"expected one of {DELIVERY_MODES}"
        )
    if delivery_mode == "hint":
        return replace(config, realtime_allowlist=None)
    if delivery_mode == "push" and config.push_policy is None:
        return replace(config, push_policy=PushPolicy())
    return config


def _cadence(start: float, stop: float, step: float) -> Tuple[float, ...]:
    times = []
    t = start
    while t < stop:
        times.append(round(t, 6))
        t += step
    return tuple(times)


@dataclass(frozen=True)
class ChaosScenario:
    """One named chaos experiment: an event schedule plus a fault plan."""

    name: str
    description: str
    event_times: Tuple[float, ...]
    plan: FaultPlan

    @property
    def horizon(self) -> float:
        """When injection and faulting are both over."""
        last_event = self.event_times[-1] if self.event_times else 0.0
        return max(last_event, self.plan.end_time)


CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    "outage": ChaosScenario(
        name="outage",
        description="60 s action-service outage during an event burst",
        event_times=tuple(sorted(
            _cadence(10.0, 190.0, 4.0) + _cadence(70.0, 90.0, 1.0)
        )),
        plan=FaultPlan((service_outage(SINK_SLUG, at=60.0, duration=60.0),)),
    ),
    "partition": ChaosScenario(
        name="partition",
        description="engine↔core partition for 40 s, then heal",
        event_times=_cadence(10.0, 190.0, 4.0),
        plan=FaultPlan((link_down(ENGINE_HOST, CORE_HOST, at=60.0, duration=40.0),)),
    ),
    "flappy": ChaosScenario(
        name="flappy",
        description="sensor service flapping (12 s down / 12 s up) soak",
        event_times=_cadence(10.0, 280.0, 4.0),
        plan=FaultPlan((
            service_flap(SENSOR_SLUG, at=30.0, duration=180.0, period=24.0, duty=0.5),
        )),
    ),
    "brownout": ChaosScenario(
        name="brownout",
        description="sensor brownout for 120 s (50% rejects, +100 ms)",
        event_times=_cadence(10.0, 250.0, 4.0),
        plan=FaultPlan((
            service_brownout(
                SENSOR_SLUG, at=60.0, duration=120.0,
                error_rate=0.5, extra_latency=0.1,
            ),
        )),
    ),
}


def chaos_scenario(name: str) -> ChaosScenario:
    """Look up a built-in chaos scenario by name."""
    try:
        return CHAOS_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; expected one of {sorted(CHAOS_SCENARIOS)}"
        ) from None


class _FaultWindowWatcher:
    """Exact per-service request arrivals inside each fault window.

    The adaptive-delivery acceptance criterion ("the victim's request
    rate drops ≥3× during the brownout") needs the number of requests
    that *arrived at the victim* strictly inside the fault window —
    sampled, not inferred from rates.  The watcher schedules one edge
    callback at each service fault's ``at`` and ``end`` and differences
    the node's ``requests_served`` counter between the two, so the count
    is exact regardless of poll policy, retries, or batching.  The edge
    events are themselves deterministic (fixed times, no RNG), so
    watching does not perturb the run-to-run snapshot gates.
    """

    def __init__(self, sim: Simulator, services_by_slug: Dict[str, PartnerService]) -> None:
        self.sim = sim
        self.services = services_by_slug
        #: slug -> requests that arrived inside that service's fault windows.
        self.requests: Dict[str, int] = {}
        self._window_starts: Dict[str, List[int]] = {}

    def watch(self, plan: FaultPlan) -> None:
        """Arm edge samplers for every service fault in the plan."""
        for spec in plan:
            service = self.services.get(spec.service) if spec.service else None
            if service is None:
                continue
            self.sim.schedule(
                max(0.0, spec.at - self.sim.now), self._edge, spec.service, service, True,
                label=f"chaos-window-open:{spec.service}",
            )
            self.sim.schedule(
                max(0.0, spec.end - self.sim.now), self._edge, spec.service, service, False,
                label=f"chaos-window-close:{spec.service}",
            )

    def _edge(self, slug: str, service: PartnerService, opening: bool) -> None:
        served = service.requests_served
        if opening:
            self._window_starts.setdefault(slug, []).append(served)
            return
        starts = self._window_starts.get(slug)
        if starts:
            self.requests[slug] = self.requests.get(slug, 0) + (served - starts.pop(0))


@dataclass
class ReplayReport:
    """The catch-up burst a dead-letter replay produced, measured.

    §6's fleet-load discussion warns that recovery traffic is
    *instantaneously* bursty: after a heal, every deferred delivery
    wants to go out at once.  This report quantifies that burst —
    request rate, duration, and the T2A the replayed events finally
    achieved — so batched dispatch (one request per
    :attr:`~repro.engine.resilience.ReplayPolicy.batch_limit` actions)
    can be compared against single-shot replay on the same scenario.
    """

    batching: bool
    batch_limit: int
    replayed: int
    requests_sent: int
    delivered: int
    refailed: int
    drains: int
    #: First re-dispatch and last replayed delivery (sim seconds).
    burst_start: Optional[float]
    burst_end: Optional[float]
    #: Trigger-to-action latency of each replayed delivery, measured
    #: from the action's *original* dispatch commitment.
    t2a: List[float] = field(default_factory=list)
    #: Mean engine request rate over the whole run, for the burst ratio.
    steady_requests_per_second: float = 0.0

    @property
    def duration(self) -> float:
        """Burst envelope length in seconds (0.0 if nothing replayed)."""
        if self.burst_start is None or self.burst_end is None:
            return 0.0
        return max(0.0, self.burst_end - self.burst_start)

    @property
    def requests_per_second(self) -> float:
        """Replay requests over the burst envelope."""
        if self.requests_sent == 0:
            return 0.0
        duration = self.duration
        return self.requests_sent / duration if duration > 0 else float("inf")

    @property
    def burst_ratio(self) -> float:
        """Burst request rate over the run's steady rate (§6's
        peak-to-mean burstiness, applied to recovery traffic)."""
        if self.steady_requests_per_second <= 0:
            return 0.0
        rps = self.requests_per_second
        return rps / self.steady_requests_per_second if rps != float("inf") else float("inf")

    def t2a_mean(self) -> float:
        return sum(self.t2a) / len(self.t2a) if self.t2a else 0.0

    def t2a_max(self) -> float:
        return max(self.t2a) if self.t2a else 0.0

    def summary_lines(self) -> List[str]:
        mode = (
            f"batched (limit={self.batch_limit})" if self.batching else "unbatched"
        )
        lines = [
            f"  replay [{mode}]: replayed={self.replayed} "
            f"requests={self.requests_sent} delivered={self.delivered} "
            f"refailed={self.refailed} drains={self.drains}",
        ]
        if self.replayed:
            lines.append(
                f"    burst: {self.duration:.2f}s at "
                f"{self.requests_per_second:.2f} req/s "
                f"({self.burst_ratio:.1f}x steady "
                f"{self.steady_requests_per_second:.2f} req/s)"
            )
        if self.t2a:
            lines.append(
                f"    replayed t2a: n={len(self.t2a)} "
                f"mean={self.t2a_mean():.2f}s max={self.t2a_max():.2f}s"
            )
        return lines


def _replay_report(
    controllers: List[ReplayController], ran_until: float, total_requests: int
) -> Optional[ReplayReport]:
    """Fold one or more shard-local replay controllers into one report."""
    controllers = [c for c in controllers if c is not None]
    if not controllers:
        return None
    policy = controllers[0].policy
    starts = [c.first_dispatch_at for c in controllers if c.first_dispatch_at is not None]
    ends = [c.last_delivery_at for c in controllers if c.last_delivery_at is not None]
    deliveries = sorted(
        ((at, record) for c in controllers for at, record in c.deliveries),
        key=lambda pair: pair[0],
    )
    return ReplayReport(
        batching=policy.batching,
        batch_limit=policy.batch_limit,
        replayed=sum(c.dead_letters_replayed for c in controllers),
        requests_sent=sum(c.requests_sent for c in controllers),
        delivered=sum(c.actions_delivered for c in controllers),
        refailed=sum(c.actions_failed for c in controllers),
        drains=sum(c.drains for c in controllers),
        burst_start=min(starts) if starts else None,
        burst_end=max(ends) if ends else None,
        t2a=[max(0.0, at - record.created_at) for at, record in deliveries],
        steady_requests_per_second=(
            total_requests / ran_until if ran_until > 0 else 0.0
        ),
    )


def _quartile_drift(
    post: Optional[Tuple[float, float, float]],
    base: Optional[Tuple[float, float, float]],
) -> float:
    """Worst relative quartile deviation (0.0 when either side is unmeasured)."""
    if post is None or base is None:
        return 0.0
    drifts = [abs(p - b) / b for p, b in zip(post, base) if b > 0]
    return max(drifts) if drifts else 0.0


def _delivery_extras(
    engines: List[IftttEngine], probe_policy: Any = None
) -> Dict[str, Any]:
    """Post-run adaptive-delivery readout, folded across engines.

    Stretch factors and ladder levels are max-merged across engines —
    the same algebra the gauge merge applies to shard-scoped
    ``degradation_level`` families.  Overload dead letters are counted
    from the letters themselves (reason ``"overload"``) so the readout
    is exact even without a :class:`DeliveryController`.  When
    ``probe_policy`` is the victim applet's live
    :class:`AdaptiveDeliveryPolicy`, its post-run interval distribution
    is sampled against its wrapped base policy's — the probes run on a
    private seeded RNG and touch no metrics, so they cannot perturb the
    already-taken snapshot.
    """
    stretch: Dict[str, float] = {}
    levels: Dict[str, int] = {}
    overload: Dict[str, int] = {}
    for engine in engines:
        for letter in engine.dead_letters:
            if letter.reason == "overload":
                overload[letter.service_slug] = overload.get(letter.service_slug, 0) + 1
        if engine.delivery is None:
            continue
        for slug, health in engine.delivery.healths().items():
            stretch[slug] = max(stretch.get(slug, 0.0), health.stretch)
        for slug, level in engine.delivery.levels().items():
            levels[slug] = max(levels.get(slug, 0), level)
    extras: Dict[str, Any] = {
        "post_heal_stretch": stretch,
        "degradation_levels": levels,
        "overload_dead_letters_by_service": overload,
        "post_heal_quartiles": None,
        "baseline_quartiles": None,
    }
    if isinstance(probe_policy, PushDeliveryPolicy):
        # Push wraps outermost; the adaptive restoration proof applies to
        # the policy it wraps (push-mode applets poll at the safety net
        # while the push rung holds, so their *polling* distribution is
        # the wrapped policy's).
        probe_policy = probe_policy.base
    if isinstance(probe_policy, AdaptiveDeliveryPolicy):
        extras["post_heal_quartiles"] = sampled_interval_quartiles(probe_policy.clone())
        extras["baseline_quartiles"] = sampled_interval_quartiles(probe_policy.base.clone())
    return extras


def _delivery_summary_lines(result: Any) -> List[str]:
    """Human-readable lines for the adaptive-delivery readout (shared by
    :class:`ChaosResult` and :class:`ShardedChaosResult`)."""
    lines: List[str] = []
    if result.fault_window_requests:
        window = " ".join(
            f"{slug}={count}"
            for slug, count in sorted(result.fault_window_requests.items())
        )
        lines.append(f"  fault-window arrivals: {window}")
    if result.post_heal_stretch:
        stretch = " ".join(
            f"{slug}={value:.2f}"
            for slug, value in sorted(result.post_heal_stretch.items())
        )
        levels = " ".join(
            f"{slug}={DEGRADATION_LEVEL_NAMES[level]}"
            for slug, level in sorted(result.degradation_levels.items())
        )
        lines.append(f"  delivery: post-heal stretch {stretch}; levels {levels}")
        if result.overload_dead_letters_by_service:
            shed = " ".join(
                f"{slug}={count}"
                for slug, count in sorted(result.overload_dead_letters_by_service.items())
            )
            lines.append(f"  delivery: overload dead letters {shed}")
        if result.post_heal_quartiles is not None and result.baseline_quartiles is not None:
            post = "/".join(f"{q:.1f}" for q in result.post_heal_quartiles)
            base = "/".join(f"{q:.1f}" for q in result.baseline_quartiles)
            lines.append(
                f"  delivery: post-heal interval quartiles {post}s "
                f"(base {base}s, drift {result.post_heal_quartile_drift:.1%})"
            )
    return lines


@dataclass
class ChaosResult:
    """Everything a chaos run proves, in one record."""

    scenario: str
    seed: int
    ran_until: float
    events_injected: int
    events_observed: int
    actions_dispatched: int
    actions_delivered: int
    actions_dead_lettered: int
    actions_in_retry: int
    actions_in_replay: int
    t2a_by_phase: Dict[str, List[float]]
    breaker_transitions: List[Tuple[float, str, str, str]]
    faults_activated: int
    faults_deactivated: int
    engine_stats: Dict[str, int]
    snapshot: Dict[str, Any] = field(repr=False)
    replay: Optional[ReplayReport] = None
    #: slug -> requests that arrived inside that service's fault windows
    #: (sampled exactly by the :class:`_FaultWindowWatcher`).
    fault_window_requests: Dict[str, int] = field(default_factory=dict)
    #: Adaptive-delivery readout — empty without a ``delivery=`` policy.
    post_heal_stretch: Dict[str, float] = field(default_factory=dict)
    degradation_levels: Dict[str, int] = field(default_factory=dict)
    overload_dead_letters_by_service: Dict[str, int] = field(default_factory=dict)
    #: Victim-applet interval quartiles sampled post-run from the live
    #: adaptive policy vs. its wrapped base — equal (within drift) once
    #: the stretch has decayed, i.e. the §4 distribution is restored.
    post_heal_quartiles: Optional[Tuple[float, float, float]] = None
    baseline_quartiles: Optional[Tuple[float, float, float]] = None

    @property
    def post_heal_quartile_drift(self) -> float:
        """Worst relative deviation of the post-heal quartiles from the
        base policy's (0.0 when the run measured no quartiles)."""
        return _quartile_drift(self.post_heal_quartiles, self.baseline_quartiles)

    @property
    def actions_silently_lost(self) -> int:
        """Dispatches unaccounted for — the invariant says zero."""
        return (
            self.actions_dispatched
            - self.actions_delivered
            - self.actions_dead_lettered
            - self.actions_in_retry
            - self.actions_in_replay
        )

    def t2a_max(self, phase: str) -> float:
        """Worst T2A in one phase (0.0 when the phase saw no deliveries)."""
        values = self.t2a_by_phase.get(phase, [])
        return max(values) if values else 0.0

    def summary(self) -> str:
        """A human-readable multi-line report."""
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}, "
            f"t={self.ran_until:g}s)",
            f"  events:  injected={self.events_injected} "
            f"observed={self.events_observed}",
            f"  actions: dispatched={self.actions_dispatched} "
            f"delivered={self.actions_delivered} "
            f"dead-lettered={self.actions_dead_lettered} "
            f"in-retry={self.actions_in_retry} "
            f"silently-lost={self.actions_silently_lost}",
            f"  faults:  activated={self.faults_activated} "
            f"deactivated={self.faults_deactivated}",
            f"  engine:  retries poll={self.engine_stats['poll_retries']} "
            f"action={self.engine_stats['action_retries']}; shed "
            f"polls={self.engine_stats['polls_shed']} "
            f"actions={self.engine_stats['actions_shed']}",
        ]
        if self.replay is not None:
            lines.extend(self.replay.summary_lines())
        lines.extend(_delivery_summary_lines(self))
        for phase in ("before", "during", "after"):
            values = self.t2a_by_phase.get(phase, [])
            if values:
                mean = sum(values) / len(values)
                lines.append(
                    f"  t2a[{phase:6s}]: n={len(values)} mean={mean:.2f}s "
                    f"max={max(values):.2f}s"
                )
        for at, service, old, new in self.breaker_transitions:
            lines.append(f"  breaker {service}: {old} -> {new} at t={at:.2f}s")
        return "\n".join(lines)


class ChaosWorld:
    """The minimal fault-injection topology (engine, sensor, sink).

    (``__test__`` opts the class out of pytest collection.)
    """

    __test__ = False

    def __init__(
        self,
        seed: int = 7,
        poll_interval: float = 5.0,
        engine_config: Optional[EngineConfig] = None,
        replay: Optional[ReplayPolicy] = None,
        delivery: Optional[DeliveryPolicy] = None,
        delivery_mode: str = "poll",
    ) -> None:
        self.seed = seed
        self.delivery_mode = delivery_mode
        self.sim = Simulator()
        self.rng = Rng(seed=seed, name="chaos")
        self.trace = Trace()
        self.metrics = MetricsRegistry()
        self.sim.metrics = self.metrics
        self.network = Network(self.sim, self.rng.fork("network"), metrics=self.metrics)
        config = engine_config or EngineConfig(
            poll_policy=FixedPollingPolicy(poll_interval),
            initial_poll_delay=0.5,
            poll_timeout=10.0,
            action_timeout=10.0,
        )
        if replay is not None:
            config = replace(config, replay_policy=replay)
        if delivery is not None:
            config = replace(config, delivery_policy=delivery)
        config = _apply_delivery_mode(config, delivery_mode)
        self.engine = self.network.add_node(IftttEngine(
            Address(ENGINE_HOST), config=config,
            rng=self.rng.fork("engine"), trace=self.trace, service_time=0.0,
        ))
        self.core = self.network.add_node(GatewayRouter(Address(CORE_HOST)))
        self.sensor = self.network.add_node(PartnerService(
            Address(SENSOR_HOST), slug=SENSOR_SLUG, trace=self.trace, service_time=0.0,
            realtime=delivery_mode == "hint", push=delivery_mode == "push",
        ))
        self.sink = self.network.add_node(PartnerService(
            Address(SINK_HOST), slug=SINK_SLUG, trace=self.trace, service_time=0.0,
        ))
        for node in (self.engine, self.sensor, self.sink):
            self.network.connect(node.address, self.core.address, cloud_internal_latency())

        #: ``(delivered_at, fields)`` per sink execution, in delivery order.
        self.delivered: List[Tuple[float, Dict[str, Any]]] = []
        self.events_injected = 0
        self.sensor.add_trigger(TriggerEndpoint(slug="tick", name="Tick"))
        self.sink.add_action(ActionEndpoint(
            slug="deliver", name="Deliver",
            executor=lambda fields: self.delivered.append((self.sim.now, dict(fields))),
        ))
        for service in (self.sensor, self.sink):
            self.engine.publish_service(service)
            authority = OAuthAuthority(service.slug)
            authority.register_user(CHAOS_USER, "pw")
            self.engine.connect_service(CHAOS_USER, service, authority, "pw")
        self.applet = self.engine.install_applet(
            user=CHAOS_USER, name="tick->deliver",
            trigger=TriggerRef(SENSOR_SLUG, "tick"),
            action=ActionRef(SINK_SLUG, "deliver",
                             {"n": "{{n}}", "injected_at": "{{injected_at}}"}),
        )
        self.injector = FaultInjector(
            self.sim, self.network,
            services=(self.sensor, self.sink),
            rng=self.rng.fork("faults"),
            metrics=self.metrics, trace=self.trace,
        )
        self.watcher = _FaultWindowWatcher(
            self.sim, {SENSOR_SLUG: self.sensor, SINK_SLUG: self.sink}
        )

    def schedule_events(self, times: Tuple[float, ...]) -> None:
        """Schedule one sensor event per entry (absolute sim seconds)."""
        for index, at in enumerate(times):
            self.sim.schedule(
                max(0.0, at - self.sim.now), self._inject, index, at,
                label=f"chaos-event#{index}",
            )

    def _inject(self, index: int, planned_at: float) -> None:
        self.events_injected += 1
        self.sensor.ingest_event("tick", {"n": index, "injected_at": planned_at})

    def run(self, scenario: ChaosScenario, drain: float = DRAIN_SECONDS) -> ChaosResult:
        """Apply the scenario's plan, drive its events, settle, account."""
        self.injector.apply(scenario.plan)
        self.watcher.watch(scenario.plan)
        self.schedule_events(scenario.event_times)
        until = scenario.horizon + drain
        self.sim.run_until(until)
        return self._result(scenario, until)

    def _result(self, scenario: ChaosScenario, until: float) -> ChaosResult:
        engine = self.engine
        t2a_by_phase: Dict[str, List[float]] = {}
        for delivered_at, fields in self.delivered:
            injected_at = float(fields["injected_at"])
            phase = _phase_of(scenario.plan, injected_at)
            t2a_by_phase.setdefault(phase, []).append(delivered_at - injected_at)
        transitions = sorted(
            (at, slug, old.value, new.value)
            for slug, breaker in engine._breakers.items()
            for at, old, new in breaker.transitions
        )
        stats = engine.stats()
        snapshot = deterministic_snapshot(self.metrics)
        extras = _delivery_extras(
            [engine],
            probe_policy=engine._applets[self.applet.applet_id].policy,
        )
        return ChaosResult(
            scenario=scenario.name,
            seed=self.seed,
            ran_until=until,
            events_injected=self.events_injected,
            events_observed=int(self.metrics.total("engine.events_observed")),
            actions_dispatched=engine.actions_dispatched,
            actions_delivered=engine.actions_delivered,
            actions_dead_lettered=len(engine.dead_letters),
            actions_in_retry=engine.actions_in_retry,
            actions_in_replay=engine.actions_in_replay,
            t2a_by_phase=t2a_by_phase,
            breaker_transitions=transitions,
            faults_activated=self.injector.activations,
            faults_deactivated=self.injector.deactivations,
            engine_stats=stats,
            snapshot=snapshot,
            replay=_replay_report(
                [engine.replay], until,
                stats["polls_sent"] + stats["actions_dispatched"],
            ),
            fault_window_requests=dict(self.watcher.requests),
            **extras,
        )


def _phase_of(plan: FaultPlan, t: float) -> str:
    """Which fault phase an injection time falls into."""
    if not plan.specs:
        return "before"
    if any(spec.at <= t < spec.end for spec in plan):
        return "during"
    if t >= plan.end_time:
        return "after"
    return "before"


def run_chaos_scenario(
    name: str,
    seed: int = 7,
    plan: Optional[FaultPlan] = None,
    poll_interval: float = 5.0,
    drain: float = DRAIN_SECONDS,
    replay: Optional[ReplayPolicy] = None,
    delivery: Optional[DeliveryPolicy] = None,
    delivery_mode: str = "poll",
) -> ChaosResult:
    """Run one chaos scenario end to end and return its accounting.

    ``plan`` overrides the scenario's built-in fault plan (the event
    schedule is kept), which is how ``--faults PLAN.json`` plugs in.
    ``replay`` enables dead-letter replay with the given policy (see
    ``--replay``); the result then carries a :class:`ReplayReport`.
    ``delivery`` enables health-aware adaptive delivery (see
    ``--adaptive``); the result then carries post-heal stretch, ladder
    levels, and interval-quartile measurements.  ``delivery_mode``
    selects how sensor events reach the engine — ``poll`` (default),
    ``hint`` (realtime hints, all honoured), or ``push`` (payload
    notifications under the push contract; see ``--delivery``).
    """
    scenario = chaos_scenario(name)
    if plan is not None:
        scenario = ChaosScenario(
            name=scenario.name,
            description=f"{scenario.description} (custom plan)",
            event_times=scenario.event_times,
            plan=plan,
        )
    world = ChaosWorld(
        seed=seed, poll_interval=poll_interval, replay=replay, delivery=delivery,
        delivery_mode=delivery_mode,
    )
    return world.run(scenario, drain=drain)


# -- sharded chaos ----------------------------------------------------------------

#: Sensor/sink pairs a sharded chaos world instantiates by default.  Six
#: pairs spread (by CRC32) across all shards of every fleet size the
#: acceptance runs use, so "the other shards" is never an empty set.
SHARDED_PAIRS = 6

SHARD_HOST_PATTERN = "engine{shard}.ifttt.cloud"


def retarget_plan_for_shards(
    plan: FaultPlan, sensor_slug: str, sink_slug: str, engine_host: str
) -> FaultPlan:
    """Rewrite an unsharded fault plan against a sharded world's names.

    The built-in scenarios (and any ``--faults PLAN.json`` written for
    the single-engine world) speak the unsharded vocabulary —
    ``chaos_sensor`` / ``chaos_sink`` / ``engine.ifttt.cloud``.  A
    sharded world has ``chaos_sensor<p>`` pairs and ``engine<i>.*``
    hosts, so those references are retargeted onto the victim pair's
    sensor/sink and the victim shard's host; everything else (timing,
    rates, link endpoints like the core) passes through unchanged.
    """
    specs = []
    for spec in plan:
        changes: Dict[str, Any] = {}
        if spec.service == SENSOR_SLUG:
            changes["service"] = sensor_slug
        elif spec.service == SINK_SLUG:
            changes["service"] = sink_slug
        for attr in ("a", "b"):
            if getattr(spec, attr) == ENGINE_HOST:
                changes[attr] = engine_host
        specs.append(replace(spec, **changes) if changes else spec)
    return FaultPlan(tuple(specs))


@dataclass
class ShardedChaosResult:
    """A fleet-wide chaos run: per-shard accounting plus fleet totals."""

    scenario: str
    seed: int
    num_shards: int
    strategy: str
    victim_shard: int
    ran_until: float
    events_injected: int
    events_observed: int
    fleet_stats: Dict[str, int]
    shard_stats: List[Dict[str, int]]
    #: shard -> fault phase -> T2A samples for deliveries it owned.
    t2a_by_shard: Dict[int, Dict[str, List[float]]]
    breaker_transitions_by_shard: Dict[int, List[Tuple[float, str, str, str]]]
    faults_activated: int
    faults_deactivated: int
    assignments: Dict[str, int]
    shard_loads: List[int]
    snapshot: Dict[str, Any] = field(repr=False)
    merged_engine_snapshot: Dict[str, Any] = field(repr=False)
    replay: Optional[ReplayReport] = None
    #: slug -> requests that arrived inside that service's fault windows
    #: (sampled exactly by the :class:`_FaultWindowWatcher`).
    fault_window_requests: Dict[str, int] = field(default_factory=dict)
    #: Adaptive-delivery readout, max-merged across shards — empty
    #: without a ``delivery=`` policy.
    post_heal_stretch: Dict[str, float] = field(default_factory=dict)
    degradation_levels: Dict[str, int] = field(default_factory=dict)
    overload_dead_letters_by_service: Dict[str, int] = field(default_factory=dict)
    #: Victim-applet interval quartiles sampled post-run from the live
    #: adaptive policy vs. its wrapped base (victim shard's runtime).
    post_heal_quartiles: Optional[Tuple[float, float, float]] = None
    baseline_quartiles: Optional[Tuple[float, float, float]] = None
    #: Parallel-stepping readout — left at the defaults by the
    #: single-simulator :class:`ShardedChaosWorld`; populated by
    #: :class:`ParallelShardedChaosWorld` (``jobs=1`` is its serial
    #: stepping mode, byte-identical to ``jobs>1`` by construction).
    jobs: int = 1
    epochs: int = 0
    mailbox_messages: int = 0
    cross_shard_messages: int = 0

    @property
    def post_heal_quartile_drift(self) -> float:
        """Worst relative deviation of the post-heal quartiles from the
        base policy's (0.0 when the run measured no quartiles)."""
        return _quartile_drift(self.post_heal_quartiles, self.baseline_quartiles)

    @property
    def shard_silently_lost(self) -> List[int]:
        """Per-shard conservation residual — all zeros or the run failed."""
        return [
            stats["actions_dispatched"]
            - stats["actions_delivered"]
            - stats["actions_in_retry"]
            - stats["dead_letters"]
            - stats["actions_in_replay"]
            for stats in self.shard_stats
        ]

    @property
    def actions_silently_lost(self) -> int:
        """Fleet-wide conservation residual (sum of the per-shard ones)."""
        return sum(self.shard_silently_lost)

    def t2a_values(self, shards, phase: Optional[str] = None) -> List[float]:
        """T2A samples for a set of shards (one phase, or all phases)."""
        values: List[float] = []
        for shard in shards:
            by_phase = self.t2a_by_shard.get(shard, {})
            phases = [phase] if phase is not None else sorted(by_phase)
            for key in phases:
                values.extend(by_phase.get(key, []))
        return values

    @property
    def healthy_shards(self) -> List[int]:
        """Every shard except the victim."""
        return [s for s in range(self.num_shards) if s != self.victim_shard]

    def summary(self) -> str:
        """A human-readable multi-line fleet report."""
        stats = self.fleet_stats
        lines = [
            f"sharded chaos scenario {self.scenario!r} "
            f"(seed {self.seed}, shards={self.num_shards}, "
            f"strategy={self.strategy}, t={self.ran_until:g}s)",
            f"  victim shard: {self.victim_shard} "
            f"(loads: {self.shard_loads})",
            f"  events:  injected={self.events_injected} "
            f"observed={self.events_observed}",
            f"  actions: dispatched={stats['actions_dispatched']} "
            f"delivered={stats['actions_delivered']} "
            f"dead-lettered={stats['dead_letters']} "
            f"in-retry={stats['actions_in_retry']} "
            f"silently-lost={self.actions_silently_lost}",
            f"  faults:  activated={self.faults_activated} "
            f"deactivated={self.faults_deactivated}",
        ]
        if self.replay is not None:
            lines.extend(self.replay.summary_lines())
        lines.extend(_delivery_summary_lines(self))
        for shard in range(self.num_shards):
            tag = " (victim)" if shard == self.victim_shard else ""
            per = self.shard_stats[shard]
            t2a = self.t2a_values([shard])
            mean = sum(t2a) / len(t2a) if t2a else 0.0
            lines.append(
                f"  shard {shard}{tag}: applets={per['applets']} "
                f"delivered={per['actions_delivered']} "
                f"dead-lettered={per['dead_letters']} "
                f"shed={per['actions_shed']} "
                f"t2a mean={mean:.2f}s n={len(t2a)}"
            )
            for at, service, old, new in self.breaker_transitions_by_shard.get(shard, []):
                lines.append(
                    f"    breaker {service}: {old} -> {new} at t={at:.2f}s"
                )
        return "\n".join(lines)


class ShardedChaosWorld:
    """The chaos topology scaled out to a sharded engine fleet.

    ``pairs`` independent sensor/sink chains (``chaos_sensor<p>`` →
    ``chaos_sink<p>``) are installed through a
    :class:`~repro.engine.sharding.ShardedEngine`, landing on shards per
    the configured strategy.  Pair 0 is the designated *victim*: every
    scenario's fault plan is retargeted onto its sensor/sink — and, for
    engine-side partitions, onto its home shard's uplink — so exactly
    one shard takes the damage and the rest measure isolation.

    (``__test__`` opts the class out of pytest collection.)
    """

    __test__ = False

    def __init__(
        self,
        seed: int = 7,
        poll_interval: float = 5.0,
        num_shards: int = 4,
        shard_strategy: str = "service_hash",
        pairs: int = SHARDED_PAIRS,
        engine_config: Optional[EngineConfig] = None,
        replay: Optional[ReplayPolicy] = None,
        delivery: Optional[DeliveryPolicy] = None,
        delivery_mode: str = "poll",
    ) -> None:
        self.seed = seed
        self.delivery_mode = delivery_mode
        self.pairs = pairs
        self.sim = Simulator()
        self.rng = Rng(seed=seed, name="chaos")
        self.trace = Trace()
        self.metrics = MetricsRegistry()
        self.sim.metrics = self.metrics
        self.network = Network(self.sim, self.rng.fork("network"), metrics=self.metrics)
        config = engine_config or EngineConfig(
            poll_policy=FixedPollingPolicy(poll_interval),
            initial_poll_delay=0.5,
            poll_timeout=10.0,
            action_timeout=10.0,
        )
        config = replace(
            config,
            poll_policy=config.poll_policy.clone(),
            num_shards=num_shards,
            shard_strategy=shard_strategy,
            replay_policy=replay if replay is not None else config.replay_policy,
            delivery_policy=delivery if delivery is not None else config.delivery_policy,
        )
        config = _apply_delivery_mode(config, delivery_mode)
        self.fleet = ShardedEngine(
            self.network,
            config=config,
            rng=self.rng.fork("engine"),
            trace=self.trace,
            host_pattern=SHARD_HOST_PATTERN,
            service_time=0.0,
        )
        self.core = self.network.add_node(GatewayRouter(Address(CORE_HOST)))
        for shard in self.fleet.shards:
            self.network.connect(shard.address, self.core.address, cloud_internal_latency())

        #: ``(delivered_at, pair, fields)`` per sink execution.
        self.delivered: List[Tuple[float, int, Dict[str, Any]]] = []
        self.events_injected = 0
        self.sensors: List[PartnerService] = []
        self.sinks: List[PartnerService] = []
        for pair in range(pairs):
            sensor = self.network.add_node(PartnerService(
                Address(f"sensor{pair}.cloud"), slug=f"{SENSOR_SLUG}{pair}",
                trace=self.trace, service_time=0.0,
                realtime=delivery_mode == "hint", push=delivery_mode == "push",
            ))
            sensor.add_trigger(TriggerEndpoint(slug="tick", name="Tick"))
            sink = self.network.add_node(PartnerService(
                Address(f"sink{pair}.cloud"), slug=f"{SINK_SLUG}{pair}",
                trace=self.trace, service_time=0.0,
            ))
            sink.add_action(ActionEndpoint(
                slug="deliver", name="Deliver",
                executor=lambda fields, p=pair: self.delivered.append(
                    (self.sim.now, p, dict(fields))
                ),
            ))
            for node in (sensor, sink):
                self.network.connect(node.address, self.core.address, cloud_internal_latency())
            self.sensors.append(sensor)
            self.sinks.append(sink)
        for service in self.sensors + self.sinks:
            self.fleet.publish_service(service)
            authority = OAuthAuthority(service.slug)
            authority.register_user(CHAOS_USER, "pw")
            self.fleet.connect_service(CHAOS_USER, service, authority, "pw")
        self.applets = [
            self.fleet.install_applet(
                user=CHAOS_USER, name=f"tick{pair}->deliver{pair}",
                trigger=TriggerRef(f"{SENSOR_SLUG}{pair}", "tick"),
                action=ActionRef(f"{SINK_SLUG}{pair}", "deliver",
                                 {"n": "{{n}}", "injected_at": "{{injected_at}}"}),
            )
            for pair in range(pairs)
        ]
        #: The shard that owns the victim pair's trigger chain — the only
        #: shard a retargeted fault is allowed to hurt.
        self.victim_shard = self.fleet.shard_of(self.applets[0].applet_id)
        self.injector = FaultInjector(
            self.sim, self.network,
            services=tuple(self.sensors + self.sinks),
            rng=self.rng.fork("faults"),
            metrics=self.metrics, trace=self.trace,
        )
        self.watcher = _FaultWindowWatcher(
            self.sim,
            {service.slug: service for service in self.sensors + self.sinks},
        )

    def retarget(self, plan: FaultPlan) -> FaultPlan:
        """An unsharded plan, aimed at the victim pair and shard."""
        return retarget_plan_for_shards(
            plan,
            sensor_slug=f"{SENSOR_SLUG}0",
            sink_slug=f"{SINK_SLUG}0",
            engine_host=SHARD_HOST_PATTERN.format(shard=self.victim_shard),
        )

    def schedule_events(self, times: Tuple[float, ...]) -> None:
        """Schedule the same event cadence into every pair's sensor."""
        for index, at in enumerate(times):
            self.sim.schedule(
                max(0.0, at - self.sim.now), self._inject, index, at,
                label=f"chaos-event#{index}",
            )

    def _inject(self, index: int, planned_at: float) -> None:
        for sensor in self.sensors:
            self.events_injected += 1
            sensor.ingest_event("tick", {"n": index, "injected_at": planned_at})

    def run(self, scenario: ChaosScenario, drain: float = DRAIN_SECONDS) -> ShardedChaosResult:
        """Retarget the plan at the victim, drive events, settle, account."""
        plan = self.retarget(scenario.plan)
        self.injector.apply(plan)
        self.watcher.watch(plan)
        self.schedule_events(scenario.event_times)
        until = scenario.horizon + drain
        self.sim.run_until(until)
        return self._result(scenario, plan, until)

    def _result(
        self, scenario: ChaosScenario, plan: FaultPlan, until: float
    ) -> ShardedChaosResult:
        t2a_by_shard: Dict[int, Dict[str, List[float]]] = {}
        for delivered_at, pair, fields in self.delivered:
            injected_at = float(fields["injected_at"])
            shard = self.fleet.shard_of(self.applets[pair].applet_id)
            phase = _phase_of(plan, injected_at)
            t2a_by_shard.setdefault(shard, {}).setdefault(phase, []).append(
                delivered_at - injected_at
            )
        transitions_by_shard: Dict[int, List[Tuple[float, str, str, str]]] = {}
        for index, shard in enumerate(self.fleet.shards):
            transitions = sorted(
                (at, slug, old.value, new.value)
                for slug, breaker in shard._breakers.items()
                for at, old, new in breaker.transitions
            )
            if transitions:
                transitions_by_shard[index] = transitions
        events_observed = sum(
            int(self.metrics.total(f"{shard.metrics_namespace}.events_observed"))
            for shard in self.fleet.shards
        )
        fleet_stats = self.fleet.stats()
        snapshot = deterministic_snapshot(self.metrics)
        merged = merged_fleet_snapshot(self.metrics.snapshot())
        victim_engine = self.fleet.shards[self.victim_shard]
        extras = _delivery_extras(
            list(self.fleet.shards),
            probe_policy=victim_engine._applets[self.applets[0].applet_id].policy,
        )
        return ShardedChaosResult(
            scenario=scenario.name,
            seed=self.seed,
            num_shards=self.fleet.num_shards,
            strategy=self.fleet.strategy,
            victim_shard=self.victim_shard,
            ran_until=until,
            events_injected=self.events_injected,
            events_observed=events_observed,
            fleet_stats=fleet_stats,
            shard_stats=self.fleet.shard_stats(),
            t2a_by_shard=t2a_by_shard,
            breaker_transitions_by_shard=transitions_by_shard,
            faults_activated=self.injector.activations,
            faults_deactivated=self.injector.deactivations,
            assignments=self.fleet.assignments(),
            shard_loads=self.fleet.shard_loads(),
            snapshot=snapshot,
            merged_engine_snapshot=merged,
            replay=_replay_report(
                [shard.replay for shard in self.fleet.shards], until,
                fleet_stats["polls_sent"] + fleet_stats["actions_dispatched"],
            ),
            fault_window_requests=dict(self.watcher.requests),
            **extras,
        )


class ParallelShardedChaosWorld:
    """The sharded chaos topology on per-shard simulators, epoch-stepped.

    Same experiment as :class:`ShardedChaosWorld` — ``pairs`` sensor/sink
    chains through a :class:`~repro.engine.sharding.ShardedEngine`, pair
    0 the victim — but every shard is a self-contained *cell*: its own
    :class:`~repro.simcore.simulator.Simulator`, :class:`Network`, core
    router, metrics registry, and fault injector.  Sensors and sinks are
    homed on the cell ``stable_service_hash(slug) % num_shards`` (a
    strategy-independent placement), so any shard whose applets trigger
    on a remote cell's sensor polls it *across* cells: that traffic goes
    through the :class:`~repro.net.network.CrossShardRouter` and the
    stepper's epoch-barriered mailboxes — realtime hints and push
    notifications cross the same way.

    ``jobs=1`` steps the cells round-robin in the calling thread;
    ``jobs>1`` steps them concurrently.  The per-cell execution is
    identical either way, and cross-cell messages drain in the sorted
    ``(deliver_at, src, seq)`` mailbox order, so the two modes produce
    **byte-identical** deterministic snapshots — ``make parallel-check``
    gates exactly that.

    (``__test__`` opts the class out of pytest collection.)
    """

    __test__ = False

    def __init__(
        self,
        seed: int = 7,
        poll_interval: float = 5.0,
        num_shards: int = 4,
        shard_strategy: str = "service_hash",
        pairs: int = SHARDED_PAIRS,
        engine_config: Optional[EngineConfig] = None,
        replay: Optional[ReplayPolicy] = None,
        delivery: Optional[DeliveryPolicy] = None,
        delivery_mode: str = "poll",
        jobs: int = 1,
        lookahead: float = DEFAULT_LOOKAHEAD,
    ) -> None:
        self.seed = seed
        self.delivery_mode = delivery_mode
        self.pairs = pairs
        self.stepper = ShardedSimulator(num_shards, lookahead=lookahead, jobs=jobs)
        self.rng = Rng(seed=seed, name="chaos")
        # One cell per shard: registry, network, core.  Each cell is
        # touched by exactly one worker thread inside an epoch; the
        # shared Trace is omitted on purpose (it would be a cross-thread
        # mutation point and none of the sharded accounting reads it).
        self.registries: List[MetricsRegistry] = []
        self.networks: List[Network] = []
        for index in range(num_shards):
            registry = MetricsRegistry()
            sim = self.stepper.sims[index]
            sim.metrics = registry
            self.registries.append(registry)
            self.networks.append(
                Network(sim, self.rng.fork(f"network{index}"), metrics=registry)
            )
        self.router = CrossShardRouter(self.stepper)
        config = engine_config or EngineConfig(
            poll_policy=FixedPollingPolicy(poll_interval),
            initial_poll_delay=0.5,
            poll_timeout=10.0,
            action_timeout=10.0,
        )
        config = replace(
            config,
            poll_policy=config.poll_policy.clone(),
            num_shards=num_shards,
            shard_strategy=shard_strategy,
            replay_policy=replay if replay is not None else config.replay_policy,
            delivery_policy=delivery if delivery is not None else config.delivery_policy,
        )
        config = _apply_delivery_mode(config, delivery_mode)
        self.fleet = ShardedEngine(
            self.networks,
            config=config,
            rng=self.rng.fork("engine"),
            host_pattern=SHARD_HOST_PATTERN,
            service_time=0.0,
        )
        self.cores = []
        for index, network in enumerate(self.networks):
            core = network.add_node(GatewayRouter(Address(CORE_HOST)))
            network.connect(
                self.fleet.shards[index].address, core.address,
                cloud_internal_latency(),
            )
            # Cross-cell sends exit through the cell's core: a shard
            # partitioned from it is connection-refused on remote polls
            # too, and inbound cross-cell traffic is dropped mid-path.
            network.gateway = core.address
            self.router.attach(network, index)
            self.cores.append(core)

        #: Per-cell ``(delivered_at, pair, fields)`` sink executions —
        #: appended only by the owning cell's thread.
        self._delivered: List[List[Tuple[float, int, Dict[str, Any]]]] = [
            [] for _ in range(num_shards)
        ]
        self._events_injected = [0] * num_shards
        self.sensors: List[PartnerService] = []
        self.sinks: List[PartnerService] = []
        #: pair -> home cell, and cell -> {slug: service} for plan splits.
        self._pair_home: List[int] = []
        self._cell_services: List[Dict[str, PartnerService]] = [
            {} for _ in range(num_shards)
        ]
        for pair in range(pairs):
            # Sensor and sink are homed *independently* by their own slug
            # hashes.  Under ``service_hash`` the applet's shard equals
            # the sensor's home (polls stay cell-local — the affinity the
            # strategy exists for) while its sink usually hashes
            # elsewhere, so action dispatches genuinely cross cells; under
            # ``round_robin`` polls cross too.
            sensor_cell = stable_service_hash(f"{SENSOR_SLUG}{pair}") % num_shards
            sink_cell = stable_service_hash(f"{SINK_SLUG}{pair}") % num_shards
            self._pair_home.append(sensor_cell)
            sensor = self.networks[sensor_cell].add_node(PartnerService(
                Address(f"sensor{pair}.cloud"), slug=f"{SENSOR_SLUG}{pair}",
                service_time=0.0,
                realtime=delivery_mode == "hint", push=delivery_mode == "push",
            ))
            sensor.add_trigger(TriggerEndpoint(slug="tick", name="Tick"))
            sink = self.networks[sink_cell].add_node(PartnerService(
                Address(f"sink{pair}.cloud"), slug=f"{SINK_SLUG}{pair}",
                service_time=0.0,
            ))
            sink.add_action(ActionEndpoint(
                slug="deliver", name="Deliver",
                executor=self._sink_recorder(sink_cell, pair),
            ))
            for cell, node in ((sensor_cell, sensor), (sink_cell, sink)):
                self.networks[cell].connect(
                    node.address, self.cores[cell].address,
                    cloud_internal_latency(),
                )
            self._cell_services[sensor_cell][sensor.slug] = sensor
            self._cell_services[sink_cell][sink.slug] = sink
            self.sensors.append(sensor)
            self.sinks.append(sink)
        for service in self.sensors + self.sinks:
            self.fleet.publish_service(service)
            authority = OAuthAuthority(service.slug)
            authority.register_user(CHAOS_USER, "pw")
            self.fleet.connect_service(CHAOS_USER, service, authority, "pw")
        self.applets = [
            self.fleet.install_applet(
                user=CHAOS_USER, name=f"tick{pair}->deliver{pair}",
                trigger=TriggerRef(f"{SENSOR_SLUG}{pair}", "tick"),
                action=ActionRef(f"{SINK_SLUG}{pair}", "deliver",
                                 {"n": "{{n}}", "injected_at": "{{injected_at}}"}),
            )
            for pair in range(pairs)
        ]
        self.victim_shard = self.fleet.shard_of(self.applets[0].applet_id)
        # One injector and one fault-window watcher per cell, each armed
        # only with that cell's slice of a (retargeted) plan.
        self.injectors = [
            FaultInjector(
                self.stepper.sims[index], self.networks[index],
                services=tuple(self._cell_services[index].values()),
                rng=self.rng.fork(f"faults{index}"),
                metrics=self.registries[index],
            )
            for index in range(num_shards)
        ]
        self.watchers = [
            _FaultWindowWatcher(self.stepper.sims[index], self._cell_services[index])
            for index in range(num_shards)
        ]

    def _sink_recorder(self, cell: int, pair: int):
        sim = self.stepper.sims[cell]
        delivered = self._delivered[cell]

        def record(fields: Dict[str, Any]) -> None:
            delivered.append((sim.now, pair, dict(fields)))

        return record

    def retarget(self, plan: FaultPlan) -> FaultPlan:
        """An unsharded plan, aimed at the victim pair and shard."""
        return retarget_plan_for_shards(
            plan,
            sensor_slug=f"{SENSOR_SLUG}0",
            sink_slug=f"{SINK_SLUG}0",
            engine_host=SHARD_HOST_PATTERN.format(shard=self.victim_shard),
        )

    def _owning_cell(self, spec) -> int:
        """Which cell a fault spec belongs to (service home or link home)."""
        if spec.service:
            for cell, services in enumerate(self._cell_services):
                if spec.service in services:
                    return cell
            raise FaultPlanError(
                f"{spec.kind}: unknown service {spec.service!r} in this world"
            )
        a, b = Address(spec.a), Address(spec.b)
        for cell, network in enumerate(self.networks):
            if network.link_between(a, b) is not None:
                return cell
        raise FaultPlanError(
            f"{spec.kind}: no cell has a link between {spec.a} and {spec.b}"
        )

    def _split_plan(self, plan: FaultPlan) -> List[FaultPlan]:
        """One sub-plan per cell, in the owning cell's vocabulary."""
        per_cell: List[List[Any]] = [[] for _ in range(self.stepper.num_shards)]
        for spec in plan:
            per_cell[self._owning_cell(spec)].append(spec)
        return [FaultPlan(tuple(specs)) for specs in per_cell]

    def schedule_events(self, times: Tuple[float, ...]) -> None:
        """Schedule each event cadence entry into every pair's home cell."""
        for index, at in enumerate(times):
            for pair in range(self.pairs):
                cell = self._pair_home[pair]
                sim = self.stepper.sims[cell]
                sim.schedule(
                    max(0.0, at - sim.now), self._inject, cell, pair, index, at,
                    label=f"chaos-event#{index}.{pair}",
                )

    def _inject(self, cell: int, pair: int, index: int, planned_at: float) -> None:
        self._events_injected[cell] += 1
        self.sensors[pair].ingest_event("tick", {"n": index, "injected_at": planned_at})

    @property
    def events_injected(self) -> int:
        """Fleet-wide injected-event count (read at barriers)."""
        return sum(self._events_injected)

    def run(self, scenario: ChaosScenario, drain: float = DRAIN_SECONDS) -> ShardedChaosResult:
        """Retarget the plan at the victim, drive events, settle, account."""
        plan = self.retarget(scenario.plan)
        for cell, subplan in enumerate(self._split_plan(plan)):
            if subplan.specs:
                self.injectors[cell].apply(subplan)
                self.watchers[cell].watch(subplan)
        self.schedule_events(scenario.event_times)
        until = scenario.horizon + drain
        self.stepper.run_until(until)
        self.stepper.shutdown()
        return self._result(scenario, plan, until)

    def _result(
        self, scenario: ChaosScenario, plan: FaultPlan, until: float
    ) -> ShardedChaosResult:
        t2a_by_shard: Dict[int, Dict[str, List[float]]] = {}
        delivered = sorted(
            (record for cell in self._delivered for record in cell),
            key=lambda record: (record[0], record[1]),
        )
        for delivered_at, pair, fields in delivered:
            injected_at = float(fields["injected_at"])
            shard = self.fleet.shard_of(self.applets[pair].applet_id)
            phase = _phase_of(plan, injected_at)
            t2a_by_shard.setdefault(shard, {}).setdefault(phase, []).append(
                delivered_at - injected_at
            )
        transitions_by_shard: Dict[int, List[Tuple[float, str, str, str]]] = {}
        for index, shard in enumerate(self.fleet.shards):
            transitions = sorted(
                (at, slug, old.value, new.value)
                for slug, breaker in shard._breakers.items()
                for at, old, new in breaker.transitions
            )
            if transitions:
                transitions_by_shard[index] = transitions
        events_observed = sum(
            int(self.registries[index].total(
                f"{shard.metrics_namespace}.events_observed"
            ))
            for index, shard in enumerate(self.fleet.shards)
        )
        fleet_stats = self.fleet.stats()
        # The cell registries merge commutatively (counters add, gauges
        # max), so the combined snapshot is independent of both cell
        # order and stepping mode — the byte-identity `make
        # parallel-check` pins.
        combined = merge_snapshots(
            *(registry.snapshot() for registry in self.registries)
        )
        snapshot = deterministic_snapshot(combined)
        merged = merged_fleet_snapshot(combined)
        victim_engine = self.fleet.shards[self.victim_shard]
        extras = _delivery_extras(
            list(self.fleet.shards),
            probe_policy=victim_engine._applets[self.applets[0].applet_id].policy,
        )
        fault_window: Dict[str, int] = {}
        for watcher in self.watchers:
            fault_window.update(watcher.requests)
        return ShardedChaosResult(
            scenario=scenario.name,
            seed=self.seed,
            num_shards=self.fleet.num_shards,
            strategy=self.fleet.strategy,
            victim_shard=self.victim_shard,
            ran_until=until,
            events_injected=self.events_injected,
            events_observed=events_observed,
            fleet_stats=fleet_stats,
            shard_stats=self.fleet.shard_stats(),
            t2a_by_shard=t2a_by_shard,
            breaker_transitions_by_shard=transitions_by_shard,
            faults_activated=sum(i.activations for i in self.injectors),
            faults_deactivated=sum(i.deactivations for i in self.injectors),
            assignments=self.fleet.assignments(),
            shard_loads=self.fleet.shard_loads(),
            snapshot=snapshot,
            merged_engine_snapshot=merged,
            replay=_replay_report(
                [shard.replay for shard in self.fleet.shards], until,
                fleet_stats["polls_sent"] + fleet_stats["actions_dispatched"],
            ),
            fault_window_requests=fault_window,
            jobs=self.stepper.jobs,
            epochs=self.stepper.epochs,
            mailbox_messages=self.stepper.mailbox_messages,
            cross_shard_messages=self.router.messages_routed,
            **extras,
        )


def run_sharded_chaos_scenario(
    name: str,
    seed: int = 7,
    num_shards: int = 4,
    shard_strategy: str = "service_hash",
    plan: Optional[FaultPlan] = None,
    poll_interval: float = 5.0,
    pairs: int = SHARDED_PAIRS,
    drain: float = DRAIN_SECONDS,
    replay: Optional[ReplayPolicy] = None,
    delivery: Optional[DeliveryPolicy] = None,
    delivery_mode: str = "poll",
    parallel: bool = False,
    jobs: int = 1,
) -> ShardedChaosResult:
    """Run one chaos scenario against a sharded fleet.

    ``plan`` (still in the unsharded vocabulary — it is retargeted at
    the victim pair automatically) overrides the scenario's built-in
    fault plan, mirroring :func:`run_chaos_scenario`.  ``replay``
    enables shard-local dead-letter replay on every shard; the result
    then carries a fleet-folded :class:`ReplayReport`.  ``delivery``
    enables shard-local adaptive delivery on every shard (victim-shard
    health stretches; healthy shards stay at baseline).
    ``delivery_mode`` selects poll/hint/push event delivery for every
    sensor, exactly as in :func:`run_chaos_scenario`; pushes route to
    each service's last-published shard (the home shard under
    ``service_hash``).  ``parallel=True`` runs the epoch-stepped
    :class:`ParallelShardedChaosWorld` instead of the single-simulator
    world, stepping shards with ``jobs`` worker threads (``jobs=1`` is
    its serial mode — byte-identical snapshots either way).
    """
    scenario = chaos_scenario(name)
    if plan is not None:
        scenario = ChaosScenario(
            name=scenario.name,
            description=f"{scenario.description} (custom plan)",
            event_times=scenario.event_times,
            plan=plan,
        )
    if parallel:
        world = ParallelShardedChaosWorld(
            seed=seed, poll_interval=poll_interval,
            num_shards=num_shards, shard_strategy=shard_strategy, pairs=pairs,
            replay=replay, delivery=delivery, delivery_mode=delivery_mode,
            jobs=jobs,
        )
    else:
        world = ShardedChaosWorld(
            seed=seed, poll_interval=poll_interval,
            num_shards=num_shards, shard_strategy=shard_strategy, pairs=pairs,
            replay=replay, delivery=delivery, delivery_mode=delivery_mode,
        )
    return world.run(scenario, drain=drain)
