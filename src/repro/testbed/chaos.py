"""Chaos scenarios: fault plans driven against a dedicated trigger/action world.

A :class:`ChaosWorld` is the smallest topology that exercises every
resilience mechanism end to end — one engine, one trigger ("sensor")
service, one action ("sink") service, joined through a core router — so
the effects of a :class:`~repro.faults.plan.FaultPlan` can be measured
precisely:

* every injected event carries its injection time, so trigger-to-action
  latency is measured at the *delivery* point (the sink's executor), not
  just at dispatch — retries and breaker shedding are visible in T2A;
* the engine's action accounting (delivered + dead-lettered + in-retry)
  is checked against dispatches: a chaos run proves no action is
  silently lost;
* the world snapshots its metrics via
  :func:`~repro.obs.metrics.deterministic_snapshot`, so the same
  ``(scenario, seed)`` serializes byte-identically run after run
  (``make chaos-check``).

Three scenarios ship built in:

``outage``
    A 60 s full outage of the action service, landing on top of an
    event burst — actions retry, shed against the open breaker, and
    dead-letter; T2A recovers to baseline after the heal.
``partition``
    The engine↔core link partitions for 40 s and heals — polls fail
    fast as connection-refused, events buffer at the (healthy) sensor,
    and delivery catches up after the heal.
``flappy``
    The sensor flaps (down half of every 24 s) for three minutes under
    steady load — a soak proving dedup and delivery conservation
    through repeated short outages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.applet import ActionRef, TriggerRef
from repro.engine.config import EngineConfig
from repro.engine.engine import IftttEngine
from repro.engine.oauth import OAuthAuthority
from repro.engine.poller import FixedPollingPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, link_down, service_flap, service_outage
from repro.iot.gateway import GatewayRouter
from repro.net.address import Address
from repro.net.latency import cloud_internal_latency
from repro.net.network import Network
from repro.obs.metrics import MetricsRegistry, deterministic_snapshot
from repro.services.endpoints import ActionEndpoint, TriggerEndpoint
from repro.services.partner import PartnerService
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator
from repro.simcore.trace import Trace

ENGINE_HOST = "engine.ifttt.cloud"
CORE_HOST = "core.internet"
SENSOR_HOST = "sensor.cloud"
SINK_HOST = "sink.cloud"
SENSOR_SLUG = "chaos_sensor"
SINK_SLUG = "chaos_sink"
CHAOS_USER = "chaos"

#: Extra settle time after the injection horizon so in-flight retries,
#: breaker recoveries, and buffered events all conclude before the
#: world's accounting is read.
DRAIN_SECONDS = 90.0


def _cadence(start: float, stop: float, step: float) -> Tuple[float, ...]:
    times = []
    t = start
    while t < stop:
        times.append(round(t, 6))
        t += step
    return tuple(times)


@dataclass(frozen=True)
class ChaosScenario:
    """One named chaos experiment: an event schedule plus a fault plan."""

    name: str
    description: str
    event_times: Tuple[float, ...]
    plan: FaultPlan

    @property
    def horizon(self) -> float:
        """When injection and faulting are both over."""
        last_event = self.event_times[-1] if self.event_times else 0.0
        return max(last_event, self.plan.end_time)


CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    "outage": ChaosScenario(
        name="outage",
        description="60 s action-service outage during an event burst",
        event_times=tuple(sorted(
            _cadence(10.0, 190.0, 4.0) + _cadence(70.0, 90.0, 1.0)
        )),
        plan=FaultPlan((service_outage(SINK_SLUG, at=60.0, duration=60.0),)),
    ),
    "partition": ChaosScenario(
        name="partition",
        description="engine↔core partition for 40 s, then heal",
        event_times=_cadence(10.0, 190.0, 4.0),
        plan=FaultPlan((link_down(ENGINE_HOST, CORE_HOST, at=60.0, duration=40.0),)),
    ),
    "flappy": ChaosScenario(
        name="flappy",
        description="sensor service flapping (12 s down / 12 s up) soak",
        event_times=_cadence(10.0, 280.0, 4.0),
        plan=FaultPlan((
            service_flap(SENSOR_SLUG, at=30.0, duration=180.0, period=24.0, duty=0.5),
        )),
    ),
}


def chaos_scenario(name: str) -> ChaosScenario:
    """Look up a built-in chaos scenario by name."""
    try:
        return CHAOS_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos scenario {name!r}; expected one of {sorted(CHAOS_SCENARIOS)}"
        ) from None


@dataclass
class ChaosResult:
    """Everything a chaos run proves, in one record."""

    scenario: str
    seed: int
    ran_until: float
    events_injected: int
    events_observed: int
    actions_dispatched: int
    actions_delivered: int
    actions_dead_lettered: int
    actions_in_retry: int
    t2a_by_phase: Dict[str, List[float]]
    breaker_transitions: List[Tuple[float, str, str, str]]
    faults_activated: int
    faults_deactivated: int
    engine_stats: Dict[str, int]
    snapshot: Dict[str, Any] = field(repr=False)

    @property
    def actions_silently_lost(self) -> int:
        """Dispatches unaccounted for — the invariant says zero."""
        return (
            self.actions_dispatched
            - self.actions_delivered
            - self.actions_dead_lettered
            - self.actions_in_retry
        )

    def t2a_max(self, phase: str) -> float:
        """Worst T2A in one phase (0.0 when the phase saw no deliveries)."""
        values = self.t2a_by_phase.get(phase, [])
        return max(values) if values else 0.0

    def summary(self) -> str:
        """A human-readable multi-line report."""
        lines = [
            f"chaos scenario {self.scenario!r} (seed {self.seed}, "
            f"t={self.ran_until:g}s)",
            f"  events:  injected={self.events_injected} "
            f"observed={self.events_observed}",
            f"  actions: dispatched={self.actions_dispatched} "
            f"delivered={self.actions_delivered} "
            f"dead-lettered={self.actions_dead_lettered} "
            f"in-retry={self.actions_in_retry} "
            f"silently-lost={self.actions_silently_lost}",
            f"  faults:  activated={self.faults_activated} "
            f"deactivated={self.faults_deactivated}",
            f"  engine:  retries poll={self.engine_stats['poll_retries']} "
            f"action={self.engine_stats['action_retries']}; shed "
            f"polls={self.engine_stats['polls_shed']} "
            f"actions={self.engine_stats['actions_shed']}",
        ]
        for phase in ("before", "during", "after"):
            values = self.t2a_by_phase.get(phase, [])
            if values:
                mean = sum(values) / len(values)
                lines.append(
                    f"  t2a[{phase:6s}]: n={len(values)} mean={mean:.2f}s "
                    f"max={max(values):.2f}s"
                )
        for at, service, old, new in self.breaker_transitions:
            lines.append(f"  breaker {service}: {old} -> {new} at t={at:.2f}s")
        return "\n".join(lines)


class ChaosWorld:
    """The minimal fault-injection topology (engine, sensor, sink).

    (``__test__`` opts the class out of pytest collection.)
    """

    __test__ = False

    def __init__(
        self,
        seed: int = 7,
        poll_interval: float = 5.0,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.seed = seed
        self.sim = Simulator()
        self.rng = Rng(seed=seed, name="chaos")
        self.trace = Trace()
        self.metrics = MetricsRegistry()
        self.sim.metrics = self.metrics
        self.network = Network(self.sim, self.rng.fork("network"), metrics=self.metrics)
        config = engine_config or EngineConfig(
            poll_policy=FixedPollingPolicy(poll_interval),
            initial_poll_delay=0.5,
            poll_timeout=10.0,
            action_timeout=10.0,
        )
        self.engine = self.network.add_node(IftttEngine(
            Address(ENGINE_HOST), config=config,
            rng=self.rng.fork("engine"), trace=self.trace, service_time=0.0,
        ))
        self.core = self.network.add_node(GatewayRouter(Address(CORE_HOST)))
        self.sensor = self.network.add_node(PartnerService(
            Address(SENSOR_HOST), slug=SENSOR_SLUG, trace=self.trace, service_time=0.0,
        ))
        self.sink = self.network.add_node(PartnerService(
            Address(SINK_HOST), slug=SINK_SLUG, trace=self.trace, service_time=0.0,
        ))
        for node in (self.engine, self.sensor, self.sink):
            self.network.connect(node.address, self.core.address, cloud_internal_latency())

        #: ``(delivered_at, fields)`` per sink execution, in delivery order.
        self.delivered: List[Tuple[float, Dict[str, Any]]] = []
        self.events_injected = 0
        self.sensor.add_trigger(TriggerEndpoint(slug="tick", name="Tick"))
        self.sink.add_action(ActionEndpoint(
            slug="deliver", name="Deliver",
            executor=lambda fields: self.delivered.append((self.sim.now, dict(fields))),
        ))
        for service in (self.sensor, self.sink):
            self.engine.publish_service(service)
            authority = OAuthAuthority(service.slug)
            authority.register_user(CHAOS_USER, "pw")
            self.engine.connect_service(CHAOS_USER, service, authority, "pw")
        self.applet = self.engine.install_applet(
            user=CHAOS_USER, name="tick->deliver",
            trigger=TriggerRef(SENSOR_SLUG, "tick"),
            action=ActionRef(SINK_SLUG, "deliver",
                             {"n": "{{n}}", "injected_at": "{{injected_at}}"}),
        )
        self.injector = FaultInjector(
            self.sim, self.network,
            services=(self.sensor, self.sink),
            rng=self.rng.fork("faults"),
            metrics=self.metrics, trace=self.trace,
        )

    def schedule_events(self, times: Tuple[float, ...]) -> None:
        """Schedule one sensor event per entry (absolute sim seconds)."""
        for index, at in enumerate(times):
            self.sim.schedule(
                max(0.0, at - self.sim.now), self._inject, index, at,
                label=f"chaos-event#{index}",
            )

    def _inject(self, index: int, planned_at: float) -> None:
        self.events_injected += 1
        self.sensor.ingest_event("tick", {"n": index, "injected_at": planned_at})

    def run(self, scenario: ChaosScenario, drain: float = DRAIN_SECONDS) -> ChaosResult:
        """Apply the scenario's plan, drive its events, settle, account."""
        self.injector.apply(scenario.plan)
        self.schedule_events(scenario.event_times)
        until = scenario.horizon + drain
        self.sim.run_until(until)
        return self._result(scenario, until)

    def _result(self, scenario: ChaosScenario, until: float) -> ChaosResult:
        engine = self.engine
        t2a_by_phase: Dict[str, List[float]] = {}
        for delivered_at, fields in self.delivered:
            injected_at = float(fields["injected_at"])
            phase = _phase_of(scenario.plan, injected_at)
            t2a_by_phase.setdefault(phase, []).append(delivered_at - injected_at)
        transitions = sorted(
            (at, slug, old.value, new.value)
            for slug, breaker in engine._breakers.items()
            for at, old, new in breaker.transitions
        )
        return ChaosResult(
            scenario=scenario.name,
            seed=self.seed,
            ran_until=until,
            events_injected=self.events_injected,
            events_observed=int(self.metrics.total("engine.events_observed")),
            actions_dispatched=engine.actions_dispatched,
            actions_delivered=engine.actions_delivered,
            actions_dead_lettered=len(engine.dead_letters),
            actions_in_retry=engine.actions_in_retry,
            t2a_by_phase=t2a_by_phase,
            breaker_transitions=transitions,
            faults_activated=self.injector.activations,
            faults_deactivated=self.injector.deactivations,
            engine_stats=engine.stats(),
            snapshot=deterministic_snapshot(self.metrics),
        )


def _phase_of(plan: FaultPlan, t: float) -> str:
    """Which fault phase an injection time falls into."""
    if not plan.specs:
        return "before"
    if any(spec.at <= t < spec.end for spec in plan):
        return "during"
    if t >= plan.end_time:
        return "after"
    return "before"


def run_chaos_scenario(
    name: str,
    seed: int = 7,
    plan: Optional[FaultPlan] = None,
    poll_interval: float = 5.0,
    drain: float = DRAIN_SECONDS,
) -> ChaosResult:
    """Run one chaos scenario end to end and return its accounting.

    ``plan`` overrides the scenario's built-in fault plan (the event
    schedule is kept), which is how ``--faults PLAN.json`` plugs in.
    """
    scenario = chaos_scenario(name)
    if plan is not None:
        scenario = ChaosScenario(
            name=scenario.name,
            description=f"{scenario.description} (custom plan)",
            event_times=scenario.event_times,
            plan=plan,
        )
    world = ChaosWorld(seed=seed, poll_interval=poll_interval)
    return world.run(scenario, drain=drain)
