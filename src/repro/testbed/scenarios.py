"""The E1/E2/E3 substitution experiments (§4, Figure 5).

To localize the latency bottleneck the paper progressively replaces
entities with the authors' own implementations:

* **E1** — replace the official *trigger* service with Our Service ❺
  (device events now arrive via the local proxy push path).
* **E2** — replace both trigger and action services with Our Service.
* **E3** — additionally replace the IFTTT engine with an implementation
  that follows the same protocol but polls every second.

Finding: E1 ≈ E2 ≫ E3, so "the performance bottleneck is the IFTTT
engine itself".

Beyond the paper's happy-path scenarios, the chaos scenarios of
:mod:`repro.testbed.chaos` (re-exported here) drive the same machinery
under fault plans: outage-during-burst, partition-heal, and a
flappy-service soak.  ``python -m repro chaos --scenario outage``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import List, Tuple

from repro.engine.config import EngineConfig
from repro.engine.poller import FixedPollingPolicy
from repro.testbed.applets import E1 as VARIANT_E1
from repro.testbed.applets import E2 as VARIANT_E2
from repro.testbed.applets import OFFICIAL
from repro.testbed.chaos import (  # noqa: F401 — chaos lives beside E1-E3
    CHAOS_SCENARIOS,
    ChaosResult,
    ChaosScenario,
    chaos_scenario,
    run_chaos_scenario,
)
from repro.testbed.controller import TestController
from repro.testbed.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class Scenario:
    """One experiment scenario: a service variant + an engine config."""

    name: str
    applet_variant: str
    fast_engine: bool
    description: str


SCENARIOS = {
    "official": Scenario(
        name="official",
        applet_variant=OFFICIAL,
        fast_engine=False,
        description="Official partner services, production engine (Figure 4 baseline)",
    ),
    "E1": Scenario(
        name="E1",
        applet_variant=VARIANT_E1,
        fast_engine=False,
        description="Our Service as trigger service, production engine",
    ),
    "E2": Scenario(
        name="E2",
        applet_variant=VARIANT_E2,
        fast_engine=False,
        description="Our Service as trigger and action service, production engine",
    ),
    "E3": Scenario(
        name="E3",
        applet_variant=VARIANT_E2,
        fast_engine=True,
        description="Our Service both sides, our engine polling every 1 s",
    ),
}


def scenario(name: str) -> Scenario:
    """Look up a scenario by name ("official", "E1", "E2", "E3")."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}") from None


def build_scenario(
    name: str, seed: int = 7, timeout: float = 1800.0
) -> Tuple[Testbed, TestController, Scenario]:
    """Build a testbed + controller configured for one scenario."""
    chosen = scenario(name)
    engine_config = EngineConfig()
    if chosen.fast_engine:
        engine_config = dataclass_replace(engine_config, poll_policy=FixedPollingPolicy(1.0))
    testbed = Testbed(TestbedConfig(seed=seed, engine_config=engine_config)).build()
    controller = TestController(testbed, timeout=timeout)
    return testbed, controller, chosen


def run_scenario_t2a(
    name: str, applet_key: str = "A2", runs: int = 20, seed: int = 7, spacing: float = 120.0
) -> List[float]:
    """Measure T2A latencies for one applet under one scenario.

    The paper's Figure 5 uses applet A2 with 20 runs per scenario.
    """
    _, controller, chosen = build_scenario(name, seed=seed)
    return controller.measure_t2a(
        applet_key, runs=runs, variant=chosen.applet_variant, spacing=spacing
    )
