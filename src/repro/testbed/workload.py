"""Fleet-scale workloads for engine scalability experiments.

§6 ("Performance Improvements") argues why IFTTT may resist full push:
*"if all trigger services perform push, the incurred instantaneous
workload may be too high: IoT workload is known to be highly bursty; for
IFTTT it is likely also the case (consider popular applets such as
'update wallpaper with new NASA photo')"*.

This module builds that scenario: one popular trigger (a content
publication) shared by a whole fleet of installed applets.  Under
polling, the engine's requests spread over each applet's independent
polling schedule; under push, every publication makes the engine poll
every affected identity at once — an instantaneous request spike at both
the engine and the trigger service.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.engine.applet import ActionRef, TriggerRef
from repro.engine.config import EngineConfig
from repro.engine.engine import IftttEngine
from repro.engine.push import DELIVERY_MODES, PushPolicy
from repro.engine.oauth import OAuthAuthority
from repro.engine.sharding import ShardedEngine, merged_fleet_snapshot
from repro.net.address import Address
from repro.net.latency import cloud_internal_latency
from repro.net.network import Network
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.services.endpoints import ActionEndpoint, TriggerEndpoint
from repro.services.partner import PartnerService
from repro.simcore.parallel import DEFAULT_LOOKAHEAD, ShardedSimulator
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator
from repro.simcore.trace import Trace


@dataclass
class FleetResult:
    """Outcome of one fleet experiment."""

    n_applets: int
    publications: int
    actions_executed: int
    latencies: List[float]
    poll_times: List[float]
    #: Registry snapshot taken at the end of the run (see repro.obs).
    metrics_snapshot: Optional[Dict] = None
    #: Total engine-originated poll requests over the whole run — the
    #: steady-state request-load figure the three-way delivery-mode
    #: comparison reads (available even when tracing is off).
    polls_sent: int = 0

    def peak_polls_per_second(self, window: float = 1.0) -> int:
        """Maximum engine polls in any ``window``-second interval."""
        if not self.poll_times:
            return 0
        ordered = sorted(self.poll_times)
        peak = 0
        start = 0
        for end, t in enumerate(ordered):
            while ordered[start] < t - window:
                start += 1
            peak = max(peak, end - start + 1)
        return peak

    def mean_polls_per_second(self) -> float:
        """Average engine poll rate over the experiment."""
        if len(self.poll_times) < 2:
            return 0.0
        span = max(self.poll_times) - min(self.poll_times)
        return len(self.poll_times) / span if span > 0 else float("inf")

    def burstiness(self) -> float:
        """Peak-to-mean poll rate ratio — §6's instantaneous-workload concern."""
        mean = self.mean_polls_per_second()
        return self.peak_polls_per_second() / mean if mean > 0 else 0.0

    def median_latency(self) -> float:
        """Median publication-to-action latency."""
        ordered = sorted(self.latencies)
        return ordered[len(ordered) // 2] if ordered else float("nan")


class FleetWorld:
    """A content service with one popular trigger and a large applet fleet.

    Every installed applet subscribes to the same logical trigger
    ("new photo published"); a publication event fans out to all
    identities — the NASA-wallpaper shape.
    """

    def __init__(
        self,
        n_applets: int,
        engine_config: Optional[EngineConfig] = None,
        realtime: bool = False,
        push: bool = False,
        seed: int = 5,
        with_trace: bool = True,
        with_metrics: bool = True,
        shared_user: bool = False,
        warmup: bool = True,
    ) -> None:
        """Build the fleet.

        The last four flags exist for ``benchmarks/bench_fleet_scale.py``,
        which runs this workload at up to a million applets:
        ``with_trace=False`` / ``with_metrics=False`` drop the
        observability layers entirely (at 1M applets an unbounded trace
        alone is gigabytes), ``shared_user=True`` installs every applet
        under one user so setup skips a million OAuth handshakes, and
        ``warmup=False`` leaves the initial polls in the heap so the
        benchmark's timed window includes them.  Defaults preserve the
        original behaviour exactly.

        ``push=True`` publishes the content service under the push
        contract (see :mod:`repro.engine.push`): a default
        :class:`~repro.engine.push.PushPolicy` is installed on the
        engine config if the caller didn't set one, and every
        publication then POSTs its event payloads directly to the
        engine instead of waiting for polls.
        """
        self.n_applets = n_applets
        self.sim = Simulator()
        self.rng = Rng(seed=seed, name="fleet")
        self.trace = Trace() if with_trace else None
        self.metrics = MetricsRegistry() if with_metrics else None
        self.sim.metrics = self.metrics
        self.network = Network(self.sim, self.rng.fork("net"), metrics=self.metrics)
        config = engine_config or EngineConfig()
        if push and config.push_policy is None:
            config = replace(config, push_policy=PushPolicy())
        self.engine = self.network.add_node(IftttEngine(
            Address("engine.ifttt.cloud"),
            config=config,
            rng=self.rng.fork("engine"),
            trace=self.trace,
            service_time=0.0,
        ))
        self.content = self.network.add_node(PartnerService(
            Address("content.cloud"), slug="content", trace=self.trace,
            realtime=realtime, push=push, service_time=0.0,
        ))
        self.actions_executed = 0
        self.action_times: List[float] = []
        self.content.add_trigger(TriggerEndpoint(
            slug="new_photo",
            name="New photo published",
            ingredients=lambda event: {"photo": event.get("photo", "")},
        ))
        self.content.add_action(ActionEndpoint(
            slug="set_wallpaper",
            name="Update wallpaper",
            executor=self._record_action,
        ))
        self.network.connect(self.engine.address, self.content.address, cloud_internal_latency())
        self.engine.publish_service(self.content)
        authority = OAuthAuthority("content")
        if shared_user:
            authority.register_user("fleet-user", "pw")
            self.engine.connect_service("fleet-user", self.content, authority, "pw")
        trigger = TriggerRef("content", "new_photo")
        action = ActionRef("content", "set_wallpaper", {"photo": "{{photo}}"})
        for index in range(n_applets):
            if shared_user:
                user = "fleet-user"
            else:
                user = f"user{index:05d}"
                authority.register_user(user, "pw")
                self.engine.connect_service(user, self.content, authority, "pw")
            self.engine.install_applet(
                user=user,
                name=f"wallpaper applet #{index}",
                trigger=trigger,
                action=action,
            )
        if warmup:
            # let registration polls drain before measurement starts
            horizon = (
                self.engine.config.initial_poll_delay
                + self.engine.config.initial_poll_jitter
                + 5.0
            )
            self.sim.run_until(horizon)

    def _record_action(self, fields: Dict) -> None:
        self.actions_executed += 1
        self.action_times.append(self.sim.now)

    def publish(self, photo: str) -> None:
        """One content publication: the event reaches every identity."""
        self.content.ingest_event("new_photo", {"photo": photo})

    def run_publications(self, publications: int = 5, spacing: float = 900.0) -> FleetResult:
        """Publish ``publications`` times and collect fleet statistics.

        Poll statistics cover only the publication window, excluding the
        fleet's registration warm-up.
        """
        measure_start = self.sim.now
        latencies: List[float] = []
        for index in range(publications):
            published_at = self.sim.now
            before = self.actions_executed
            self.publish(f"photo-{index}")
            self.sim.run_until(self.sim.now + spacing)
            latencies.extend(
                t - published_at for t in self.action_times[before:]
            )
        return FleetResult(
            n_applets=self.n_applets,
            publications=publications,
            actions_executed=self.actions_executed,
            latencies=latencies,
            poll_times=(
                [t for t in self.trace.times("engine_poll_sent") if t >= measure_start]
                if self.trace is not None
                else []
            ),
            metrics_snapshot=(
                self.metrics.snapshot() if self.metrics is not None else None
            ),
            polls_sent=self.engine.stats()["polls_sent"],
        )


@dataclass
class ShardedFleetResult:
    """Outcome of one epoch-stepped sharded fleet experiment."""

    n_applets: int
    num_shards: int
    jobs: int
    publications: int
    actions_executed: int
    polls_sent: int
    #: Barrier count and cross-shard mailbox traffic from the stepper.
    epochs: int
    mailbox_messages: int
    events_fired: int
    #: ``merged_fleet_snapshot`` over the per-shard registries (None when
    #: the world was built with ``with_metrics=False``).
    metrics_snapshot: Optional[Dict] = None


class ShardedFleetWorld:
    """The NASA-wallpaper fleet partitioned across N epoch-stepped shards.

    The single-simulator :class:`FleetWorld` serializes every shard
    through one heap; this world gives each shard its own
    :class:`~repro.simcore.simulator.Simulator`, :class:`Network`,
    metrics registry, and content-service *replica*, stepped together by
    a :class:`~repro.simcore.parallel.ShardedSimulator` (``jobs=1`` =
    serial round-robin epochs, ``jobs>1`` = one thread per shard; the
    per-shard code path is identical, so the two produce byte-identical
    merged snapshots).  Publications are fleet-level events: they enter
    through the stepper's controller mailbox, one ingest per replica, at
    an epoch barrier.

    Shard engines poll only their own shard's replica (each shard
    publishes its local replica under the shared ``content`` slug), so
    the steady state is embarrassingly parallel — the shape that
    motivates parallel stepping in the first place.
    """

    def __init__(
        self,
        n_applets: int,
        num_shards: int = 4,
        jobs: int = 1,
        engine_config: Optional[EngineConfig] = None,
        seed: int = 5,
        with_metrics: bool = True,
        shard_strategy: str = "round_robin",
        lookahead: float = DEFAULT_LOOKAHEAD,
        warmup: bool = True,
    ) -> None:
        self.n_applets = n_applets
        self.num_shards = num_shards
        self.stepper = ShardedSimulator(num_shards, lookahead=lookahead, jobs=jobs)
        self.rng = Rng(seed=seed, name="fleet")
        # One world per shard: registry, network, content replica.  Each
        # is touched by exactly one worker thread inside an epoch.
        self.registries: List[Optional[MetricsRegistry]] = []
        self.networks: List[Network] = []
        for index in range(num_shards):
            registry = MetricsRegistry() if with_metrics else None
            sim = self.stepper.sims[index]
            sim.metrics = registry
            self.registries.append(registry)
            self.networks.append(
                Network(sim, self.rng.fork(f"net{index}"), metrics=registry)
            )
        self.fleet = ShardedEngine(
            self.networks,
            config=engine_config or EngineConfig(),
            rng=self.rng.fork("engine"),
            num_shards=num_shards,
            shard_strategy=shard_strategy,
            service_time=0.0,
            expected_applets=n_applets,
        )
        # Per-shard action counters: each slot is written only by its
        # shard's thread, so fleet totals need no lock.
        self._actions = [0] * num_shards
        self.contents: List[PartnerService] = []
        for index in range(num_shards):
            replica = self.networks[index].add_node(PartnerService(
                Address(f"content{index}.cloud"), slug="content",
                service_time=0.0,
            ))
            replica.add_trigger(TriggerEndpoint(
                slug="new_photo",
                name="New photo published",
                ingredients=lambda event: {"photo": event.get("photo", "")},
            ))
            replica.add_action(ActionEndpoint(
                slug="set_wallpaper",
                name="Update wallpaper",
                executor=self._recorder(index),
            ))
            shard = self.fleet.shards[index]
            self.networks[index].connect(
                shard.address, replica.address, cloud_internal_latency()
            )
            # Publish the *local* replica on the shard engine directly:
            # the fleet-level publish_service expects one service node
            # reachable from every shard, which a split-simulator world
            # deliberately doesn't have.
            shard.publish_service(replica)
            self.contents.append(replica)
        authority = OAuthAuthority("content")
        authority.register_user("fleet-user", "pw")
        for index, shard in enumerate(self.fleet.shards):
            shard.connect_service(
                "fleet-user", self.contents[index], authority, "pw"
            )
        trigger = TriggerRef("content", "new_photo")
        action = ActionRef("content", "set_wallpaper", {"photo": "{{photo}}"})
        for index in range(n_applets):
            self.fleet.install_applet(
                user="fleet-user",
                name=f"wallpaper applet #{index}",
                trigger=trigger,
                action=action,
            )
        if warmup:
            # Let registration polls drain so the first publication isn't
            # swallowed as pre-baseline history (mirrors FleetWorld;
            # benchmarks pass warmup=False to time the initial burst).
            config = self.fleet.config
            self.stepper.run_until(
                config.initial_poll_delay + config.initial_poll_jitter + 5.0
            )

    def _recorder(self, shard: int):
        def record(fields: Dict) -> None:
            self._actions[shard] += 1
        return record

    @property
    def actions_executed(self) -> int:
        """Fleet-wide executed-action count (read at barriers)."""
        return sum(self._actions)

    def publish(self, photo: str) -> None:
        """One fleet-level publication: every replica ingests the event.

        Routed through the stepper's controller mailbox so it lands in
        each shard's heap in deterministic order at the next barrier.
        """
        now = self.stepper.now
        for index, replica in enumerate(self.contents):
            self.stepper.post(
                index, now, replica.ingest_event, "new_photo", {"photo": photo}
            )

    def run_until(self, time: float) -> int:
        """Advance the whole fleet to ``time`` through epoch barriers."""
        return self.stepper.run_until(time)

    def run_publications(
        self, publications: int = 5, spacing: float = 900.0
    ) -> ShardedFleetResult:
        """Publish ``publications`` times and collect fleet statistics."""
        for index in range(publications):
            self.publish(f"photo-{index}")
            self.stepper.run_until(self.stepper.now + spacing)
        return self.result(publications=publications)

    def merged_snapshot(self) -> Optional[Dict]:
        """Fleet-wide ``engine.*`` totals folded from every shard registry.

        Commutative (counters add, gauges max), so the serial and
        parallel stepping modes must produce byte-identical results —
        ``make parallel-check`` gates exactly that.
        """
        if any(registry is None for registry in self.registries):
            return None
        combined = merge_snapshots(
            *(registry.snapshot() for registry in self.registries)
        )
        return merged_fleet_snapshot(combined)

    def result(self, publications: int = 0) -> ShardedFleetResult:
        return ShardedFleetResult(
            n_applets=self.n_applets,
            num_shards=self.num_shards,
            jobs=self.stepper.jobs,
            publications=publications,
            actions_executed=self.actions_executed,
            polls_sent=self.fleet.stats()["polls_sent"],
            epochs=self.stepper.epochs,
            mailbox_messages=self.stepper.mailbox_messages,
            events_fired=self.stepper.fired_count,
            metrics_snapshot=self.merged_snapshot(),
        )

    def shutdown(self) -> None:
        """Tear down the stepper's worker pool (no-op when ``jobs == 1``)."""
        self.stepper.shutdown()


def run_fleet_experiment(
    n_applets: int = 200,
    push: bool = False,
    publications: int = 5,
    seed: int = 5,
    delivery_mode: Optional[str] = None,
) -> FleetResult:
    """Run the NASA-wallpaper fleet under polling, hints, or push.

    ``push=True`` makes the content service realtime-capable *and* the
    engine honour every hint — the full-push world §6 contemplates
    (kept for backwards compatibility; equivalent to
    ``delivery_mode="hint"``).  ``delivery_mode``, when given,
    supersedes the flag: ``"poll"`` (hints ignored), ``"hint"``
    (payload-less realtime hints, all honoured), or ``"push"`` (the
    payload-carrying push contract of :mod:`repro.engine.push` — events
    arrive without any engine-originated request).
    """
    mode = delivery_mode if delivery_mode is not None else ("hint" if push else "poll")
    if mode not in DELIVERY_MODES:
        raise ValueError(
            f"unknown delivery_mode {mode!r}; expected one of {DELIVERY_MODES}"
        )
    # The push watermarks are per-service provisioning knobs: one
    # NASA-photo publication fans out to n_applets identities *in a
    # single notification*, so a fleet-sized burst is the expected
    # steady state, not overload.  Provision the backlog watermarks (and
    # the drain batch) to the fleet so the ladder only degrades on
    # genuinely sustained backlog.
    push_policy = None
    if mode == "push":
        push_policy = PushPolicy(
            max_batch=200,
            low_watermark=max(64, n_applets),
            high_watermark=max(256, 4 * n_applets),
        )
    config = EngineConfig(
        realtime_allowlist=None if mode == "hint" else frozenset(),
        initial_poll_jitter=300.0,
        push_policy=push_policy,
    )
    world = FleetWorld(
        n_applets, engine_config=config,
        realtime=mode == "hint", push=mode == "push", seed=seed,
    )
    return world.run_publications(publications=publications)
