"""Day-in-the-life workload generation for the home testbed.

Drives the testbed's devices and web apps the way a household does —
morning and evening activity peaks on switches and voice, a workday
email stream, ambient temperature following a daily cycle, weather
changing on frontal timescales — so soak tests and capacity studies can
run the engine against realistic, bursty, time-of-day-shaped input
(§6 notes IoT workloads are highly bursty).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.simcore.process import Process, Timeout
from repro.simcore.rng import Rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testbed.testbed import Testbed

HOUR = 3600.0
DAY = 24 * HOUR


def diurnal_rate(t: float, base_per_hour: float, morning_peak: float = 7.5,
                 evening_peak: float = 19.5, width_hours: float = 2.0) -> float:
    """Events/hour at simulated time ``t``: two Gaussian activity bumps.

    Models human-driven device interaction: quiet overnight, a morning
    bump around 7:30, a bigger evening bump around 19:30.
    """
    hour = (t % DAY) / HOUR
    def bump(center: float, height: float) -> float:
        distance = min(abs(hour - center), 24 - abs(hour - center))
        return height * math.exp(-0.5 * (distance / width_hours) ** 2)
    return base_per_hour * (0.15 + bump(morning_peak, 0.8) + bump(evening_peak, 1.0))


@dataclass
class ScenarioStats:
    """What the scenario generator injected."""

    switch_presses: int = 0
    voice_commands: int = 0
    emails: int = 0
    weather_changes: int = 0
    temperature_updates: int = 0


class DailyScenario:
    """Spawns the household processes onto a built testbed.

    Each driver is a generator process sampling inter-event gaps from the
    diurnal rate via thinning (sample at the peak rate, accept with
    probability rate(t)/peak).
    """

    def __init__(self, testbed: "Testbed", seed: int = 1) -> None:
        self.testbed = testbed
        self.rng = Rng(seed=seed, name="scenario")
        self.stats = ScenarioStats()
        self._processes: List[Process] = []

    def start(
        self,
        switch_per_hour: float = 2.0,
        voice_per_hour: float = 3.0,
        emails_per_hour: float = 4.0,
        weather_dwell_hours: float = 6.0,
    ) -> "DailyScenario":
        """Spawn all drivers; returns self for chaining."""
        sim = self.testbed.sim
        self._processes = [
            Process(sim, self._switch_driver(switch_per_hour), name="scenario.switch"),
            Process(sim, self._voice_driver(voice_per_hour), name="scenario.voice"),
            Process(sim, self._email_driver(emails_per_hour), name="scenario.email"),
            Process(sim, self._weather_driver(weather_dwell_hours), name="scenario.weather"),
            Process(sim, self._temperature_driver(), name="scenario.temperature"),
        ]
        return self

    def stop(self) -> None:
        """Interrupt all drivers."""
        for process in self._processes:
            process.interrupt("scenario stopped")

    # -- drivers -----------------------------------------------------------------

    def _thinned_wait(self, base_per_hour: float):
        """Yield Timeouts until the next accepted diurnal event."""
        peak = base_per_hour * 1.15  # max of the diurnal envelope
        while True:
            gap = self.rng.exponential(HOUR / peak)
            yield Timeout(gap)
            rate = diurnal_rate(self.testbed.sim.now, base_per_hour)
            if self.rng.random() < rate / peak:
                return

    def _switch_driver(self, per_hour: float):
        while True:
            yield from self._thinned_wait(per_hour)
            self.testbed.wemo.press()
            self.stats.switch_presses += 1

    def _voice_driver(self, per_hour: float):
        phrases = ("Alexa, trigger light off", "Alexa, trigger movie time",
                   "Alexa, play something mellow", "Alexa, add milk to my shopping list")
        while True:
            yield from self._thinned_wait(per_hour)
            self.testbed.echo.hear(self.rng.choice(phrases))
            self.stats.voice_commands += 1

    def _email_driver(self, per_hour: float):
        from repro.testbed.testbed import TEST_EMAIL

        senders = ("boss@corp", "newsletter@list", "friend@mail", "alerts@bank")
        count = 0
        while True:
            yield from self._thinned_wait(per_hour)
            count += 1
            self.testbed.gmail.deliver_email(
                to=TEST_EMAIL,
                sender=self.rng.choice(senders),
                subject=f"scenario mail {count}",
                attachments=("doc.pdf",) if self.rng.bernoulli(0.2) else (),
            )
            self.stats.emails += 1

    def _weather_driver(self, dwell_hours: float):
        from repro.webapps.weather import CONDITIONS

        while True:
            yield Timeout(self.rng.exponential(dwell_hours * HOUR))
            self.testbed.weather.set_conditions("home", self.rng.choice(CONDITIONS))
            self.stats.weather_changes += 1

    def _temperature_driver(self, period: float = 900.0):
        """Ambient temperature follows a smooth daily sinusoid + noise."""
        while True:
            yield Timeout(period)
            hour = (self.testbed.sim.now % DAY) / HOUR
            ambient = 20.0 + 4.0 * math.sin((hour - 9.0) / 24.0 * 2 * math.pi)
            self.testbed.nest.sense_ambient(round(ambient + self.rng.normal(0, 0.3), 2))
            self.stats.temperature_updates += 1
