"""Bridge the §3 corpus into the §4 engine: run realistic applet mixes.

The ecosystem corpus describes *what exists*; the engine executes *what
is installed*.  This module materializes corpus services as live
:class:`~repro.services.partner.PartnerService` nodes (generic endpoints
with recording executors) and installs popularity-weighted samples of
corpus applets onto an engine — so load studies run against the actual
ecosystem mix instead of hand-picked applets.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ecosystem.corpus import AppletRecord, Corpus, ServiceRecord
from repro.engine.applet import ActionRef, Applet, TriggerRef
from repro.engine.config import EngineConfig
from repro.engine.engine import IftttEngine
from repro.engine.oauth import OAuthAuthority
from repro.net.address import Address
from repro.net.latency import cloud_internal_latency
from repro.net.network import Network
from repro.services.endpoints import ActionEndpoint, TriggerEndpoint
from repro.services.partner import PartnerService
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator
from repro.simcore.trace import Trace


def materialize_service(record: ServiceRecord, trace: Optional[Trace] = None) -> PartnerService:
    """Build a live partner service from a corpus service record.

    Triggers match every ingested event (field semantics are unknown for
    generated endpoints); actions record their invocations on the
    returned service's ``executed_actions`` list.
    """
    service = PartnerService(
        Address(f"{record.slug}.cloud"), slug=record.slug, trace=trace, service_time=0.0
    )
    service.executed_actions: List[str] = []
    for trigger in record.triggers:
        service.add_trigger(TriggerEndpoint(slug=trigger.slug.split(".", 1)[-1], name=trigger.name))
    for action in record.actions:
        slug = action.slug.split(".", 1)[-1]
        service.add_action(ActionEndpoint(
            slug=slug, name=action.name,
            executor=lambda fields, s=slug, svc=service: svc.executed_actions.append(s),
        ))
    return service


@dataclass
class CorpusWorld:
    """An engine running a sampled slice of the corpus."""

    sim: Simulator
    network: Network
    engine: IftttEngine
    services: Dict[str, PartnerService]
    applets: List[Applet]
    corpus_applets: List[AppletRecord]

    def fire_trigger(self, applet_index: int, **event) -> None:
        """Inject one upstream event for the sampled applet's trigger."""
        record = self.corpus_applets[applet_index]
        service = self.services[record.trigger_service_slug]
        service.ingest_event(record.trigger_slug.split(".", 1)[-1], dict(event))

    def run_for(self, seconds: float) -> None:
        """Advance simulated time."""
        self.sim.run_until(self.sim.now + seconds)


def build_corpus_world(
    corpus: Corpus,
    n_applets: int = 100,
    engine_config: Optional[EngineConfig] = None,
    seed: int = 17,
    trace: Optional[Trace] = None,
) -> CorpusWorld:
    """Sample ``n_applets`` (popularity-weighted) and wire a live world.

    Only the services those applets touch are materialized; each sampled
    applet installs for its own synthetic user.
    """
    rng = Rng(seed=seed, name="corpus-world")
    sim = Simulator()
    network = Network(sim, rng.fork("net"))
    trace = trace if trace is not None else Trace()
    engine = network.add_node(IftttEngine(
        Address("engine.ifttt.cloud"),
        config=engine_config or EngineConfig(initial_poll_jitter=120.0),
        rng=rng.fork("engine"),
        trace=trace,
        service_time=0.0,
    ))

    applets = corpus.applets_at()
    weights = list(itertools.accumulate(a.add_count for a in applets))
    total = weights[-1]
    sampled: List[AppletRecord] = []
    seen: Set[int] = set()
    while len(sampled) < min(n_applets, len(applets)):
        record = applets[bisect.bisect_right(weights, rng.random() * total)]
        if record.applet_id not in seen:  # distinct corpus applets
            seen.add(record.applet_id)
            sampled.append(record)

    services: Dict[str, PartnerService] = {}
    authorities: Dict[str, OAuthAuthority] = {}
    for record in sampled:
        for slug in (record.trigger_service_slug, record.action_service_slug):
            if slug in services:
                continue
            service = materialize_service(corpus.service(slug), trace=trace)
            network.add_node(service)
            network.connect(engine.address, service.address, cloud_internal_latency())
            engine.publish_service(service)
            services[slug] = service
            authorities[slug] = OAuthAuthority(slug)

    installed: List[Applet] = []
    for index, record in enumerate(sampled):
        user = f"user{index:05d}"
        for slug in {record.trigger_service_slug, record.action_service_slug}:
            authorities[slug].register_user(user, "pw")
            engine.connect_service(user, services[slug], authorities[slug], "pw")
        installed.append(engine.install_applet(
            user=user,
            name=record.name,
            trigger=TriggerRef(
                record.trigger_service_slug, record.trigger_slug.split(".", 1)[-1]
            ),
            action=ActionRef(
                record.action_service_slug, record.action_slug.split(".", 1)[-1]
            ),
            author=record.author,
        ))
    return CorpusWorld(
        sim=sim, network=network, engine=engine, services=services,
        applets=installed, corpus_applets=sampled,
    )
