"""Assembly of the Figure 1 topology."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.engine.config import EngineConfig
from repro.engine.engine import IftttEngine
from repro.engine.local import LocalEngine
from repro.engine.oauth import OAuthAuthority
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.iot.alexa import AlexaCloud, EchoDevice
from repro.iot.gateway import GatewayRouter
from repro.iot.hue import HueHub, HueLamp
from repro.iot.nest import NestThermostat
from repro.iot.proxy import LocalProxy
from repro.iot.smartthings import GenericDevice, SmartThingsHub
from repro.iot.wemo import WemoSwitch
from repro.net.address import Address
from repro.net.latency import cloud_internal_latency, lan_latency, wan_latency
from repro.net.network import Network
from repro.obs.metrics import MetricsRegistry
from repro.services.custom import CustomService
from repro.services.official import (
    OfficialAlexaService,
    OfficialDriveService,
    OfficialGmailService,
    OfficialHueService,
    OfficialNestService,
    OfficialSheetsService,
    OfficialSmartThingsService,
    OfficialWeatherService,
    OfficialWemoService,
)
from repro.services.partner import PartnerService
from repro.simcore.rng import Rng
from repro.simcore.simulator import Simulator
from repro.simcore.trace import Trace
from repro.webapps.gdrive import GoogleDrive
from repro.webapps.gmail import Gmail
from repro.webapps.sheets import GoogleSheets
from repro.webapps.weather import WeatherService

#: The author's account on the testbed (applets are installed for them).
TEST_USER = "tester"
TEST_EMAIL = "tester@gmail"
TEST_PASSWORD = "hunter2"


@dataclass
class TestbedConfig:
    """Knobs for building a testbed.

    (``__test__`` opts the class out of pytest collection.)

    Attributes
    ----------
    seed:
        Master RNG seed (everything derives from it).
    engine_config:
        Engine behaviour; defaults to production IFTTT.
    with_local_engine:
        Also deploy a :class:`~repro.engine.local.LocalEngine` in the LAN
        (for the §6 distributed-execution ablation).
    custom_service_realtime:
        Whether "Our Service" sends realtime hints.
    gmail_poll_interval, sheets_poll_interval, weather_poll_interval:
        Internal web-app poll cadences of the partner services.
    trace_max_records:
        When set, the shared trace becomes a ring buffer of this many
        records (memory-bounded soak runs); ``None`` keeps the classic
        unbounded trace.
    metrics_enabled:
        Build a shared :class:`~repro.obs.metrics.MetricsRegistry` and
        attach it to the simulator, network, and engine.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` applied right
        after the topology is wired (fault times are absolute sim
        seconds).  A :class:`~repro.faults.injector.FaultInjector` is
        built either way and exposed as ``testbed.fault_injector``, so
        experiments can also apply plans mid-run.
    """

    __test__ = False  # not a pytest class, despite the name

    seed: int = 7
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    with_local_engine: bool = False
    custom_service_realtime: bool = False
    gmail_poll_interval: float = 10.0
    sheets_poll_interval: float = 15.0
    weather_poll_interval: float = 60.0
    trace_max_records: Optional[int] = None
    metrics_enabled: bool = True
    fault_plan: Optional[FaultPlan] = None


class Testbed:
    """The full measurement testbed on one simulator.

    Build with :meth:`build`; every entity of Figure 1 is then available
    as an attribute (``hue_lamp``, ``proxy``, ``engine``, ...), all wired
    through one :class:`~repro.net.network.Network` and recording into one
    shared :class:`~repro.simcore.trace.Trace`.
    """

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()
        self.sim = Simulator()
        self.rng = Rng(seed=self.config.seed, name="testbed")
        self.trace = Trace(max_records=self.config.trace_max_records)
        self.metrics = MetricsRegistry() if self.config.metrics_enabled else None
        self.sim.metrics = self.metrics
        self.network = Network(
            self.sim, self.rng.fork("network"), metrics=self.metrics
        )
        self.authorities: Dict[str, OAuthAuthority] = {}
        self.fault_injector: Optional[FaultInjector] = None
        self._built = False

    # -- construction -------------------------------------------------------------

    def build(self) -> "Testbed":
        """Instantiate and wire every entity; idempotent."""
        if self._built:
            return self
        self._build_home_lan()
        self._build_cloud()
        self._build_services()
        self._publish_and_connect()
        self.fault_injector = FaultInjector(
            self.sim, self.network,
            services=self.all_services(),
            rng=self.rng.fork("faults"),
            metrics=self.metrics, trace=self.trace,
        )
        if self.config.fault_plan is not None:
            self.fault_injector.apply(self.config.fault_plan)
        # Let subscriptions, pairing chatter, and poll-loop startup settle.
        self.sim.run_until(self.sim.now + 5.0)
        self._built = True
        return self

    def _build_home_lan(self) -> None:
        net, trace = self.network, self.trace
        self.gateway = net.add_node(GatewayRouter(Address("gateway.home")))
        self.hue_lamp = net.add_node(HueLamp(Address("hue-lamp.home"), "lamp1", trace=trace))
        self.hue_hub = net.add_node(HueHub(Address("hue-hub.home"), trace=trace))
        self.wemo = net.add_node(WemoSwitch(Address("wemo.home"), "wemo1", trace=trace))
        self.st_hub = net.add_node(SmartThingsHub(Address("st-hub.home"), trace=trace))
        self.st_lock = net.add_node(GenericDevice(Address("st-lock.home"), "lock1", "lock", trace=trace))
        self.st_motion = net.add_node(
            GenericDevice(Address("st-motion.home"), "motion1", "motion", trace=trace)
        )
        self.nest = net.add_node(
            NestThermostat(Address("nest.home"), "nest1", trace=trace)
        )
        # Star topology around the gateway (WiFi), except the Zigbee
        # lamp-hub link which is direct.
        lan_nodes = (self.hue_hub, self.wemo, self.st_hub, self.nest)
        for node in lan_nodes:
            net.connect(node.address, self.gateway.address, lan_latency())
        net.connect(self.hue_lamp.address, self.hue_hub.address, lan_latency())
        for device in (self.st_lock, self.st_motion):
            net.connect(device.address, self.st_hub.address, lan_latency())
        self.hue_hub.pair_lamp(self.hue_lamp)
        self.st_hub.pair_device(self.st_lock)
        self.st_hub.pair_device(self.st_motion)

    def _build_cloud(self) -> None:
        net, trace = self.network, self.trace
        self.internet = net.add_node(GatewayRouter(Address("core.internet")))
        net.connect(self.gateway.address, self.internet.address, wan_latency())

        self.alexa_cloud = net.add_node(AlexaCloud(Address("alexa.cloud"), trace=trace))
        self.gmail = net.add_node(Gmail(Address("gmail.cloud"), trace=trace))
        self.gdrive = net.add_node(GoogleDrive(Address("drive.cloud"), trace=trace))
        self.sheets = net.add_node(GoogleSheets(Address("sheets.cloud"), trace=trace))
        self.weather = net.add_node(WeatherService(Address("weather.cloud"), trace=trace))
        for node in (self.alexa_cloud, self.gmail, self.gdrive, self.sheets, self.weather):
            net.connect(node.address, self.internet.address, cloud_internal_latency())
        self.gmail.create_account(TEST_EMAIL)

        # The Echo lives in the LAN but its brain is the Alexa cloud.
        self.echo = net.add_node(
            EchoDevice(Address("echo.home"), "echo1", cloud=self.alexa_cloud.address, trace=trace)
        )
        net.connect(self.echo.address, self.gateway.address, lan_latency())
        # Nest phones home to its official service; wired in _build_services.

        self.engine = net.add_node(
            IftttEngine(
                Address("engine.ifttt.cloud"),
                config=self.config.engine_config,
                rng=self.rng.fork("engine"),
                trace=self.trace,
            )
        )
        net.connect(self.engine.address, self.internet.address, cloud_internal_latency())

        self.proxy = None  # created in _build_services once the custom service exists
        self.local_engine = None
        if self.config.with_local_engine:
            self.local_engine = net.add_node(
                LocalEngine(Address("local-engine.home"), trace=trace)
            )
            net.connect(self.local_engine.address, self.gateway.address, lan_latency())

    def _build_services(self) -> None:
        net, trace = self.network, self.trace
        cfg = self.config
        self.hue_service = net.add_node(
            OfficialHueService(Address("hue-service.cloud"), hub=self.hue_hub.address, trace=trace)
        )
        self.wemo_service = net.add_node(OfficialWemoService(Address("wemo-service.cloud"), trace=trace))
        self.alexa_service = net.add_node(
            OfficialAlexaService(Address("alexa-service.cloud"), alexa_cloud=self.alexa_cloud.address, trace=trace)
        )
        self.gmail_service = net.add_node(
            OfficialGmailService(
                Address("gmail-service.cloud"),
                gmail=self.gmail.address,
                user_email=TEST_EMAIL,
                poll_interval=cfg.gmail_poll_interval,
                trace=trace,
            )
        )
        self.sheets_service = net.add_node(
            OfficialSheetsService(
                Address("sheets-service.cloud"),
                sheets=self.sheets.address,
                poll_interval=cfg.sheets_poll_interval,
                trace=trace,
            )
        )
        self.drive_service = net.add_node(
            OfficialDriveService(Address("drive-service.cloud"), drive=self.gdrive.address, trace=trace)
        )
        self.nest_service = net.add_node(OfficialNestService(Address("nest-service.cloud"), trace=trace))
        self.st_service = net.add_node(
            OfficialSmartThingsService(Address("st-service.cloud"), hub=self.st_hub.address, trace=trace)
        )
        self.weather_service = net.add_node(
            OfficialWeatherService(
                Address("weather-service.cloud"),
                weather=self.weather.address,
                poll_interval=cfg.weather_poll_interval,
                trace=trace,
            )
        )
        self.custom_service = net.add_node(
            CustomService(
                Address("our-service.cloud"),
                slug="our_service",
                realtime=cfg.custom_service_realtime,
                trace=trace,
            )
        )
        for service in self.all_services():
            net.connect(service.address, self.internet.address, cloud_internal_latency())

        # The local proxy bridges LAN devices to the custom service.
        self.proxy = net.add_node(
            LocalProxy(
                Address("proxy.home"),
                service_server=self.custom_service.address,
                trace=trace,
            )
        )
        net.connect(self.proxy.address, self.gateway.address, lan_latency())
        self.custom_service.proxy = self.proxy.address

    def all_services(self):
        """Every partner service node, official and custom."""
        return [
            self.hue_service,
            self.wemo_service,
            self.alexa_service,
            self.gmail_service,
            self.sheets_service,
            self.drive_service,
            self.nest_service,
            self.st_service,
            self.weather_service,
            self.custom_service,
        ]

    def _publish_and_connect(self) -> None:
        cfg = self.config
        # Device-side wiring.
        self.hue_service.connect()
        self.wemo_service.connect_switch("wemo1", self.wemo.address)
        self.alexa_service.connect()
        self.nest.subscribe(self.nest_service.address)
        self.nest_service.connect_thermostat("nest1", self.nest.address)
        self.st_service.connect()
        self.gmail_service.start_polling()
        self.sheets_service.start_polling()
        self.weather_service.start_polling()
        # Proxy bridging for the custom service.
        self.proxy.bridge_hue_hub(self.hue_hub.address)
        self.proxy.bridge_wemo("wemo1", self.wemo.address)
        self.proxy.bridge_smartthings_hub(self.st_hub.address)
        self.custom_service.connect_gmail(
            self.gmail.address, TEST_EMAIL, poll_interval=cfg.gmail_poll_interval
        )
        self.custom_service.connect_sheets(self.sheets.address)
        self.custom_service.connect_drive(self.gdrive.address)
        # Publication + OAuth for the test user.
        for service in self.all_services():
            self.engine.publish_service(service)
            authority = OAuthAuthority(service.slug)
            authority.register_user(TEST_USER, TEST_PASSWORD)
            self.authorities[service.slug] = authority
            self.engine.connect_service(TEST_USER, service, authority, TEST_PASSWORD)

    # -- conveniences ---------------------------------------------------------------------

    def service_by_slug(self, slug: str) -> PartnerService:
        """Look up any published service by slug."""
        for service in self.all_services():
            if service.slug == slug:
                return service
        raise KeyError(f"no service with slug {slug!r}")

    def run_for(self, seconds: float) -> None:
        """Advance simulated time by ``seconds``."""
        self.sim.run_until(self.sim.now + seconds)

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"<Testbed {state} t={self.sim.now:.1f}s>"
