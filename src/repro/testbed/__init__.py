"""The measurement testbed (Figure 1) and the §4 experiment harness.

:class:`~repro.testbed.testbed.Testbed` assembles the full topology —
home LAN (Hue lamp+hub, WeMo switch, Echo Dot, SmartThings hub, Nest,
local proxy, gateway router), the cloud side (Alexa cloud, Gmail, Drive,
Sheets, Weather, every official partner service, "Our Service", and the
IFTTT engine) — on one simulator with one shared trace.

:class:`~repro.testbed.controller.TestController` (Figure 1, ❾)
automates experiments: it activates triggers (flipping the WeMo, playing
voice commands to the Echo, delivering emails), records trigger time TT,
observes action time TA, and computes trigger-to-action (T2A) latency.

The experiment modules reproduce each §4 measurement:

* :mod:`repro.testbed.t2a` — Figure 4 (A1-A7 on official services).
* :mod:`repro.testbed.scenarios` — Figure 5 + Table 5 (E1/E2/E3).
* :mod:`repro.testbed.sequential` — Figure 6 (clustered batched actions).
* :mod:`repro.testbed.concurrent` — Figure 7 (same-trigger divergence).
* :mod:`repro.testbed.loops` — the explicit/implicit infinite loops.
* :mod:`repro.testbed.chaos` — fault-plan chaos scenarios (outage,
  partition, flappy soak) proving the engine's resilience guarantees.
"""

from repro.testbed.testbed import Testbed, TestbedConfig
from repro.testbed.applets import AppletSpec, APPLET_SUITE, applet_spec
from repro.testbed.controller import TestController, T2AMeasurement
from repro.testbed.scenarios import Scenario, build_scenario, run_scenario_t2a
from repro.testbed.chaos import (
    CHAOS_SCENARIOS,
    ChaosResult,
    ChaosScenario,
    ChaosWorld,
    chaos_scenario,
    run_chaos_scenario,
)
from repro.testbed.t2a import run_official_t2a, T2AResults
from repro.testbed.sequential import run_sequential_experiment, SequentialResult, find_clusters
from repro.testbed.concurrent import run_concurrent_experiment, ConcurrentResult
from repro.testbed.loops import (
    run_explicit_loop_experiment,
    run_implicit_loop_experiment,
    LoopExperimentResult,
)
from repro.testbed.timeline import capture_timeline, TimelineEntry
from repro.testbed.workload import FleetWorld, FleetResult, run_fleet_experiment
from repro.testbed.decomposition import StageBreakdown, run_decomposition, mean_shares
from repro.testbed.scenario_gen import DailyScenario, ScenarioStats, diurnal_rate
from repro.testbed.corpus_bridge import CorpusWorld, build_corpus_world, materialize_service

__all__ = [
    "Testbed",
    "TestbedConfig",
    "AppletSpec",
    "APPLET_SUITE",
    "applet_spec",
    "TestController",
    "T2AMeasurement",
    "Scenario",
    "build_scenario",
    "run_scenario_t2a",
    "CHAOS_SCENARIOS",
    "ChaosResult",
    "ChaosScenario",
    "ChaosWorld",
    "chaos_scenario",
    "run_chaos_scenario",
    "run_official_t2a",
    "T2AResults",
    "run_sequential_experiment",
    "SequentialResult",
    "find_clusters",
    "run_concurrent_experiment",
    "ConcurrentResult",
    "run_explicit_loop_experiment",
    "run_implicit_loop_experiment",
    "LoopExperimentResult",
    "capture_timeline",
    "TimelineEntry",
    "FleetWorld",
    "FleetResult",
    "run_fleet_experiment",
    "StageBreakdown",
    "run_decomposition",
    "mean_shares",
    "DailyScenario",
    "ScenarioStats",
    "diurnal_rate",
    "CorpusWorld",
    "build_corpus_world",
    "materialize_service",
]
