"""Table 5: the event timeline of one applet execution.

Reconstructs the paper's exemplar breakdown of applet A2 under scenario
E2 — from the controller setting the trigger, through the proxy
observing/forwarding it and the service confirming, across the long wait
for the engine's poll, to the action command reaching the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.testbed.applets import applet_spec
from repro.testbed.scenarios import build_scenario


@dataclass(frozen=True)
class TimelineEntry:
    """One Table 5 row: a relative timestamp and its event description."""

    t: float
    event: str


def capture_timeline(seed: int = 7, applet_key: str = "A2", scenario_name: str = "E2") -> List[TimelineEntry]:
    """Run one execution of an applet and extract the Table 5 timeline.

    Returns entries ordered in time, with ``t`` relative to the trigger
    activation (the controller's TT).
    """
    testbed, controller, chosen = build_scenario(scenario_name, seed=seed)
    spec = applet_spec(applet_key)
    controller.install(applet_key, variant=chosen.applet_variant)
    measurement = controller.run_once(spec)
    if not measurement.completed:
        raise RuntimeError("the action never executed; raise the controller timeout")
    tt = measurement.trigger_time
    trace = testbed.trace

    entries: List[TimelineEntry] = [
        TimelineEntry(0.0, "Test controller ❾ sets the trigger event")
    ]

    def first_after(kind: str, description: str, source: Optional[str] = None, **detail) -> Optional[float]:
        records = trace.query(kind=kind, source=source, since=tt, **detail)
        if not records:
            return None
        entries.append(TimelineEntry(records[0].time - tt, description))
        return records[0].time

    first_after(
        "proxy_observed_event",
        "Local proxy ❸ observes the trigger event and notifies Our Service ❺",
        source="proxy",
    )
    first_after(
        "proxy_confirmed",
        "❸ receives the confirmation from trigger service ❺",
        source="proxy",
    )
    # The poll that actually carried the event: the first poll response
    # with new events, and the poll request that preceded it.
    carrying_response = None
    for rec in trace.query(kind="engine_poll_response", since=tt):
        if rec.get("new", 0) > 0:
            carrying_response = rec
            break
    if carrying_response is not None:
        applet_id = carrying_response.get("applet_id")
        polls = [
            rec
            for rec in trace.query(kind="engine_poll_sent", since=tt, applet_id=applet_id)
            if rec.time <= carrying_response.time
        ]
        if polls:
            entries.append(
                TimelineEntry(
                    polls[-1].time - tt,
                    "IFTTT engine ❼ polls trigger service ❺ about the trigger",
                )
            )
    first_after(
        "engine_action_sent",
        "IFTTT engine ❼ sends action request to action service ❺",
    )
    first_after(
        "proxy_command",
        "After querying ❺, ❸ sends the action to the IoT device",
        source="proxy",
    )
    entries.append(
        TimelineEntry(
            measurement.action_time - tt,
            "Test controller ❾ confirms that the action has been executed",
        )
    )
    entries.sort(key=lambda entry: entry.t)
    return entries


def format_timeline(entries: List[TimelineEntry]) -> str:
    """Render entries as the paper's two-column table."""
    lines = [f"{'t (s)':>8}  Event Description", f"{'-' * 8}  {'-' * 60}"]
    for entry in entries:
        lines.append(f"{entry.t:8.2f}  {entry.event}")
    return "\n".join(lines)
