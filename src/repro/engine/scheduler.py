"""Poll-dispatch strategies: how applet polls become simulator events.

The seed engine scheduled **one simulator timer event per applet poll**
(`sim.schedule(delay, engine._poll, runtime)`).  That is simple and
exactly reproduces the paper's per-applet polling cadence, but it keeps
one live :class:`~repro.simcore.event.Event` in the simulator heap per
installed applet — at the ROADMAP's 1M-applet north star every kernel
heap operation (including the ones for unrelated network deliveries)
pays ``O(log 1M)`` comparisons against rich Event objects.

:class:`HeapPollScheduler` replaces that with **one scheduler wake event
per engine**: due polls live in an engine-internal binary heap of plain
``(time, seq, runtime, generation)`` tuples (C-speed comparisons, no
per-poll Event allocation), and a single simulator event pops every poll
due at the wake time in one batch.  Cancellation (uninstall, disable,
reschedule) is **lazy**: the applet's generation counter is bumped and
the stale heap entry is discarded when it surfaces — with periodic
compaction so uninstall storms cannot pin memory (see
``docs/PERFORMANCE.md``).

Determinism contract
--------------------
Both strategies fire the same polls at the same simulation times in the
same order, consume the engine RNG identically, and therefore produce
identical traces, T2A samples, and metric snapshots (modulo the kernel
event counters in
:data:`~repro.obs.metrics.DISPATCH_SENSITIVE_METRICS`, because one wake
event can fire many polls).  ``tests/test_scheduler_equivalence.py``
pins this equivalence property across seeds, corpora, and all shard
strategies; ``benchmarks/bench_fleet_scale.py`` measures the speed gap.

Ordering fine print: within one engine, polls scheduled for the same
instant fire in scheduling order under both strategies (the internal
heap's ``seq`` mirrors the simulator's event sequence).  Across engines
(shards), simultaneous polls batch per shard under the heap scheduler;
shard RNGs are independent forks, so per-shard behaviour — and the
merged-snapshot algebra built on it — is unaffected.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

#: Poll-dispatch strategies understood by
#: :class:`~repro.engine.config.EngineConfig.poll_dispatch`.
POLL_DISPATCH_MODES: tuple = ("heap", "timers")

#: Compaction trigger: rebuild the internal heap once it holds at least
#: this many entries *and* at least half of them are lazily-cancelled.
COMPACT_MIN_ENTRIES = 1024


class TimerPollScheduler:
    """The seed dispatch: one simulator timer event per scheduled poll.

    Kept verbatim as the baseline for the heap/timers equivalence suite
    and the ``bench_fleet_scale`` speedup measurement.
    """

    mode = "timers"

    __slots__ = ("engine",)

    def __init__(self, engine) -> None:
        self.engine = engine

    def schedule(self, runtime, delay: float, initial: bool = False) -> None:
        """Schedule (or reschedule) the applet's next poll ``delay`` out."""
        if runtime.pending_poll_event is not None:
            runtime.pending_poll_event.cancel()
        tag = "initial-poll" if initial else "poll"
        runtime.pending_poll_event = self.engine.sim.schedule(
            delay,
            self.engine._poll,
            runtime,
            label=f"{tag}#{runtime.applet.applet_id}",
        )

    def cancel(self, runtime) -> None:
        """Cancel the applet's pending poll timer, if any."""
        if runtime.pending_poll_event is not None:
            runtime.pending_poll_event.cancel()
            runtime.pending_poll_event = None

    def pending_polls(self) -> int:
        """Live (non-cancelled) scheduled polls."""
        engine = self.engine
        return sum(
            1
            for rt in engine._applets.values()
            if rt.pending_poll_event is not None
            and not rt.pending_poll_event.canceled
        )

    def stats(self) -> Dict[str, Any]:
        """Introspection snapshot (shape shared with the heap scheduler)."""
        live = self.pending_polls()
        return {
            "mode": self.mode,
            "heap_entries": live,
            "live_entries": live,
            "stale_entries": 0,
            "compactions": 0,
            "wakes": 0,
            "batched_polls": 0,
        }


class HeapPollScheduler:
    """One simulator wake event services every applet poll of an engine.

    Entries are ``(time, seq, runtime, generation)`` tuples on a binary
    heap.  ``seq`` is a per-engine monotone counter, so same-instant
    polls pop in scheduling order — the exact tie-break the simulator's
    global event sequence gave the per-applet timers.  Because ``seq`` is
    unique, tuple comparison never reaches the runtime element, so the
    heap works at C tuple-comparison speed with no ``__lt__`` on runtime
    state.  ``generation`` is compared against the runtime's current
    ``poll_gen`` on pop: a mismatch (reschedule, disable, uninstall
    bumped it) means the entry is stale and is skipped — lazy
    cancellation, O(1) at cancel time.

    One wake event is kept in the simulator for the earliest entry; it
    is pulled earlier whenever a nearer poll is pushed, and re-armed
    after each batch.  A wake that surfaces only stale entries is a
    cheap no-op; compaction (:meth:`_maybe_compact`) bounds how many
    stale entries an uninstall storm can leave behind.
    """

    mode = "heap"

    __slots__ = (
        "engine",
        "_heap",
        "_seq",
        "_wake",
        "_firing",
        "stale_entries",
        "compactions",
        "wakes",
        "batched_polls",
    )

    def __init__(self, engine) -> None:
        self.engine = engine
        self._heap: List[Tuple[float, int, Any, int]] = []
        self._seq = itertools.count()
        self._wake: Optional[Any] = None  # the armed simulator Event
        self._firing = False  # suppress re-arming inside a wake batch
        self.stale_entries = 0
        self.compactions = 0
        self.wakes = 0
        self.batched_polls = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, runtime, delay: float, initial: bool = False) -> None:
        """Push the applet's next poll; supersedes any earlier entry."""
        if delay < 0:
            raise ValueError(f"cannot schedule a poll into the past (delay={delay})")
        if runtime.poll_scheduled:
            # The superseded entry stays in the heap; the generation bump
            # below marks it stale.
            self.stale_entries += 1
        runtime.poll_gen += 1
        runtime.poll_scheduled = True
        due = self.engine.sim.now + delay
        heappush(self._heap, (due, next(self._seq), runtime, runtime.poll_gen))
        self._arm_wake(due)

    def cancel(self, runtime) -> None:
        """Lazily cancel the applet's scheduled poll (O(1))."""
        if runtime.poll_scheduled:
            runtime.poll_scheduled = False
            runtime.poll_gen += 1
            self.stale_entries += 1
            self._maybe_compact()

    # -- the wake event -----------------------------------------------------

    def _arm_wake(self, due: float) -> None:
        if self._firing:
            # Mid-batch reschedules land in the heap only; _fire re-arms
            # once at the true earliest entry when the batch ends.
            return
        wake = self._wake
        if wake is not None:
            if wake.time <= due:
                return
            # A nearer poll arrived: pull the wake earlier.  The fresh
            # event takes a new simulator sequence number — the same one
            # the per-applet timer for this poll would have taken.
            wake.cancel()
        self._wake = self.engine.sim.schedule_at(
            due, self._fire, label="poll-wake"
        )

    def _fire(self) -> None:
        """Pop and dispatch every poll due now, then re-arm."""
        self._wake = None
        self.wakes += 1
        engine = self.engine
        now = engine.sim.now
        heap = self._heap
        poll = engine._poll
        batch = 0
        self._firing = True
        try:
            while heap and heap[0][0] <= now:
                _, _, runtime, gen = heappop(heap)
                if runtime.poll_gen != gen:
                    self.stale_entries -= 1
                    continue
                runtime.poll_scheduled = False
                batch += 1
                poll(runtime)
        finally:
            self._firing = False
        self.batched_polls += batch
        if heap:
            self._arm_wake(heap[0][0])
        self._maybe_compact()

    # -- lazy-cancellation hygiene ------------------------------------------

    def _maybe_compact(self) -> None:
        """Drop stale entries once they dominate a large heap.

        Triggered opportunistically from :meth:`cancel` and after each
        wake batch, so an uninstall storm (50% of the fleet removed at
        once) cannot leave the heap pinned at its pre-storm size.  The
        rebuild preserves entry tuples (and therefore heap order), so
        compaction is invisible to the dispatch sequence.
        """
        heap = self._heap
        if len(heap) < COMPACT_MIN_ENTRIES or self.stale_entries * 2 < len(heap):
            return
        kept = [entry for entry in heap if entry[2].poll_gen == entry[3]]
        heapify(kept)
        self._heap = kept
        self.stale_entries = 0
        self.compactions += 1

    # -- introspection ------------------------------------------------------

    def pending_polls(self) -> int:
        """Live (non-stale) scheduled polls."""
        return len(self._heap) - self.stale_entries

    def stats(self) -> Dict[str, Any]:
        """Heap occupancy and lifecycle counters (for tests and reports)."""
        return {
            "mode": self.mode,
            "heap_entries": len(self._heap),
            "live_entries": self.pending_polls(),
            "stale_entries": self.stale_entries,
            "compactions": self.compactions,
            "wakes": self.wakes,
            "batched_polls": self.batched_polls,
        }


def make_poll_scheduler(engine, mode: str):
    """Build the poll scheduler named by ``mode`` (see
    :data:`POLL_DISPATCH_MODES`)."""
    if mode == "heap":
        return HeapPollScheduler(engine)
    if mode == "timers":
        return TimerPollScheduler(engine)
    raise ValueError(
        f"unknown poll_dispatch {mode!r}; expected one of {POLL_DISPATCH_MODES}"
    )
