"""Multi-engine sharding: partition the applet corpus across N engines.

The paper measures one centralized engine; the production-scale system
this repo grows toward partitions applets across ``N``
:class:`~repro.engine.engine.IftttEngine` instances so a shard-local
outage (an open breaker, a retry storm, a dead-lettering burst) cannot
stall the rest of the fleet.  :class:`ShardedEngine` is the coordinator:

* **assignment** — applets map to shards by one of the strategies in
  :data:`~repro.engine.config.SHARD_STRATEGIES`.  The default,
  ``service_hash``, hashes the *trigger service* with a seed-stable CRC32
  (:func:`stable_service_hash`), so every poll for one service lands on
  one shard and per-service batching keeps working.  ``round_robin``
  spreads applets individually (a no-affinity baseline), and
  ``popularity_balanced`` sticks each newly seen trigger service to the
  currently least-loaded shard — taming the heavy-tailed applet
  popularity that makes naive hashing skew hot shards.
* **isolation** — every shard is a full engine with its *own*
  per-service circuit breakers, retry queues, dead-letter sink, RNG fork
  (``rng.fork("shard<i>")``), delivery health trackers
  (:mod:`repro.engine.delivery` — one shard's brownout stretch never
  slows another shard's polls), and metrics namespace
  (``engine.shard<i>.*``).  Nothing mutable is shared between shards;
  ``tests/test_sharding.py`` holds regression tests for exactly that.
* **accounting** — :meth:`ShardedEngine.stats` sums shard counters into
  fleet totals, and the conservation invariant
  ``dispatched == delivered + in_retry + dead_lettered + in_replay`` is
  checkable both per shard (:meth:`conservation`) and fleet-wide,
  because it holds shard-locally and counters add.
* **replay** — dead-letter replay (:mod:`repro.engine.replay`) stays
  shard-local: each shard's :class:`~repro.engine.replay.ReplayController`
  drains only its own sink, and :meth:`ShardedEngine.replay_dead_letters`
  fans the explicit trigger out to every shard.  Its
  ``engine.shard<i>.replay.*`` metric families fold into fleet-wide
  ``engine.replay.*`` by the same snapshot algebra as every other
  engine metric — :func:`shard_snapshot` rebases on prefix, so new
  families need no special casing.
* **snapshot algebra** — :func:`shard_snapshot` rebases one shard's
  ``engine.shard<i>.*`` metrics onto the unsharded ``engine.*`` names,
  and :func:`merged_fleet_snapshot` folds all shards into fleet totals
  with :func:`~repro.obs.metrics.merge_snapshots` (commutative, so
  shard order never matters).

See ``docs/SHARDING.md`` for the full semantics and the chaos-isolation
experiments built on top (:mod:`repro.testbed.chaos`).
"""

from __future__ import annotations

import itertools
import re
import zlib
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.applet import Applet, ActionRef, QueryRef, TriggerRef
from repro.engine.config import EngineConfig, SHARD_STRATEGIES
from repro.engine.engine import IftttEngine
from repro.engine.oauth import OAuthAuthority
from repro.engine.resilience import DeadLetter
from repro.net.address import Address
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.services.partner import PartnerService
from repro.simcore.rng import Rng
from repro.simcore.trace import Trace

#: Disjoint applet-id ranges per shard: shard ``i`` allocates ids from
#: ``100000 + i * stride``.  This is the *floor* stride; a fleet built
#: with ``expected_applets`` derives a stride wide enough for its whole
#: corpus to land on one shard (the worst-case hash skew), and every
#: shard engine enforces its range with
#: :class:`~repro.engine.engine.AppletIdRangeError` instead of silently
#: bleeding into its neighbour's ids.
APPLET_ID_STRIDE = 100000


def derive_applet_id_stride(expected_applets: Optional[int]) -> int:
    """The per-shard applet-id range width for a corpus of the given size.

    The next power of ten at or above ``expected_applets`` (floored at
    :data:`APPLET_ID_STRIDE`): under ``service_hash`` a heavy-tailed
    corpus can land almost entirely on one shard, so the stride must
    cover the *whole* corpus, not ``corpus / num_shards``.  Powers of
    ten keep shard ids readable (``engine_for`` is a subtraction away).
    """
    stride = APPLET_ID_STRIDE
    if expected_applets is not None:
        while stride < expected_applets:
            stride *= 10
    return stride

#: Default shard host pattern; ``{shard}`` is the shard index.
DEFAULT_HOST_PATTERN = "engine{shard}.ifttt.cloud"

_SHARD_METRIC_RE = re.compile(r"^engine\.shard(\d+)\.")


def stable_service_hash(slug: str) -> int:
    """A deterministic, process- and seed-stable hash of a service slug.

    Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``),
    so it would silently break replayability; CRC32 of the UTF-8 slug is
    stable everywhere and cheap.
    """
    return zlib.crc32(slug.encode("utf-8")) & 0xFFFFFFFF


class ShardedEngine:
    """Coordinator that partitions applets across N shard engines.

    Mirrors the :class:`~repro.engine.engine.IftttEngine` lifecycle API
    (publish / connect / install / enable / disable / uninstall) and
    routes each call to the owning shard, so testbeds can swap one for
    the other.  Typical wiring::

        fleet = ShardedEngine(network, config=EngineConfig(num_shards=4),
                              rng=rng.fork("engine"), trace=trace)
        fleet.publish_service(hue)
        fleet.connect_service("alice", hue, authority, "pw")
        applet = fleet.install_applet("alice", "rain -> blue", trig, act)
        fleet.engine_for(applet.applet_id)   # the owning shard

    (``__test__`` opts the class out of pytest collection.)
    """

    __test__ = False

    def __init__(
        self,
        network,
        config: Optional[EngineConfig] = None,
        rng: Optional[Rng] = None,
        trace: Optional[Trace] = None,
        num_shards: Optional[int] = None,
        shard_strategy: Optional[str] = None,
        host_pattern: str = DEFAULT_HOST_PATTERN,
        service_time: float = 0.01,
        metrics=None,
        expected_applets: Optional[int] = None,
        applet_id_stride: Optional[int] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.num_shards = self.config.num_shards if num_shards is None else num_shards
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        self.strategy = shard_strategy or self.config.shard_strategy
        if self.strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {self.strategy!r}; "
                f"expected one of {SHARD_STRATEGIES}"
            )
        # `network` is either one shared Network (the classic single-sim
        # fleet) or one Network per shard (epoch-stepped worlds on a
        # ShardedSimulator, where each shard's nodes live on its own
        # simulator — see repro.simcore.parallel and docs/SHARDING.md).
        if isinstance(network, (list, tuple)):
            if len(network) != self.num_shards:
                raise ValueError(
                    f"got {len(network)} shard networks for "
                    f"{self.num_shards} shards"
                )
            self.networks = list(network)
            self.network = None
        else:
            self.networks = [network] * self.num_shards
            self.network = network
        #: Width of each shard's disjoint applet-id range; ids are
        #: enforced against it at install time (AppletIdRangeError).
        self.applet_id_stride = (
            applet_id_stride
            if applet_id_stride is not None
            else derive_applet_id_stride(expected_applets)
        )
        if self.applet_id_stride < 1:
            raise ValueError(
                f"applet_id_stride must be >= 1, got {self.applet_id_stride}"
            )
        self.rng = rng or Rng(seed=0, name="sharded-engine")
        self.trace = trace
        self.shards: List[IftttEngine] = []
        for index in range(self.num_shards):
            # Each shard gets its own config copy with a cloned polling
            # prototype, its own named RNG fork, a disjoint applet-id
            # range, and the engine.shard<i> metrics namespace — no
            # mutable state crosses shard boundaries.
            shard_config = replace(
                self.config, poll_policy=self.config.poll_policy.clone()
            )
            shard = IftttEngine(
                Address(host_pattern.format(shard=index)),
                config=shard_config,
                rng=self.rng.fork(f"shard{index}"),
                trace=trace,
                service_time=service_time,
                metrics=metrics,
                metrics_namespace=f"engine.shard{index}",
                applet_id_start=100000 + index * self.applet_id_stride,
                applet_id_limit=self.applet_id_stride,
            )
            self.networks[index].add_node(shard)
            self.shards.append(shard)
        #: Sticky trigger-service -> shard assignment (service_hash and
        #: popularity_balanced; round_robin assigns per applet).
        self._service_shard: Dict[str, int] = {}
        self._shard_loads: List[int] = [0] * self.num_shards
        self._applet_shard: Dict[int, int] = {}
        self._published: Dict[str, Tuple[PartnerService, Dict[int, str]]] = {}
        self._rr_counter = itertools.count()

    # -- assignment --------------------------------------------------------------

    def shard_for_trigger_service(self, slug: str) -> int:
        """The shard that owns (or would own) a trigger service's polls.

        Sticky once decided: every applet triggered by ``slug`` lands on
        the same shard, so its polls batch on one engine.  Under
        ``round_robin`` no shard owns a service; this returns the
        hash-preferred shard as a best-effort answer without pinning.
        """
        assigned = self._service_shard.get(slug)
        if assigned is not None:
            return assigned
        if self.strategy == "round_robin":
            return stable_service_hash(slug) % self.num_shards
        if self.strategy == "popularity_balanced":
            shard = min(range(self.num_shards), key=lambda i: (self._shard_loads[i], i))
        else:  # service_hash
            shard = stable_service_hash(slug) % self.num_shards
        self._service_shard[slug] = shard
        self._retarget_hints(slug, shard)
        return shard

    def _retarget_hints(self, slug: str, shard: int) -> None:
        """Point a service's realtime hints (and push notifications) at
        its (newly pinned) home shard.

        ``popularity_balanced`` only learns a service's home at first
        install, which may be long after publication; re-calling
        :meth:`PartnerService.published` with the home shard's address
        and key moves the hint/push target without re-running
        onboarding.  The negotiated push contract is re-asserted from
        the home shard's registration so re-pointing never silently
        drops it.
        """
        entry = self._published.get(slug)
        if entry is not None:
            service, keys = entry
            home = self.shards[shard]
            service.published(
                home.address,
                keys[shard],
                push=home.service_registration(slug).push,
            )

    def _shard_for_new_applet(self, trigger_slug: str) -> int:
        if self.strategy == "round_robin":
            return next(self._rr_counter) % self.num_shards
        return self.shard_for_trigger_service(trigger_slug)

    def assignments(self) -> Dict[str, int]:
        """The sticky trigger-service -> shard map decided so far."""
        return dict(self._service_shard)

    def shard_loads(self) -> List[int]:
        """Installed-applet count per shard."""
        return list(self._shard_loads)

    def load_skew(self) -> float:
        """Max/mean shard load ratio (1.0 = perfectly balanced, 0 if empty)."""
        total = sum(self._shard_loads)
        if total == 0:
            return 0.0
        mean = total / self.num_shards
        return max(self._shard_loads) / mean

    # -- service publication / user connection -----------------------------------

    def publish_service(self, service: PartnerService) -> Dict[int, str]:
        """Publish a service on every shard; returns ``{shard: key}``.

        Every shard may dispatch actions to (or poll triggers of) any
        service, so each shard issues its own key and the service
        accepts them all.  :meth:`PartnerService.published` keeps the
        *last* publisher as its realtime-hint/push-notification target,
        so under ``service_hash`` the home shard publishes last, and
        under ``popularity_balanced`` the target is re-pointed when the
        home is pinned at first install (:meth:`_retarget_hints`).
        Under ``round_robin`` no shard owns a service; a hint or push
        landing on a non-owning shard is handled by whichever shard
        received it (for pushes: ingested for its own applets, or
        parked on its own breaker when open).
        """
        order = list(range(self.num_shards))
        if self.strategy == "service_hash":
            # Hash assignment is pure, so the home shard is known now and
            # can publish last.  popularity_balanced homes are unknown
            # until first install; _retarget_hints fixes them up then.
            home = stable_service_hash(service.slug) % self.num_shards
            order.remove(home)
            order.append(home)
        keys = {index: self.shards[index].publish_service(service) for index in order}
        self._published[service.slug] = (service, keys)
        return keys

    def connect_service(
        self,
        user: str,
        service: PartnerService,
        authority: OAuthAuthority,
        password: str,
    ) -> Dict[int, str]:
        """Connect a user to a service on every shard: ``{shard: token}``.

        Each shard runs its own OAuth2 flow and caches its own token —
        shards share no token cache, so one shard's revocations or
        failures never leak into another's auth state.
        """
        return {
            index: shard.connect_service(user, service, authority, password)
            for index, shard in enumerate(self.shards)
        }

    @property
    def published_slugs(self) -> List[str]:
        """Slugs published to the fleet (identical on every shard)."""
        return self.shards[0].published_slugs

    # -- applet lifecycle ---------------------------------------------------------

    def install_applet(
        self,
        user: str,
        name: str,
        trigger: TriggerRef,
        action: ActionRef,
        author: Optional[str] = None,
        extra_actions: Tuple[ActionRef, ...] = (),
        queries: Tuple[QueryRef, ...] = (),
        filter_code: Optional[str] = None,
    ) -> Applet:
        """Install an applet on the shard its trigger service maps to."""
        shard = self._shard_for_new_applet(trigger.service_slug)
        applet = self.shards[shard].install_applet(
            user,
            name,
            trigger,
            action,
            author=author,
            extra_actions=extra_actions,
            queries=queries,
            filter_code=filter_code,
        )
        self._applet_shard[applet.applet_id] = shard
        self._shard_loads[shard] += 1
        return applet

    def shard_of(self, applet_id: int) -> int:
        """Which shard owns an installed applet."""
        return self._applet_shard[applet_id]

    def engine_for(self, applet_id: int) -> IftttEngine:
        """The shard engine that owns an applet."""
        return self.shards[self.shard_of(applet_id)]

    def applet(self, applet_id: int) -> Applet:
        """Look up an applet anywhere in the fleet."""
        return self.engine_for(applet_id).applet(applet_id)

    @property
    def applets(self) -> List[Applet]:
        """All installed applets, fleet-wide."""
        return [applet for shard in self.shards for applet in shard.applets]

    def disable_applet(self, applet_id: int) -> None:
        """Stop polling for an applet (on its owning shard)."""
        self.engine_for(applet_id).disable_applet(applet_id)

    def enable_applet(self, applet_id: int) -> None:
        """Resume polling for a disabled applet."""
        self.engine_for(applet_id).enable_applet(applet_id)

    def uninstall_applet(self, applet_id: int) -> Applet:
        """Remove an applet and release its slot in the shard-load ledger."""
        shard = self._applet_shard.pop(applet_id)
        self._shard_loads[shard] -= 1
        return self.shards[shard].uninstall_applet(applet_id)

    def poll_count(self, applet_id: int) -> int:
        """How many polls the owning shard has sent for an applet."""
        return self.engine_for(applet_id).poll_count(applet_id)

    # -- fleet accounting ---------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard :meth:`IftttEngine.stats` snapshots, in shard order."""
        return [shard.stats() for shard in self.shards]

    def stats(self) -> Dict[str, int]:
        """Fleet-wide totals: shard counters summed.

        ``services`` is *not* summed (every shard publishes the same
        catalogue); it reports the fleet's distinct service count.
        """
        per_shard = self.shard_stats()
        totals = {key: sum(stats[key] for stats in per_shard) for key in per_shard[0]}
        totals["services"] = len(self.published_slugs)
        return totals

    @property
    def dead_letters(self) -> List[DeadLetter]:
        """Every dead letter in the fleet, in shard order."""
        return [letter for shard in self.shards for letter in shard.dead_letters]

    def breaker_states(self) -> Dict[int, Dict[str, str]]:
        """Per-shard breaker states — shard-local by construction."""
        return {
            index: shard.breaker_states() for index, shard in enumerate(self.shards)
        }

    def breaker_levels(self) -> Dict[int, Dict[str, int]]:
        """Per-shard numeric breaker levels (the live
        ``engine.shard<i>.breaker_state`` gauge values)."""
        return {
            index: shard.breaker_levels() for index, shard in enumerate(self.shards)
        }

    def degradation_levels(self) -> Dict[str, int]:
        """Fleet-wide degradation ladder: worst level per service.

        Health is shard-local (like breakers), so the fleet answer for a
        service is the *max* across shards — the same algebra the gauge
        merge applies when ``engine.shard<i>.degradation_level`` families
        fold into ``engine.degradation_level``.  Empty when
        ``config.delivery_policy`` is unset.
        """
        merged: Dict[str, int] = {}
        for shard in self.shards:
            if shard.delivery is None:
                continue
            for slug, level in shard.delivery.levels().items():
                if level > merged.get(slug, -1):
                    merged[slug] = level
        return merged

    def replay_dead_letters(self, service_slug: Optional[str] = None) -> None:
        """Explicitly drain dead letters on every shard (shard-locally).

        Each shard replays only its own sink; shards without matching
        letters are no-ops.  Requires ``config.replay_policy`` to be set
        (every shard inherits it), like the single-engine method.
        """
        for shard in self.shards:
            shard.replay_dead_letters(service_slug)

    def conservation(self) -> Dict[str, Any]:
        """The delivery-conservation invariant, per shard and fleet-wide.

        For every shard (and therefore for their sum), ``dispatched ==
        delivered + in_retry + dead_lettered + in_replay``; the
        ``*_lost`` entries report the residual, which must be 0.
        """
        per_shard = []
        for stats in self.shard_stats():
            per_shard.append(
                stats["actions_dispatched"]
                - stats["actions_delivered"]
                - stats["actions_in_retry"]
                - stats["dead_letters"]
                - stats["actions_in_replay"]
            )
        return {"shard_lost": per_shard, "fleet_lost": sum(per_shard)}

    def __repr__(self) -> str:
        return (
            f"<ShardedEngine shards={self.num_shards} strategy={self.strategy!r} "
            f"applets={sum(self._shard_loads)}>"
        )


# -- shard snapshot algebra -------------------------------------------------------


def shard_metric_ids(snapshot: Dict[str, Any]) -> List[int]:
    """Shard indices present in a snapshot's ``engine.shard<i>.*`` names."""
    ids = set()
    for entry in snapshot["metrics"]:
        match = _SHARD_METRIC_RE.match(entry["name"])
        if match:
            ids.add(int(match.group(1)))
    return sorted(ids)


def shard_snapshot(snapshot: Dict[str, Any], shard_id: int) -> Dict[str, Any]:
    """One shard's metrics, rebased onto the unsharded ``engine.*`` names.

    The result is a well-formed snapshot, so it feeds straight into
    :func:`~repro.obs.metrics.merge_snapshots`.
    """
    prefix = f"engine.shard{shard_id}."
    entries = [
        dict(entry, name="engine." + entry["name"][len(prefix):])
        for entry in snapshot["metrics"]
        if entry["name"].startswith(prefix)
    ]
    return {"metrics": entries}


def merged_fleet_snapshot(source: Any) -> Dict[str, Any]:
    """Fold every ``engine.shard<i>.*`` family into fleet-wide ``engine.*``.

    ``source`` may be a :class:`~repro.obs.metrics.MetricsRegistry` or a
    snapshot dict.  Merging is commutative and associative (counters
    add, gauges max, histogram buckets add — see
    :func:`~repro.obs.metrics.merge_snapshots`), so for one shard the
    result equals that shard's own rebased snapshot, and for N shards it
    equals the unsharded totals the same workload would produce.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    ids = shard_metric_ids(snapshot)
    if not ids:
        return {"metrics": []}
    return merge_snapshots(*(shard_snapshot(snapshot, i) for i in ids))
