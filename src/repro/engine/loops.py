"""Infinite-loop analysis.

§4 ("Infinite Loop") observes that chained applets can form loops — *"A
triggers B, which further triggers A"* — that production IFTTT does not
detect ("no syntax check is performed"), and that loops can also be
*implicit*: closed through an automation IFTTT cannot see, like Google
Sheets' notify-on-edit feature emailing the user whose inbox feeds an
email-to-spreadsheet applet.  §4 concludes offline analysis cannot catch
implicit loops, so "some runtime detection techniques are needed".

This module provides both halves:

* :class:`StaticLoopAnalyzer` — builds the applet channel graph (which
  actions write the channels which triggers read) and finds cycles.  It
  catches explicit loops; implicit loops are only caught if the external
  automation is declared via :meth:`~StaticLoopAnalyzer.add_external_edge`
  — exactly the paper's point that IFTTT, being unaware of the Sheets
  notification, "cannot detect the loop by analyzing the applets offline".
* :class:`RuntimeLoopDetector` — the recommended runtime technique: a
  per-applet execution rate limit that catches both loop kinds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.engine.applet import Applet
from repro.services.endpoints import Channel
from repro.services.partner import PartnerService


class LoopError(RuntimeError):
    """Raised when static checking rejects an applet install."""


@dataclass(frozen=True)
class LoopFinding:
    """One detected loop: the applet cycle and the channels that close it."""

    applets: Tuple[Applet, ...]
    channels: Tuple[Channel, ...]

    def describe(self) -> str:
        """Human-readable cycle, e.g. ``#1 a->b  ->  #2 b->a``."""
        return "  ->  ".join(f"#{a.applet_id} {a.describe()}" for a in self.applets)


class StaticLoopAnalyzer:
    """Offline cycle detection over the applet channel graph.

    Parameters
    ----------
    services:
        Published services by slug (the analyzer asks each endpoint for
        its read/written channels given the applet's fields).
    """

    def __init__(self, services: Dict[str, PartnerService]) -> None:
        self._services = services
        #: channel -> channels it propagates to via declared external automations
        self._external: Dict[Channel, Set[Channel]] = {}

    def add_external_edge(self, source: Channel, target: Channel) -> None:
        """Declare a non-IFTTT automation: writes to ``source`` mutate ``target``.

        E.g. the Sheets notification feature:
        ``add_external_edge(("sheets", "log"), ("gmail_inbox", "alice@gmail"))``.
        """
        self._external.setdefault(source, set()).add(target)

    # -- channel plumbing ------------------------------------------------------------

    def action_channels(self, applet: Applet) -> FrozenSet[Channel]:
        """Channels (including external propagation) the applet's action affects."""
        service = self._services.get(applet.action.service_slug)
        if service is None:
            return frozenset()
        try:
            direct = service.action_channels(applet.action.action_slug, applet.action.fields)
        except KeyError:
            return frozenset()
        return self._propagate(direct)

    def trigger_channels(self, applet: Applet) -> FrozenSet[Channel]:
        """Channels whose mutation can fire the applet's trigger."""
        service = self._services.get(applet.trigger.service_slug)
        if service is None:
            return frozenset()
        try:
            return frozenset(service.trigger_channels(applet.trigger.trigger_slug, applet.trigger.fields))
        except KeyError:
            return frozenset()

    def _propagate(self, channels: FrozenSet[Channel]) -> FrozenSet[Channel]:
        """Transitive closure through declared external automations."""
        closure: Set[Channel] = set(channels)
        frontier = list(channels)
        while frontier:
            channel = frontier.pop()
            for target in self._external.get(channel, ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def feeds(self, upstream: Applet, downstream: Applet) -> FrozenSet[Channel]:
        """Channels through which ``upstream``'s action can fire ``downstream``."""
        return self.action_channels(upstream) & self.trigger_channels(downstream)

    # -- cycle detection ----------------------------------------------------------------

    def find_cycles(self, applets: Sequence[Applet]) -> List[LoopFinding]:
        """All elementary applet cycles among ``applets``.

        Uses iterative DFS with an on-stack set; each cycle is reported
        once, rooted at its smallest applet id.
        """
        edges: Dict[int, List[Tuple[int, FrozenSet[Channel]]]] = {a.applet_id: [] for a in applets}
        by_id = {a.applet_id: a for a in applets}
        for upstream in applets:
            for downstream in applets:
                shared = self.feeds(upstream, downstream)
                if shared:
                    edges[upstream.applet_id].append((downstream.applet_id, shared))
        findings: List[LoopFinding] = []
        seen_cycles: Set[Tuple[int, ...]] = set()

        def dfs(root: int) -> None:
            stack: List[Tuple[int, List[int]]] = [(root, [root])]
            while stack:
                node, path = stack.pop()
                for successor, shared in edges.get(node, ()):
                    if successor == root:
                        cycle = tuple(path)
                        canonical = self._canonical(cycle)
                        if canonical not in seen_cycles and min(cycle) == root:
                            seen_cycles.add(canonical)
                            findings.append(
                                LoopFinding(
                                    applets=tuple(by_id[i] for i in cycle),
                                    channels=tuple(sorted(shared)),
                                )
                            )
                    elif successor not in path and successor > root:
                        stack.append((successor, path + [successor]))

        for applet_id in sorted(edges):
            dfs(applet_id)
        return findings

    @staticmethod
    def _canonical(cycle: Tuple[int, ...]) -> Tuple[int, ...]:
        pivot = cycle.index(min(cycle))
        return cycle[pivot:] + cycle[:pivot]

    def cycle_introduced_by(
        self, existing: Sequence[Applet], candidate: Applet
    ) -> Optional[List[Applet]]:
        """The cycle the candidate applet would create, or ``None``.

        This is the "syntax check" the paper confirms IFTTT does *not*
        perform; the engine runs it only when
        ``EngineConfig.static_loop_check`` is enabled.
        """
        combined = list(existing) + [candidate]
        for finding in self.find_cycles(combined):
            if any(a.applet_id == candidate.applet_id for a in finding.applets):
                return list(finding.applets)
        return None


class RuntimeLoopDetector:
    """Execution-rate loop detection (the §4/§6 recommendation).

    Flags an applet whose action executes more than ``threshold`` times
    within any sliding ``window`` seconds.  Rate-based detection is
    loop-kind agnostic: it catches explicit chains and implicit loops
    closed outside IFTTT equally, at the cost of also flagging any
    legitimately hyperactive applet (tune ``threshold`` accordingly).
    """

    def __init__(self, threshold: int = 10, window: float = 60.0) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.threshold = threshold
        self.window = window
        self._executions: Dict[int, Deque[float]] = {}
        self.flagged: Set[int] = set()

    def observe(self, applet_id: int, now: float) -> bool:
        """Record one execution; returns True if the applet trips the limit."""
        history = self._executions.setdefault(applet_id, deque())
        history.append(now)
        while history and history[0] < now - self.window:
            history.popleft()
        if len(history) > self.threshold:
            self.flagged.add(applet_id)
            return True
        return False

    def rate(self, applet_id: int) -> int:
        """Executions currently inside the applet's sliding window."""
        return len(self._executions.get(applet_id, ()))

    def reset(self, applet_id: int) -> None:
        """Clear an applet's history and flag (after manual intervention)."""
        self._executions.pop(applet_id, None)
        self.flagged.discard(applet_id)
