"""Applets: "if A then B".

An applet couples one trigger (from some service) with one action (from a
usually different service), each parameterized by *fields* (§2).  Action
fields may reference trigger ingredients with ``{{name}}`` templating —
how "add a row with the song title" carries the title from the Alexa
trigger into the Sheets action.
"""

from __future__ import annotations

import enum
import hashlib
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

_TEMPLATE_RE = re.compile(r"\{\{\s*([A-Za-z0-9_]+)\s*\}\}")


@dataclass(frozen=True)
class TriggerRef:
    """A reference to one trigger of one service, with its field values."""

    service_slug: str
    trigger_slug: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def identity(self, applet_id: int, user: str) -> str:
        """The trigger identity: a stable hash of (applet, user, trigger).

        Real IFTTT derives trigger identities the same way — an opaque
        stable token the service uses to key its event buffer.
        """
        blob = f"{applet_id}|{user}|{self.service_slug}|{self.trigger_slug}|{sorted(self.fields.items())}"
        return hashlib.sha1(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ActionRef:
    """A reference to one action of one service, with its field values."""

    service_slug: str
    action_slug: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def resolve_fields(self, ingredients: Dict[str, Any]) -> Dict[str, Any]:
        """Substitute ``{{ingredient}}`` templates using trigger ingredients.

        Non-string fields pass through unchanged; unknown ingredient names
        render as an empty string (IFTTT renders missing ingredients
        blank rather than failing the action).
        """
        resolved: Dict[str, Any] = {}
        for key, value in self.fields.items():
            if isinstance(value, str):
                resolved[key] = _TEMPLATE_RE.sub(
                    lambda match: str(ingredients.get(match.group(1), "")), value
                )
            else:
                resolved[key] = value
        return resolved


@dataclass(frozen=True)
class QueryRef:
    """A reference to one query of one service, with its field values.

    Queries run while the applet executes; their rows are exposed to the
    filter condition under ``queries.<query_slug>`` (§6's "queries"
    future-work feature).
    """

    service_slug: str
    query_slug: str
    fields: Dict[str, Any] = field(default_factory=dict)


class AppletState(enum.Enum):
    """Lifecycle state of an installed applet."""

    ENABLED = "enabled"
    DISABLED = "disabled"


@dataclass
class Applet:
    """One installed trigger-action rule.

    Attributes
    ----------
    applet_id:
        Engine-assigned id (the paper crawled applets by enumerating
        six-digit ids; the ecosystem generator mirrors that id space).
    name:
        Human-readable applet title.
    user:
        Installing user (each install of a shared applet is a distinct
        engine-side applet instance).
    trigger, action:
        The endpoint references.
    author:
        Publishing user or service, for the §3 user-contribution analysis.
    """

    applet_id: int
    name: str
    user: str
    trigger: TriggerRef
    action: ActionRef
    author: Optional[str] = None
    state: AppletState = AppletState.ENABLED
    executions: int = 0
    #: Extra actions beyond ``action`` — modern IFTTT's multi-action
    #: applets ("if A then B and C" as one rule, cf. §4's concurrency
    #: workaround of installing two applets).
    extra_actions: Tuple["ActionRef", ...] = ()
    #: Queries executed per trigger event; results feed the filter.
    queries: Tuple[QueryRef, ...] = ()
    #: Optional condition (see :mod:`repro.engine.filters`); the action
    #: only runs when it evaluates truthy over
    #: ``{"trigger": ingredients, "queries": {...}, "meta": {...}}``.
    filter_code: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """Whether the engine should be polling this applet's trigger."""
        return self.state is AppletState.ENABLED

    @property
    def trigger_identity(self) -> str:
        """The trigger identity the engine presents to the trigger service."""
        return self.trigger.identity(self.applet_id, self.user)

    def describe(self) -> str:
        """One-line summary, e.g. ``wemo.activated -> sheets.add_row``."""
        return (
            f"{self.trigger.service_slug}.{self.trigger.trigger_slug}"
            f" -> {self.action.service_slug}.{self.action.action_slug}"
        )

    def __repr__(self) -> str:
        return f"<Applet #{self.applet_id} {self.describe()} [{self.state.value}]>"
