"""The IFTTT engine (Figure 1, ❼) — the paper's system under test.

This package implements the centralized trigger-action engine whose
behaviour §4 measures:

* :mod:`repro.engine.applet` — applets: a trigger reference, an action
  reference, field parameters, and install metadata.
* :mod:`repro.engine.engine` — the engine itself: service publication,
  applet installation, the batched poll loop, event dedup, action
  dispatch with ingredient templating, and the realtime-hint endpoint.
* :mod:`repro.engine.poller` — polling-interval policies.  The production
  policy reproduces the paper's long, highly variable polling delay
  (T2A quartiles ≈ 58/84/122 s, tail to ~15 min); a 1 s fixed policy
  reproduces experiment E3.
* :mod:`repro.engine.oauth` — the OAuth2 authorization-code flow used to
  connect user accounts to services, with tokens cached at the engine.
* :mod:`repro.engine.permissions` — IFTTT's coarse service-level
  permission grants and the finer-grained alternative §6 recommends.
* :mod:`repro.engine.loops` — static (channel-graph) and runtime loop
  detection; disabled by default, matching the measured IFTTT behaviour
  ("no syntax check is performed").
* :mod:`repro.engine.local` — a home-LAN local engine and a hybrid
  scheduler, implementing §6's distributed-applet-execution proposal.
* :mod:`repro.engine.resilience` — retry policies, per-service circuit
  breakers, and the action dead-letter sink that keep the engine honest
  under the fault plans of :mod:`repro.faults`.
* :mod:`repro.engine.delivery` — health-aware adaptive delivery: the
  per-service :class:`ServiceHealth` EWMA tracker, the
  :class:`AdaptiveDeliveryPolicy` wrapper that stretches any polling
  policy under brownout and provably restores the §4 interval
  distribution after heal, and the :class:`DeliveryController` that
  adds watermarked admission control and the 4-level degradation
  ladder (``docs/ROBUSTNESS.md``, "Adaptive delivery & degradation
  ladder").
* :mod:`repro.engine.push` — push-first delivery: the opt-in per-service
  push contract (payload-carrying ``POST /ifttt/v1/webhooks/push``
  notifications), engine-side ingestion batching via coalescing drains,
  and watermarked backpressure that degrades a service push→hint→poll
  (``docs/DELIVERY.md``).
* :mod:`repro.engine.replay` — the :class:`ReplayController` that drains
  a healed service's dead letters back through delivery, coalescing
  same-service actions into batched requests (``docs/ROBUSTNESS.md``,
  "Replay & batching").
* :mod:`repro.engine.sharding` — the :class:`ShardedEngine` coordinator
  that partitions applets across N engines with per-shard breakers,
  metrics scopes, and a mergeable fleet snapshot (``docs/SHARDING.md``).
* :mod:`repro.engine.scheduler` — poll-dispatch strategies: the
  fleet-scale heap scheduler (one wake event per engine, lazy
  cancellation) and the seed per-applet-timer baseline, selected by
  ``EngineConfig.poll_dispatch`` (``docs/PERFORMANCE.md``).
"""

from repro.engine.applet import Applet, TriggerRef, ActionRef, AppletState, QueryRef
from repro.engine.config import EngineConfig, SHARD_STRATEGIES
from repro.engine.poller import (
    PollingPolicy,
    ProductionPollingPolicy,
    FixedPollingPolicy,
    AdaptivePollingPolicy,
)
from repro.engine.delivery import (
    AdaptiveDeliveryPolicy,
    DEGRADATION_LEVEL_NAMES,
    DeliveryController,
    DeliveryPolicy,
    ServiceHealth,
    sampled_interval_quartiles,
)
from repro.engine.push import (
    DELIVERY_MODES,
    PUSH_RUNG_NAMES,
    PushController,
    PushDeliveryPolicy,
    PushPolicy,
    PushServiceState,
)
from repro.engine.oauth import OAuthAuthority, OAuthGrant
from repro.engine.engine import (
    AppletIdRangeError,
    IftttEngine,
    ServiceRegistration,
)
from repro.engine.permissions import (
    Scope,
    ServicePermissionModel,
    PerEndpointPermissionModel,
    excess_privilege,
)
from repro.engine.loops import (
    StaticLoopAnalyzer,
    RuntimeLoopDetector,
    LoopFinding,
)
from repro.engine.local import LocalEngine, HybridScheduler
from repro.engine.replay import ReplayController
from repro.engine.resilience import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    DeadLetter,
    PendingAction,
    ReplayPolicy,
    RetryPolicy,
)
from repro.engine.scheduler import (
    HeapPollScheduler,
    POLL_DISPATCH_MODES,
    TimerPollScheduler,
    make_poll_scheduler,
)
from repro.engine.sharding import (
    ShardedEngine,
    merged_fleet_snapshot,
    shard_snapshot,
    stable_service_hash,
)
from repro.engine.filters import (
    FilterSyntaxError,
    FilterEvalError,
    parse as parse_filter,
    evaluate as evaluate_filter,
)

__all__ = [
    "Applet",
    "TriggerRef",
    "ActionRef",
    "AppletState",
    "QueryRef",
    "FilterSyntaxError",
    "FilterEvalError",
    "parse_filter",
    "evaluate_filter",
    "EngineConfig",
    "PollingPolicy",
    "ProductionPollingPolicy",
    "FixedPollingPolicy",
    "AdaptivePollingPolicy",
    "OAuthAuthority",
    "OAuthGrant",
    "AppletIdRangeError",
    "IftttEngine",
    "ServiceRegistration",
    "Scope",
    "ServicePermissionModel",
    "PerEndpointPermissionModel",
    "excess_privilege",
    "StaticLoopAnalyzer",
    "RuntimeLoopDetector",
    "LoopFinding",
    "LocalEngine",
    "HybridScheduler",
    "RetryPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "PendingAction",
    "DeadLetter",
    "ReplayPolicy",
    "ReplayController",
    "DeliveryPolicy",
    "DeliveryController",
    "ServiceHealth",
    "AdaptiveDeliveryPolicy",
    "DEGRADATION_LEVEL_NAMES",
    "sampled_interval_quartiles",
    "DELIVERY_MODES",
    "PUSH_RUNG_NAMES",
    "PushPolicy",
    "PushController",
    "PushDeliveryPolicy",
    "PushServiceState",
    "POLL_DISPATCH_MODES",
    "HeapPollScheduler",
    "TimerPollScheduler",
    "make_poll_scheduler",
    "SHARD_STRATEGIES",
    "ShardedEngine",
    "stable_service_hash",
    "shard_snapshot",
    "merged_fleet_snapshot",
]
