"""Dead-letter replay with batched action dispatch.

The paper's §4/§6 analysis shows partner outages surfacing as silent
latency spikes and fleet load dominated by bursty *catch-up* traffic
after recovery.  PR 2 gave the engine a dead-letter sink so no action is
silently lost; this module closes the loop: when a service **heals**
(its circuit breaker closes, or an operator triggers replay explicitly),
its dead letters are drained back into
:class:`~repro.engine.resilience.PendingAction` commitments and
re-dispatched.

Replay generates exactly the same-service catch-up burst that **batched
action dispatch** is meant to flatten, so the two ship as a pair: the
controller coalesces up to
:attr:`~repro.engine.resilience.ReplayPolicy.batch_limit` (default 50,
the paper's polling ``limit`` k) same-service actions into one
:class:`~repro.services.partner.BatchActionRequest` against
``POST /ifttt/v1/actions/batch``; with
:attr:`~repro.engine.resilience.ReplayPolicy.batching` off, every action
travels alone — the baseline ``repro chaos --replay`` compares against.

Accounting extends the conservation invariant by one state::

    dispatched == delivered + in_retry + dead_lettered + in_replay

A drained letter moves ``dead_lettered -> in_replay``; a per-entry batch
success moves ``in_replay -> delivered``; a per-entry failure moves
``in_replay`` back through the ordinary retry pipeline
(``engine._note_action_failure``), ending in ``in_retry`` or a fresh
dead letter.  Nothing is ever in two states at once, so the sum is
conserved at every simulator step — per shard, and therefore fleet-wide
(see ``docs/SHARDING.md``).

Letters whose applet has been uninstalled are *not* replayed (delivering
for a removed applet is the exact bug
:meth:`~repro.engine.engine.IftttEngine.uninstall_applet` closes for the
retry queue); they stay sealed in the sink.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.engine.resilience import DeadLetter, PendingAction, ReplayPolicy
from repro.net.http import HttpResponse
from repro.obs.metrics import COUNT_BUCKETS
from repro.services.partner import ACTION_PATH, BATCH_ACTION_PATH, BatchActionRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.engine import IftttEngine


class ReplayController:
    """Drains a healed service's dead letters back through delivery.

    One controller per engine (per *shard* in a fleet — replay is
    shard-local, like every other resilience mechanism).  The engine
    calls :meth:`on_service_healed` from its breaker-transition hook;
    operators call :meth:`replay_service` directly.
    """

    def __init__(self, engine: "IftttEngine", policy: ReplayPolicy) -> None:
        self.engine = engine
        self.policy = policy
        #: Totals, mirrored into ``{ns}.replay.*`` metrics.
        self.drains = 0
        self.dead_letters_replayed = 0
        self.requests_sent = 0
        self.actions_delivered = 0
        self.actions_failed = 0
        #: ``(delivered_at, record)`` per replayed delivery, in order —
        #: the chaos testbed reads this to measure the catch-up burst.
        self.deliveries: List[Tuple[float, PendingAction]] = []
        #: Burst envelope: first re-dispatch and last replayed delivery.
        self.first_dispatch_at: Optional[float] = None
        self.last_delivery_at: Optional[float] = None
        #: Services with a drain already scheduled (dedupes heal events).
        self._drain_scheduled: Dict[str, bool] = {}

    # -- triggers -------------------------------------------------------------

    def on_service_healed(self, service_slug: str) -> None:
        """Breaker-close hook: schedule a drain if the policy allows it."""
        if not self.policy.replay_on_heal:
            return
        self._schedule_drain(service_slug)

    def replay_service(self, service_slug: str) -> None:
        """Explicit trigger: drain one service's dead letters now."""
        self._drain(service_slug)

    def _schedule_drain(self, service_slug: str) -> None:
        if self._drain_scheduled.get(service_slug):
            return
        if not any(
            letter.service_slug == service_slug and self._replayable(letter)
            for letter in self.engine.dead_letters
        ):
            return
        self._drain_scheduled[service_slug] = True
        # Deferred by (at least) one zero-delay event so the drain never
        # runs re-entrantly inside the response callback that closed the
        # breaker.
        self.engine.sim.schedule(
            self.policy.drain_delay,
            self._scheduled_drain,
            service_slug,
            label=f"replay-drain:{service_slug}",
        )

    def _scheduled_drain(self, service_slug: str) -> None:
        self._drain_scheduled[service_slug] = False
        self._drain(service_slug)

    def _defer_drain(self, service_slug: str) -> None:
        """Retry a headroom-starved drain after the delivery backoff."""
        if self._drain_scheduled.get(service_slug):
            return
        self._drain_scheduled[service_slug] = True
        self.engine.sim.schedule(
            self.engine.delivery.policy.replay_drain_backoff,
            self._scheduled_drain,
            service_slug,
            label=f"replay-redrain:{service_slug}",
        )

    def _replayable(self, letter: DeadLetter) -> bool:
        """Replaying for an uninstalled applet would resurrect the
        removed-applet delivery bug; such letters stay sealed."""
        return letter.applet_id in self.engine._applets

    # -- the drain ------------------------------------------------------------

    def _drain(self, service_slug: str) -> None:
        engine = self.engine
        drained: List[DeadLetter] = []
        kept: List[DeadLetter] = []
        # Delivery admission: a drain may only put as many records in
        # flight as the retry queue's high watermark leaves room for —
        # a catch-up burst respects the same ingestion bound ordinary
        # failures do.  Letters past the headroom stay sealed and a
        # re-drain is scheduled ``replay_drain_backoff`` out.
        headroom = (
            engine.delivery.replay_headroom(service_slug)
            if engine.delivery is not None
            else None
        )
        deferred = 0
        for letter in engine.dead_letters:
            if letter.service_slug == service_slug and self._replayable(letter):
                if headroom is not None and len(drained) >= headroom:
                    deferred += 1
                    kept.append(letter)
                else:
                    drained.append(letter)
            else:
                kept.append(letter)
        if deferred:
            engine.delivery.note_replay_drain_deferred(service_slug)
            self._defer_drain(service_slug)
        if not drained:
            return
        engine.dead_letters[:] = kept
        records = [letter.to_pending() for letter in drained]
        engine.actions_in_replay += len(records)
        if engine.delivery is not None:
            engine.delivery.note_replay_enqueued(service_slug, len(records))
        self.drains += 1
        self.dead_letters_replayed += len(records)
        ns = engine.metrics_namespace
        if engine.metrics is not None:
            engine.metrics.counter(f"{ns}.replay.drains", service=service_slug).inc()
            engine.metrics.counter(
                f"{ns}.replay.dead_letters_replayed", service=service_slug
            ).inc(len(records))
            engine.metrics.gauge(f"{ns}.replay.in_replay", service=service_slug).set(
                engine.actions_in_replay
            )
        if engine.trace is not None:
            engine.trace.record(
                engine.now,
                ns,
                "engine_replay_drain",
                service=service_slug,
                letters=len(records),
                batching=self.policy.batching,
            )
        if self.policy.batching:
            limit = self.policy.batch_limit
            for start in range(0, len(records), limit):
                self._send_batch(service_slug, records[start:start + limit])
        else:
            for record in records:
                self._send_single(record)

    # -- dispatch -------------------------------------------------------------

    def _mark_dispatch(self) -> None:
        self.requests_sent += 1
        if self.first_dispatch_at is None:
            self.first_dispatch_at = self.engine.now

    def _shed(self, records: List[PendingAction]) -> None:
        """Breaker re-opened under the drain: burn one attempt each and
        hand the records back to the ordinary failure pipeline."""
        engine = self.engine
        for record in records:
            record.attempts += 1
            engine.actions_in_replay -= 1
            if engine.delivery is not None:
                engine.delivery.note_replay_dequeued(record.service_slug)
            self.actions_failed += 1
            engine._note_action_failure(record)
        if engine.metrics is not None:
            engine.metrics.counter(
                f"{engine.metrics_namespace}.replay.actions_shed",
                service=records[0].service_slug,
            ).inc(len(records))

    def _send_batch(self, service_slug: str, records: List[PendingAction]) -> None:
        engine = self.engine
        breaker = engine.breaker_for(service_slug)
        if breaker is not None and not breaker.allow(engine.now):
            self._shed(records)
            return
        self._mark_dispatch()
        for record in records:
            record.attempts += 1
        registration = engine._services[service_slug]
        batch = BatchActionRequest(entries=tuple(
            {
                "action_slug": record.action_slug,
                "actionFields": record.fields,
                "user": record.user,
            }
            for record in records
        ))
        ns = engine.metrics_namespace
        if engine.metrics is not None:
            engine.metrics.counter(f"{ns}.replay.batches_sent", service=service_slug).inc()
            engine.metrics.histogram(
                f"{ns}.replay.batch_size", bounds=COUNT_BUCKETS, service=service_slug
            ).observe(len(records))
        engine.post(
            registration.address,
            BATCH_ACTION_PATH,
            body=batch.to_body(),
            headers=engine._auth_headers(registration, records[0].user),
            on_response=lambda response, recs=tuple(records): (
                self._on_batch_result(list(recs), response)
            ),
            timeout=engine.config.action_timeout,
        )

    def _send_single(self, record: PendingAction) -> None:
        engine = self.engine
        breaker = engine.breaker_for(record.service_slug)
        if breaker is not None and not breaker.allow(engine.now):
            self._shed([record])
            return
        self._mark_dispatch()
        record.attempts += 1
        registration = engine._services[record.service_slug]
        engine.post(
            registration.address,
            ACTION_PATH + record.action_slug,
            body={"actionFields": record.fields, "user": record.user},
            headers=engine._auth_headers(registration, record.user),
            on_response=lambda response, r=record: self._on_single_result(r, response),
            timeout=engine.config.action_timeout,
        )

    # -- results --------------------------------------------------------------

    def _on_batch_result(self, records: List[PendingAction], response: HttpResponse) -> None:
        engine = self.engine
        breaker = engine.breaker_for(records[0].service_slug)
        if not response.ok:
            if breaker is not None:
                breaker.record_failure(engine.now)
            for record in records:
                record.last_status = response.status
                self._refail(record)
            return
        if breaker is not None:
            breaker.record_success(engine.now)
        data = (response.body or {}).get("data", [])
        for index, record in enumerate(records):
            entry = data[index] if index < len(data) else {"status": 500}
            status = int(entry.get("status", 500))
            record.last_status = status
            if 200 <= status < 300:
                self._delivered(record)
            else:
                self._refail(record)

    def _on_single_result(self, record: PendingAction, response: HttpResponse) -> None:
        engine = self.engine
        breaker = engine.breaker_for(record.service_slug)
        record.last_status = response.status
        if response.ok:
            if breaker is not None:
                breaker.record_success(engine.now)
            self._delivered(record)
        else:
            if breaker is not None:
                breaker.record_failure(engine.now)
            self._refail(record)

    def _delivered(self, record: PendingAction) -> None:
        engine = self.engine
        engine.actions_in_replay -= 1
        if engine.delivery is not None:
            engine.delivery.note_replay_dequeued(record.service_slug)
        engine.actions_delivered += 1
        self.actions_delivered += 1
        self.last_delivery_at = engine.now
        self.deliveries.append((engine.now, record))
        ns = engine.metrics_namespace
        if engine.metrics is not None:
            engine.metrics.counter(
                f"{ns}.replay.actions_delivered", service=record.service_slug
            ).inc()
            engine.metrics.counter(
                f"{ns}.actions_delivered", service=record.service_slug
            ).inc()
            # Latency of the replayed event measured from its original
            # dispatch commitment — the T2A the user finally observes.
            engine.metrics.histogram(
                f"{ns}.replay.t2a_seconds", service=record.service_slug
            ).observe(max(0.0, engine.now - record.created_at))
            engine.metrics.gauge(
                f"{ns}.replay.in_replay", service=record.service_slug
            ).set(engine.actions_in_replay)
        if engine.trace is not None:
            engine.trace.record(
                engine.now,
                ns,
                "engine_replay_delivered",
                applet_id=record.applet_id,
                service=record.service_slug,
                event_id=record.event_id,
            )

    def _refail(self, record: PendingAction) -> None:
        engine = self.engine
        engine.actions_in_replay -= 1
        if engine.delivery is not None:
            engine.delivery.note_replay_dequeued(record.service_slug)
        self.actions_failed += 1
        if engine.metrics is not None:
            ns = engine.metrics_namespace
            engine.metrics.counter(
                f"{ns}.replay.actions_failed", service=record.service_slug
            ).inc()
            engine.metrics.gauge(
                f"{ns}.replay.in_replay", service=record.service_slug
            ).set(engine.actions_in_replay)
        engine._note_action_failure(record)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot folded into :meth:`IftttEngine.stats`."""
        return {
            "replay_drains": self.drains,
            "dead_letters_replayed": self.dead_letters_replayed,
            "replay_requests_sent": self.requests_sent,
            "replay_actions_delivered": self.actions_delivered,
            "replay_actions_failed": self.actions_failed,
        }

    def __repr__(self) -> str:
        return (
            f"<ReplayController replayed={self.dead_letters_replayed} "
            f"requests={self.requests_sent} delivered={self.actions_delivered}>"
        )
