"""Push-first delivery: partner services notify the engine directly.

§6 ("Performance Improvements") frames the trade: polling dominates
time-to-action (T2A quartiles 58/84/122 s), but *"if all trigger
services perform push, the incurred instantaneous workload may be too
high"*.  This module builds the full-push half of that comparison as a
first-class delivery mode:

* **Opt-in contract.**  A :class:`~repro.services.partner.PartnerService`
  constructed with ``push=True`` declares the capability; the contract
  is *negotiated at publication*: an engine whose
  :attr:`~repro.engine.config.EngineConfig.push_policy` is set accepts
  it (``ServiceRegistration.push``), and the service then POSTs event
  payloads to ``/ifttt/v1/webhooks/push`` instead of mere realtime
  hints.  This generalizes the Alexa-style allowlist: hints name
  identities and still cost a fetch poll; pushes carry the wire events
  inline, so delivery skips the poll round-trip entirely.
* **Ingestion batching.**  Notifications land in a per-service pending
  queue and are drained by a coalescing simulator event: the first
  arrival arms one drain ``batch_window`` seconds out, later arrivals
  join it, and each drain processes up to ``max_batch`` entries —
  turning the §6 "instantaneous fleet-wide spike" into bounded batches.
* **Watermarked backpressure.**  The pending backlog degrades the
  service down a three-rung ladder — **push → hint → poll**: below
  ``low_watermark`` payloads are ingested directly; between the
  watermarks new arrivals drop their payload and become hint-style fast
  polls; at ``high_watermark`` they are shed outright and the identity
  waits for its polling cadence.  Recovery is hysteretic: a service
  re-earns the push rung only once its backlog drains below
  ``low_watermark``.
* **Uniform health tracking.**  Push slots in *behind* the existing
  resilience stack: an open breaker parks notifications in the same
  per-service suppression dict realtime hints use (counted by
  ``realtime_hints_suppressed``/``_resumed``) and resumes them as fast
  polls on close; when a :class:`~repro.engine.delivery.DeliveryController`
  is active, degraded-to-hint fast polls pass through its watermark
  admission, so the PR 6 degradation ladder and ``overload`` shedding
  apply to push traffic unchanged.

Safety net & restoration
------------------------

Applets on a push-contract service still poll — at
``safety_net_interval`` (a slow background sweep that catches anything
a lost notification missed; the trigger buffer is a non-consuming ring
and the engine dedupes by ``meta.id``, so double delivery is
structurally impossible).  :class:`PushDeliveryPolicy` draws that
constant with **no RNG consumption**; on the ``poll`` rung it delegates
to the wrapped base policy verbatim, so a degraded-push service's
interval distribution is *exactly* the base polling distribution —
the push analogue of PR 6's restoration proof, pinned by
``tests/test_push_equivalence.py``.

Deterministic tie-break (continuous-time tie hazard)
----------------------------------------------------

Push drains are ordinary simulator events, so simultaneous push
deliveries and poll wakes at the same timestamp are ordered by the
kernel's ``(time, priority, seq)`` total order
(:class:`repro.simcore.event.Event`): whichever was *scheduled* first
fires first, and the monotone ``seq`` makes replays byte-identical.
This closes the tie hazard noted in PR 5's scheduler fine print for the
push path; ``tests/test_push_mode.py`` replays a crafted same-timestamp
schedule twice and compares snapshots bytewise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

from repro.engine.poller import PollingPolicy
from repro.obs.metrics import COUNT_BUCKETS
from repro.simcore.rng import Rng

#: The three delivery modes the testbeds and CLI compare
#: (``repro chaos --delivery {poll,hint,push}``).
DELIVERY_MODES = ("poll", "hint", "push")

#: Backpressure rungs, best to worst.  A service's rung decides how an
#: arriving notification is treated *and* how its applets' poll
#: intervals are drawn (see :class:`PushDeliveryPolicy`).
RUNG_PUSH = 0
RUNG_HINT = 1
RUNG_POLL = 2
PUSH_RUNG_NAMES = ("push", "hint", "poll")


@dataclass(frozen=True)
class PushPolicy:
    """Tunables for push-first delivery (engine-side ingestion).

    Attributes
    ----------
    batch_window:
        Coalescing window in seconds: the first notification after an
        idle period arms one drain event this far out; arrivals inside
        the window join the same drain.
    max_batch:
        Entries processed per drain (the paper's ``k`` batching knob
        again — same default as the poll ``limit``).  A backlog larger
        than this re-arms the drain immediately after.
    low_watermark, high_watermark:
        Per-service pending-backlog thresholds for the push→hint→poll
        degradation ladder.  Below ``low`` payloads are ingested; in
        ``[low, high)`` new arrivals degrade to hint-style fast polls;
        at ``high`` they are shed to the polling cadence.  Recovery to
        the push rung requires the backlog to drain below ``low``.
    safety_net_interval:
        Poll interval for applets whose service holds the push rung —
        a slow background sweep, not a delivery path.  Drawn with no
        RNG consumption so push mode stays byte-deterministic.
    """

    batch_window: float = 0.05
    max_batch: int = 50
    low_watermark: int = 64
    high_watermark: int = 256
    safety_net_interval: float = 600.0

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.low_watermark < 1:
            raise ValueError(
                f"low_watermark must be >= 1, got {self.low_watermark}"
            )
        if self.high_watermark <= self.low_watermark:
            raise ValueError(
                "high_watermark must exceed low_watermark, got "
                f"{self.high_watermark} <= {self.low_watermark}"
            )
        if self.safety_net_interval <= 0:
            raise ValueError(
                f"safety_net_interval must be positive, got {self.safety_net_interval}"
            )


class PushServiceState:
    """Per-(service, engine) push ingestion state.

    Shared by every :class:`PushDeliveryPolicy` wrapping an applet whose
    trigger lives on the service — one service's backlog degrades every
    applet aimed at it, mirroring ``ServiceHealth``.
    """

    __slots__ = (
        "slug",
        "pending",
        "rung",
        "drain_armed",
        "notifications",
        "events_ingested",
        "degraded_to_hint",
        "shed_to_poll",
        "drains",
        "parked",
    )

    def __init__(self, slug: str) -> None:
        self.slug = slug
        #: FIFO of ``(identity, wire_event_or_None)`` — ``None`` payload
        #: marks a hint-degraded entry that drains as a fast poll.
        self.pending: Deque[Tuple[str, Optional[Dict[str, Any]]]] = deque()
        self.rung = RUNG_PUSH
        self.drain_armed = False
        self.notifications = 0
        self.events_ingested = 0
        self.degraded_to_hint = 0
        self.shed_to_poll = 0
        self.drains = 0
        self.parked = 0


class PushDeliveryPolicy(PollingPolicy):
    """Safety-net polling for applets on a push-contract service.

    Wraps any :class:`~repro.engine.poller.PollingPolicy` (including an
    :class:`~repro.engine.delivery.AdaptiveDeliveryPolicy`) around the
    *shared* :class:`PushServiceState`:

    * push/hint rung → the constant ``safety_net_interval``, with **no
      RNG draw** (pushes deliver the events; polling is a slow sweep);
    * poll rung (backlog at ``high_watermark``, hysteretic) → the base
      policy's draw **verbatim**, so full fallback restores the exact
      base interval distribution — the restoration proof mirror.
    """

    def __init__(
        self, base: PollingPolicy, state: PushServiceState, policy: PushPolicy
    ) -> None:
        self.base = base
        self.state = state
        self.policy = policy

    def next_interval(self, rng: Rng) -> float:
        if self.state.rung == RUNG_POLL:
            return self.base.next_interval(rng)
        return self.policy.safety_net_interval

    def observe_events(self, count: int) -> None:
        self.base.observe_events(count)

    def clone(self) -> "PushDeliveryPolicy":
        # Fresh base clone per applet; the push state stays shared —
        # it belongs to the (service, engine) pair, not the applet.
        return PushDeliveryPolicy(self.base.clone(), self.state, self.policy)

    def __repr__(self) -> str:
        return (
            f"<PushDeliveryPolicy rung={PUSH_RUNG_NAMES[self.state.rung]} "
            f"base={self.base!r}>"
        )


class PushController:
    """Engine-side push ingestion: batching, backpressure, parking.

    Built by :class:`~repro.engine.engine.IftttEngine` when
    :attr:`~repro.engine.config.EngineConfig.push_policy` is set; owns
    the ``POST /ifttt/v1/webhooks/push`` endpoint's semantics.
    """

    def __init__(self, engine, policy: PushPolicy) -> None:
        self.engine = engine
        self.policy = policy
        self._states: Dict[str, PushServiceState] = {}
        self.notifications_received = 0
        self.events_ingested = 0
        self.batches_drained = 0
        self.degraded_to_hint = 0
        self.shed_to_poll = 0
        self.notifications_parked = 0

    # -- state ------------------------------------------------------------------

    def state_for(self, service_slug: str) -> PushServiceState:
        """The (lazily created) ingestion state for one service."""
        state = self._states.get(service_slug)
        if state is None:
            state = self._states[service_slug] = PushServiceState(service_slug)
            # Live from birth, like the breaker-state gauge: a contract
            # service that never degrades still reports the push rung.
            engine = self.engine
            if engine.metrics is not None:
                engine.metrics.gauge(
                    f"{engine._ns}.push.rung", service=service_slug
                ).set(RUNG_PUSH)
        return state

    def wrap(self, base: PollingPolicy, service_slug: str) -> PushDeliveryPolicy:
        """Wrap an applet's policy in safety-net polling for ``service_slug``."""
        return PushDeliveryPolicy(base, self.state_for(service_slug), self.policy)

    def rungs(self) -> Dict[str, int]:
        """Current backpressure rung per contract service (0/1/2 =
        push/hint/poll) — the values behind the ``{ns}.push.rung`` gauge."""
        return {slug: s.rung for slug, s in sorted(self._states.items())}

    # -- ingestion --------------------------------------------------------------

    def ingest(self, service_slug: str, request) -> Dict[str, Any]:
        """Handle one push notification (the webhook handler body)."""
        from repro.engine.resilience import BreakerState

        engine = self.engine
        state = self.state_for(service_slug)
        self.notifications_received += 1
        state.notifications += 1
        entries = (request.body or {}).get("data", [])
        if engine.metrics is not None:
            engine.metrics.counter(
                f"{engine._ns}.push.notifications", service=service_slug
            ).inc()
        if engine.trace is not None:
            engine.trace.record(
                engine.now,
                engine._ns,
                "engine_push_notification",
                service=service_slug,
                identities=len(entries),
            )
        breaker = engine._breakers.get(service_slug)
        if breaker is not None and breaker.state is BreakerState.OPEN:
            # Same fallback as realtime hints: ingesting payloads for a
            # service whose breaker is open would dispatch actions that
            # are guaranteed to be shed, so park the identities on the
            # shared suppression dict instead (payloads dropped — the
            # buffer is a non-consuming ring, so the resume fast polls
            # re-fetch them).  Runs on whichever engine *received* the
            # push: the home shard when one exists, or (round_robin)
            # whichever shard the contract last pointed at.
            self.notifications_parked += 1
            state.parked += 1
            engine.realtime_hints_suppressed += 1
            parked = engine._suppressed_hints.setdefault(service_slug, {})
            for entry in entries:
                parked[entry.get("trigger_identity")] = None
            if engine.metrics is not None:
                engine.metrics.counter(
                    f"{engine._ns}.realtime_hints_suppressed",
                    service=service_slug,
                ).inc()
            if engine.trace is not None:
                engine.trace.record(
                    engine.now,
                    engine._ns,
                    "engine_push_parked",
                    service=service_slug,
                    identities=len(entries),
                )
            return {"status": "received"}
        for entry in entries:
            identity = entry.get("trigger_identity")
            # The wire carries newest-first (poll-response shape);
            # enqueue in chronological order.
            for wire in reversed(entry.get("events", [])):
                self._admit(state, identity, wire)
        self._arm_drain(state)
        return {"status": "received"}

    def _admit(
        self, state: PushServiceState, identity: str, wire: Dict[str, Any]
    ) -> None:
        """Enqueue one pushed event, walking the backpressure ladder."""
        self._refresh_rung(state)
        rung = state.rung
        if rung == RUNG_POLL:
            # Shed: the identity waits for its polling cadence (which
            # the poll rung has already restored to the base policy).
            state.shed_to_poll += 1
            self.shed_to_poll += 1
            if self.engine.metrics is not None:
                self.engine.metrics.counter(
                    f"{self.engine._ns}.push.shed_to_poll", service=state.slug
                ).inc()
            return
        if rung == RUNG_HINT:
            # Degrade: keep the identity, drop the payload — the drain
            # turns it into a hint-style fast poll.
            state.degraded_to_hint += 1
            self.degraded_to_hint += 1
            if self.engine.metrics is not None:
                self.engine.metrics.counter(
                    f"{self.engine._ns}.push.degraded_to_hint",
                    service=state.slug,
                ).inc()
            state.pending.append((identity, None))
            return
        state.pending.append((identity, wire))

    def _refresh_rung(self, state: PushServiceState) -> None:
        """Recompute the ladder rung from the backlog (with hysteresis)."""
        backlog = len(state.pending)
        if backlog >= self.policy.high_watermark:
            rung = RUNG_POLL
        elif backlog < self.policy.low_watermark:
            rung = RUNG_PUSH
        else:
            # Between the watermarks: degrade at least to hint, but a
            # service already shed to poll stays there until the backlog
            # drains below low — no flapping at the high watermark.
            rung = RUNG_POLL if state.rung == RUNG_POLL else RUNG_HINT
        if rung == state.rung:
            return
        engine = self.engine
        old, state.rung = state.rung, rung
        if engine.metrics is not None:
            engine.metrics.gauge(
                f"{engine._ns}.push.rung", service=state.slug
            ).set(rung)
            engine.metrics.counter(
                f"{engine._ns}.push.rung_transitions",
                service=state.slug,
                from_rung=PUSH_RUNG_NAMES[old],
                to_rung=PUSH_RUNG_NAMES[rung],
            ).inc()
        if engine.trace is not None:
            engine.trace.record(
                engine.now,
                engine._ns,
                "engine_push_rung_transition",
                service=state.slug,
                from_rung=PUSH_RUNG_NAMES[old],
                to_rung=PUSH_RUNG_NAMES[rung],
                backlog=len(state.pending),
            )

    # -- the coalescing drain ---------------------------------------------------

    def _arm_drain(self, state: PushServiceState) -> None:
        """Arm one drain event ``batch_window`` out (idempotent while armed).

        The drain is a plain simulator event, so a drain coinciding with
        a poll wake is ordered by the kernel's ``(time, priority, seq)``
        tie-break — the documented deterministic ordering for
        simultaneous push deliveries and poll wakes.
        """
        if state.drain_armed or not state.pending:
            return
        state.drain_armed = True
        self.engine.sim.schedule(
            self.policy.batch_window,
            self._drain,
            state,
            label=f"push-drain:{state.slug}",
        )

    def _drain(self, state: PushServiceState) -> None:
        """Process up to ``max_batch`` pending entries; re-arm if backlogged."""
        state.drain_armed = False
        engine = self.engine
        batch = 0
        ingested = 0
        while state.pending and batch < self.policy.max_batch:
            identity, wire = state.pending.popleft()
            batch += 1
            if wire is None:
                self._fast_poll(state, identity)
            else:
                ingested += self._deliver(state, identity, wire)
        state.drains += 1
        self.batches_drained += 1
        state.events_ingested += ingested
        self.events_ingested += ingested
        metrics = engine.metrics
        if metrics is not None:
            metrics.histogram(
                f"{engine._ns}.push.batch_size",
                bounds=COUNT_BUCKETS,
                service=state.slug,
            ).observe(batch)
            if ingested:
                metrics.counter(
                    f"{engine._ns}.push.events_ingested", service=state.slug
                ).inc(ingested)
        if engine.trace is not None:
            engine.trace.record(
                engine.now,
                engine._ns,
                "engine_push_drain",
                service=state.slug,
                entries=batch,
                ingested=ingested,
                backlog=len(state.pending),
            )
        self._refresh_rung(state)
        if state.pending:
            self._arm_drain(state)

    def _fast_poll(self, state: PushServiceState, identity: str) -> None:
        """Drain one hint-degraded entry as a fast poll.

        When a :class:`~repro.engine.delivery.DeliveryController` is
        active the fast poll passes through its watermark admission —
        exactly the treatment an honoured realtime hint gets — so the
        PR 6 degradation ladder and shedding apply to push traffic too.
        """
        from repro.engine.delivery import HINT_DEFER, HINT_SHED

        engine = self.engine
        delivery = engine.delivery
        if delivery is None:
            engine._fast_poll_identity(identity)
            return
        verdict = delivery.admit_hint(state.slug)
        if verdict == HINT_SHED:
            return
        delay = delivery.policy.hint_defer_delay if verdict == HINT_DEFER else 0.0
        engine._fast_poll_identity(identity, delay)

    def _deliver(
        self, state: PushServiceState, identity: str, wire: Dict[str, Any]
    ) -> int:
        """Run one pushed event through dedupe → queries/filter → actions.

        Exactly the poll-response processing path minus the poll: the
        event enters ``seen_ids`` (so the safety-net poll won't re-fire
        it) and flows through ``_process_event`` into the ordinary
        action dispatch, retry, and conservation accounting.
        """
        engine = self.engine
        event_id = wire["meta"]["id"]
        delivered = 0
        for applet_id in tuple(engine._by_identity.get(identity, ())):
            runtime = engine._applets.get(applet_id)
            if runtime is None or not runtime.applet.enabled:
                continue
            if event_id in runtime.seen_ids:
                continue
            engine._remember_event(runtime, event_id)
            runtime.policy.observe_events(1)
            engine._process_event(runtime, wire)
            delivered += 1
        if delivered:
            metrics = engine.metrics
            if metrics is not None:
                if metrics is not engine._m_registry:
                    engine._hot_metrics(metrics)
                engine._m_events_observed.inc(delivered)
        return delivered

    # -- reporting --------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counter snapshot merged into ``IftttEngine.stats()``."""
        return {
            "push_notifications_received": self.notifications_received,
            "push_events_ingested": self.events_ingested,
            "push_batches_drained": self.batches_drained,
            "push_degraded_to_hint": self.degraded_to_hint,
            "push_shed_to_poll": self.shed_to_poll,
            "push_notifications_parked": self.notifications_parked,
        }
