"""Distributed (local) applet execution — §6's proposal, implemented.

*"Many applets can be executed fully locally by using users' smartphones
or tablets as a local IFTTT engine.  In this way, the scalability of the
system can be dramatically improved."*  The paper leaves the design open;
we implement one concrete answer:

* :class:`LocalEngine` — an engine running on a device inside the home
  LAN.  It subscribes to device hubs directly (the same push interfaces
  the local proxy uses) and executes matching applets immediately, with
  no WAN round trip and no polling.
* :class:`HybridScheduler` — decides per applet whether it can run
  locally (both its trigger source and action target are local-capable)
  or must go to the cloud engine, and handles fail-over when the local
  engine goes down.

The ablation bench compares T2A latency and WAN message volume between
cloud-only and hybrid placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.engine.applet import Applet
from repro.net.address import Address
from repro.net.http import HttpNode, HttpRequest
from repro.net.message import Message
from repro.simcore.trace import Trace

from repro.iot.wemo import UPNP

#: Given a raw device event, return the trigger's ingredients if it fires,
#: else None.
TriggerMatcher = Callable[[Dict[str, Any]], Optional[Dict[str, Any]]]
#: Execute the action with resolved fields.
ActionExecutor = Callable[[Dict[str, Any]], None]


@dataclass
class _LocalBinding:
    """A locally-executable applet with its device-level bindings."""

    applet: Applet
    matcher: TriggerMatcher
    executor: ActionExecutor


class LocalEngine(HttpNode):
    """An IFTTT-protocol-free executor on the home LAN.

    Device hubs push events to it exactly as they push to the local
    proxy; matching applets execute immediately via native device calls.
    T2A latency becomes a couple of LAN hops (~tens of milliseconds)
    instead of a polling residual (~minutes).
    """

    def __init__(self, address: Address, trace: Optional[Trace] = None, service_time: float = 0.002) -> None:
        super().__init__(address, service_time=service_time)
        self.trace = trace
        self._bindings: List[_LocalBinding] = []
        self._hue_hub: Optional[Address] = None
        self.executions = 0
        self.online = True
        self.add_route("POST", "/events/hue", self._handle_event)
        self.add_route("POST", "/events/smartthings", self._handle_event)

    # -- device bridging (same interfaces the proxy uses) ----------------------

    def bridge_hue_hub(self, hub: Address) -> None:
        """Subscribe to a Hue hub's push events and remember it for actions."""
        self._hue_hub = hub
        self.post(hub, "/api/subscribe", body={"callback": self.address.host})

    def bridge_wemo(self, switch: Address) -> None:
        """UPnP-subscribe to a WeMo switch."""
        self.send(switch, UPNP, {"type": "subscribe", "callback": self.address.host}, size_bytes=64)

    def hue_command(
        self, lamp_id: str, command: Optional[Dict[str, Any]] = None
    ) -> Callable[[Dict[str, Any]], None]:
        """An :data:`ActionExecutor` that PUTs lamp state to the bridged hub.

        ``command`` is the Hue state to apply (default: turn on); resolved
        action fields named after Hue state keys (``color``, ``effect``,
        ``brightness``) override it, letting templated fields through.
        """
        base = dict(command or {"on": True})

        def execute(fields: Dict[str, Any]) -> None:
            if self._hue_hub is None:
                raise RuntimeError("no hue hub bridged to the local engine")
            merged = dict(base)
            for key in ("on", "color", "effect", "brightness"):
                if key in fields:
                    merged[key] = fields[key]
            self.request(self._hue_hub, "PUT", f"/api/lights/{lamp_id}/state", body=merged)

        return execute

    # -- applet installation -----------------------------------------------------

    def install_local_applet(
        self, applet: Applet, matcher: TriggerMatcher, executor: ActionExecutor
    ) -> None:
        """Bind an applet to local trigger matching and action execution."""
        self._bindings.append(_LocalBinding(applet=applet, matcher=matcher, executor=executor))

    @property
    def local_applets(self) -> List[Applet]:
        """Applets installed on this local engine."""
        return [binding.applet for binding in self._bindings]

    # -- event handling -------------------------------------------------------------

    def _handle_event(self, request: HttpRequest):
        self._process_event(dict(request.body or {}))
        return {"ok": True}

    def on_non_http_message(self, message: Message) -> None:
        if message.protocol == UPNP and message.payload.get("event"):
            self._process_event(dict(message.payload))

    def _process_event(self, event: Dict[str, Any]) -> None:
        if not self.online:
            return
        for binding in self._bindings:
            if not binding.applet.enabled:
                continue
            ingredients = binding.matcher(event)
            if ingredients is None:
                continue
            fields = binding.applet.action.resolve_fields(ingredients)
            binding.applet.executions += 1
            self.executions += 1
            if self.trace is not None:
                self.trace.record(
                    self.now,
                    "local_engine",
                    "local_action_executed",
                    applet_id=binding.applet.applet_id,
                )
            binding.executor(fields)


class HybridScheduler:
    """Chooses cloud vs local placement per applet (§6's hybrid scheme).

    Parameters
    ----------
    local_capable:
        The set of ``(service_slug, endpoint_slug)`` pairs that have a
        local binding available (i.e. the device lives in this home and
        the local engine can observe/drive it).
    """

    CLOUD = "cloud"
    LOCAL = "local"

    def __init__(self, local_capable: Set[Tuple[str, str]]) -> None:
        self.local_capable = set(local_capable)
        self.local_engine_online = True

    def placement(self, applet: Applet) -> str:
        """``"local"`` iff both endpoints are local-capable and the engine is up."""
        if not self.local_engine_online:
            return self.CLOUD
        trigger_ok = (applet.trigger.service_slug, applet.trigger.trigger_slug) in self.local_capable
        action_ok = (applet.action.service_slug, applet.action.action_slug) in self.local_capable
        return self.LOCAL if trigger_ok and action_ok else self.CLOUD

    def plan(self, applets: List[Applet]) -> Dict[int, str]:
        """Placement decision for every applet."""
        return {applet.applet_id: self.placement(applet) for applet in applets}

    def local_fraction(self, applets: List[Applet]) -> float:
        """Fraction of applets eligible for local execution."""
        if not applets:
            return 0.0
        plan = self.plan(applets)
        return sum(1 for where in plan.values() if where == self.LOCAL) / len(applets)

    def mark_local_engine_down(self) -> None:
        """Fail-over: route everything to the cloud until recovery."""
        self.local_engine_online = False

    def mark_local_engine_up(self) -> None:
        """Local engine recovered; local placement is allowed again."""
        self.local_engine_online = True
