"""A safe filter expression language for conditional applets.

The paper closes with "We plan to study future IFTTT features such as
queries and conditions" (§6, citing [25]).  IFTTT later shipped exactly
that: *filter code* deciding whether an applet's action runs, over the
trigger's ingredients and query results.  This module implements a small,
safe expression language for those conditions — no ``eval``, no host
access, just a tokenizer, a recursive-descent parser, and an evaluator
over a value namespace.

Grammar (usual precedence, lowest first)::

    expr   := or
    or     := and ("or" and)*
    and    := unary ("and" unary)*
    unary  := "not" unary | cmp
    cmp    := term (OP term)?          OP: == != < <= > >= contains
                                           startswith endswith matches
    term   := STRING | NUMBER | true | false | null
            | NAME ("." NAME)*        dotted lookup in the namespace
            | "(" expr ")"

Example::

    >>> expr = parse("trigger.temperature > 25 and trigger.room == 'kitchen'")
    >>> expr.evaluate({"trigger": {"temperature": 30.0, "room": "kitchen"}})
    True
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union


class FilterSyntaxError(ValueError):
    """The filter source failed to tokenize or parse."""


class FilterEvalError(RuntimeError):
    """The filter parsed but could not be evaluated against the namespace."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op>==|!=|<=|>=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "null",
             "contains", "startswith", "endswith", "matches"}

_WORD_OPS = {"contains", "startswith", "endswith", "matches"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "op" | "lparen" | "rparen" | "name" | keyword
    text: str
    position: int


def tokenize(source: str) -> List[_Token]:
    """Split filter source into tokens; raises on unknown characters."""
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise FilterSyntaxError(
                f"unexpected character {source[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "name" and text in _KEYWORDS:
            kind = text if "." not in text else kind
        tokens.append(_Token(kind=kind, text=text, position=match.start()))
    return tokens


# -- AST ------------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant value."""

    value: Any

    def evaluate(self, namespace: Dict[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True)
class Lookup:
    """A dotted name resolved against the namespace."""

    path: Tuple[str, ...]

    def evaluate(self, namespace: Dict[str, Any]) -> Any:
        value: Any = namespace
        for part in self.path:
            if isinstance(value, dict) and part in value:
                value = value[part]
            else:
                raise FilterEvalError(f"unknown name {'.'.join(self.path)!r}")
        return value


@dataclass(frozen=True)
class Compare:
    """A binary comparison."""

    op: str
    left: "Expr"
    right: "Expr"

    def evaluate(self, namespace: Dict[str, Any]) -> bool:
        left = self.left.evaluate(namespace)
        right = self.right.evaluate(namespace)
        try:
            if self.op == "==":
                return left == right
            if self.op == "!=":
                return left != right
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            if self.op == ">=":
                return left >= right
            if self.op == "contains":
                return str(right) in str(left) if not isinstance(left, (list, tuple)) else right in left
            if self.op == "startswith":
                return str(left).startswith(str(right))
            if self.op == "endswith":
                return str(left).endswith(str(right))
            if self.op == "matches":
                return re.search(str(right), str(left)) is not None
        except TypeError as exc:
            raise FilterEvalError(f"cannot apply {self.op!r}: {exc}") from exc
        except re.error as exc:
            raise FilterEvalError(f"bad regex in 'matches': {exc}") from exc
        raise FilterEvalError(f"unknown operator {self.op!r}")


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    operand: "Expr"

    def evaluate(self, namespace: Dict[str, Any]) -> bool:
        return not _truthy(self.operand.evaluate(namespace))


@dataclass(frozen=True)
class BoolOp:
    """Short-circuiting and/or chain."""

    op: str  # "and" | "or"
    operands: Tuple["Expr", ...]

    def evaluate(self, namespace: Dict[str, Any]) -> bool:
        if self.op == "and":
            return all(_truthy(operand.evaluate(namespace)) for operand in self.operands)
        return any(_truthy(operand.evaluate(namespace)) for operand in self.operands)


Expr = Union[Literal, Lookup, Compare, Not, BoolOp]


def _truthy(value: Any) -> bool:
    return bool(value)


# -- parser ----------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise FilterSyntaxError(f"unexpected end of filter: {self.source!r}")
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise FilterSyntaxError(
                f"expected {kind} at offset {token.position}, got {token.text!r}"
            )
        return token

    def parse(self) -> Expr:
        expr = self.parse_or()
        leftover = self.peek()
        if leftover is not None:
            raise FilterSyntaxError(
                f"unexpected trailing {leftover.text!r} at offset {leftover.position}"
            )
        return expr

    def parse_or(self) -> Expr:
        operands = [self.parse_and()]
        while self.peek() is not None and self.peek().kind == "or":
            self.advance()
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else BoolOp("or", tuple(operands))

    def parse_and(self) -> Expr:
        operands = [self.parse_unary()]
        while self.peek() is not None and self.peek().kind == "and":
            self.advance()
            operands.append(self.parse_unary())
        return operands[0] if len(operands) == 1 else BoolOp("and", tuple(operands))

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token is not None and token.kind == "not":
            self.advance()
            return Not(self.parse_unary())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_term()
        token = self.peek()
        if token is not None and (token.kind == "op" or token.kind in _WORD_OPS):
            self.advance()
            right = self.parse_term()
            return Compare(token.text, left, right)
        return left

    def parse_term(self) -> Expr:
        token = self.advance()
        if token.kind == "number":
            value = float(token.text)
            return Literal(int(value) if value.is_integer() else value)
        if token.kind == "string":
            return Literal(token.text[1:-1])
        if token.kind == "true":
            return Literal(True)
        if token.kind == "false":
            return Literal(False)
        if token.kind == "null":
            return Literal(None)
        if token.kind == "name":
            return Lookup(tuple(token.text.split(".")))
        if token.kind == "lparen":
            inner = self.parse_or()
            self.expect("rparen")
            return inner
        raise FilterSyntaxError(
            f"unexpected {token.text!r} at offset {token.position}"
        )


def parse(source: str) -> Expr:
    """Parse filter source into an evaluable expression tree."""
    if not source or not source.strip():
        raise FilterSyntaxError("empty filter expression")
    return _Parser(tokenize(source), source).parse()


def evaluate(source: str, namespace: Dict[str, Any]) -> bool:
    """One-shot parse + evaluate, returning a boolean verdict."""
    return _truthy(parse(source).evaluate(namespace))
