"""Permission management.

§6 ("Permission Management"): *"IFTTT performs coarse-grained permission
control at the service level: for a service involved in any trigger or
action installed by the user, IFTTT will need all permissions of the
service.  For example, installing an applet with the trigger 'new email
arrives' requires permissions for reading, deleting, sending, and
managing emails ... the 'least privilege principle' is violated."*

Two models are implemented:

* :class:`ServicePermissionModel` — production IFTTT: connecting a
  service grants the user's token every scope the service defines.
* :class:`PerEndpointPermissionModel` — the recommended alternative:
  grants only the scopes required by the endpoints actually used by the
  user's installed applets.

:func:`excess_privilege` quantifies the gap between the two — the §6
ablation bench reports it across applet mixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.engine.applet import Applet


@dataclass(frozen=True, order=True)
class Scope:
    """One grantable permission: an operation on a service's resource.

    Trigger endpoints require their ``read:`` scope; action endpoints
    their ``write:`` scope.  Services may define extra scopes (Gmail's
    ``delete``/``manage``) that nothing on IFTTT needs but the coarse
    model grants anyway.
    """

    service_slug: str
    operation: str

    def __str__(self) -> str:
        return f"{self.service_slug}:{self.operation}"


def trigger_scope(service_slug: str, trigger_slug: str) -> Scope:
    """The scope a trigger endpoint requires."""
    return Scope(service_slug, f"read:{trigger_slug}")


def action_scope(service_slug: str, action_slug: str) -> Scope:
    """The scope an action endpoint requires."""
    return Scope(service_slug, f"write:{action_slug}")


class _ScopeRegistry:
    """Shared bookkeeping of each service's full scope universe."""

    def __init__(self) -> None:
        self._service_scopes: Dict[str, Set[Scope]] = {}

    def register_service(
        self,
        slug: str,
        trigger_slugs: Iterable[str],
        action_slugs: Iterable[str],
        extra_operations: Iterable[str] = (),
    ) -> None:
        """Declare a service's scope universe (idempotent re-registration)."""
        scopes: Set[Scope] = set()
        for trigger in trigger_slugs:
            scopes.add(trigger_scope(slug, trigger))
        for action in action_slugs:
            scopes.add(action_scope(slug, action))
        for operation in extra_operations:
            scopes.add(Scope(slug, operation))
        self._service_scopes[slug] = scopes

    def service_scopes(self, slug: str) -> FrozenSet[Scope]:
        """The full scope universe of one service."""
        return frozenset(self._service_scopes.get(slug, ()))


class ServicePermissionModel(_ScopeRegistry):
    """Coarse service-level grants (production IFTTT)."""

    def __init__(self) -> None:
        super().__init__()
        self._grants: Dict[str, Set[Scope]] = {}

    def grant_all_scopes(self, user: str, service_slug: str) -> FrozenSet[Scope]:
        """Connecting a service grants *every* scope it defines."""
        scopes = self.service_scopes(service_slug)
        self._grants.setdefault(user, set()).update(scopes)
        return scopes

    def granted(self, user: str) -> FrozenSet[Scope]:
        """All scopes currently granted to a user's tokens."""
        return frozenset(self._grants.get(user, ()))


class PerEndpointPermissionModel(_ScopeRegistry):
    """Fine-grained grants: only what installed applets actually need."""

    def __init__(self) -> None:
        super().__init__()
        self._grants: Dict[str, Set[Scope]] = {}

    def grant_for_applet(self, applet: Applet) -> FrozenSet[Scope]:
        """Grant exactly the trigger-read and action-write scopes."""
        needed = frozenset(
            {
                trigger_scope(applet.trigger.service_slug, applet.trigger.trigger_slug),
                action_scope(applet.action.service_slug, applet.action.action_slug),
            }
        )
        self._grants.setdefault(applet.user, set()).update(needed)
        return needed

    def granted(self, user: str) -> FrozenSet[Scope]:
        """All scopes granted to the user under the fine-grained model."""
        return frozenset(self._grants.get(user, ()))


def required_scopes(applets: Iterable[Applet]) -> FrozenSet[Scope]:
    """The minimal scope set a collection of applets needs."""
    needed: Set[Scope] = set()
    for applet in applets:
        needed.add(trigger_scope(applet.trigger.service_slug, applet.trigger.trigger_slug))
        needed.add(action_scope(applet.action.service_slug, applet.action.action_slug))
    return frozenset(needed)


def excess_privilege(
    granted: FrozenSet[Scope], required: FrozenSet[Scope]
) -> Tuple[FrozenSet[Scope], float]:
    """Scopes granted beyond need, and the excess ratio.

    Returns ``(excess_set, ratio)`` where ratio is ``|excess| / |granted|``
    (0.0 when nothing is granted).
    """
    excess = frozenset(granted - required)
    ratio = len(excess) / len(granted) if granted else 0.0
    return excess, ratio
