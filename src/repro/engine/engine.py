"""The centralized IFTTT engine.

Implements the online applet-execution phase exactly as §2.2 profiles it:

* the engine periodically polls the trigger service — an HTTPS POST to the
  trigger URL carrying the user's access token, the service key, and a
  random request id, with a ``limit`` (batch size k, default 50);
* the trigger service answers with buffered trigger events; the engine
  deduplicates them by ``meta.id`` and, for each new event, contacts the
  action URL;
* realtime-API hints (``POST /ifttt/v1/webhooks/service/notify``) merely
  *hint*; the engine "has full control over trigger event queries and very
  likely ignores real-time API's hints" — honoured only for an allowlist
  of services (Alexa-like), reproducing the A5-A7 vs A1-A4 latency gap.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.engine.applet import Applet, ActionRef, AppletState, QueryRef, TriggerRef
from repro.engine.filters import Expr, FilterEvalError, parse as parse_filter
from repro.engine.config import EngineConfig
from repro.engine.delivery import (
    DeliveryController,
    HINT_DEFER,
    HINT_SHED,
    response_is_brownout,
)
from repro.engine.loops import RuntimeLoopDetector, StaticLoopAnalyzer, LoopError
from repro.engine.oauth import OAuthAuthority, TokenCache
from repro.engine.permissions import ServicePermissionModel
from repro.engine.poller import PollingPolicy
from repro.engine.push import PushController
from repro.engine.replay import ReplayController
from repro.engine.scheduler import make_poll_scheduler
from repro.engine.resilience import (
    BreakerState,
    CircuitBreaker,
    DeadLetter,
    PendingAction,
)
from repro.simcore.event import Event
from repro.net.address import Address
from repro.net.http import HttpNode, HttpRequest, HttpResponse
from repro.obs.metrics import COUNT_BUCKETS
from repro.services.partner import (
    ACTION_PATH,
    PUSH_NOTIFY_PATH,
    QUERY_PATH,
    REALTIME_NOTIFY_PATH,
    TRIGGER_PATH,
    PartnerService,
)
from repro.simcore.rng import Rng
from repro.simcore.trace import Trace


class AppletIdRangeError(RuntimeError):
    """An engine tried to allocate an applet id outside its shard range.

    Shard id ranges are disjoint by construction
    (:data:`~repro.engine.sharding.APPLET_ID_STRIDE` or the corpus-derived
    stride); silently crossing into a neighbour's range would make
    ``ShardedEngine.engine_for()`` route lifecycle calls to the wrong
    shard, so the overflow is an error at install time.
    """


@dataclass
class ServiceRegistration:
    """A published partner service, as the engine sees it."""

    slug: str
    address: Address
    service_key: str
    realtime: bool = False
    #: The negotiated push contract: the service declared ``push=True``
    #: *and* this engine's ``EngineConfig.push_policy`` is set.
    push: bool = False


class _AppletRuntime:
    """Engine-internal per-applet execution state.

    ``__slots__``-backed: at the 1M-applet fleet sizes the benchmarks
    drive, per-instance ``__dict__``s would cost hundreds of megabytes
    and defeat CPU caches on the poll hot path (see
    ``docs/PERFORMANCE.md``).  ``poll_gen``/``poll_scheduled`` belong to
    the heap poll scheduler's lazy-cancellation protocol;
    ``pending_poll_event`` belongs to the per-applet-timer baseline —
    each dispatch mode leaves the other's fields untouched.
    ``fast_poll_pending`` belongs to delivery admission control: it
    marks a hint-induced fast poll outstanding for this applet, so the
    per-service hint backlog stays exact under supersede/cancel.
    """

    __slots__ = (
        "applet",
        "policy",
        "filter_expr",
        "seen_ids",
        "seen_order",
        "poll_in_flight",
        "pending_poll_event",
        "polls",
        "last_poll_at",
        "poll_attempts",
        "poll_gen",
        "poll_scheduled",
        "fast_poll_pending",
    )

    def __init__(
        self,
        applet: Applet,
        policy: PollingPolicy,
        filter_expr: Optional[Expr] = None,
    ) -> None:
        self.applet = applet
        self.policy = policy
        self.filter_expr = filter_expr
        self.seen_ids: Set[int] = set()
        self.seen_order: Deque[int] = deque()
        self.poll_in_flight = False
        self.pending_poll_event: Any = None
        self.polls = 0
        self.last_poll_at: Optional[float] = None
        # consecutive failed attempts in the current retry burst
        self.poll_attempts = 0
        # heap-scheduler lazy cancellation: entries carry the generation
        # they were pushed with; a bump invalidates them in place.
        self.poll_gen = 0
        self.poll_scheduled = False
        self.fast_poll_pending = False


class IftttEngine(HttpNode):
    """The trigger-action engine (a cloud HTTP node).

    Typical wiring::

        engine = IftttEngine(Address("engine.ifttt.cloud"), config, rng, trace)
        network.add_node(engine)
        key = engine.publish_service(hue_service)
        engine.connect_service("alice", hue_service, hue_authority, "password")
        applet = engine.install_applet("alice", "rain -> blue", trigger_ref, action_ref)
    """

    def __init__(
        self,
        address: Address,
        config: Optional[EngineConfig] = None,
        rng: Optional[Rng] = None,
        trace: Optional[Trace] = None,
        service_time: float = 0.01,
        metrics=None,
        metrics_namespace: str = "engine",
        applet_id_start: int = 100000,
        applet_id_limit: Optional[int] = None,
    ) -> None:
        super().__init__(address, service_time=service_time)
        self.config = config or EngineConfig()
        self.rng = rng or Rng(seed=0, name="engine")
        self.trace = trace
        # An explicit registry wins; otherwise Node.metrics falls back to
        # the network's shared registry once attached.
        self.metrics = metrics
        # Metric names and trace entities are emitted under this
        # namespace ("engine" standalone; "engine.shard<i>" when owned
        # by a ShardedEngine, giving each shard its own metrics scope).
        self.metrics_namespace = metrics_namespace
        self._ns = metrics_namespace
        self.tokens = TokenCache()
        self.permissions = ServicePermissionModel()
        self._services: Dict[str, ServiceRegistration] = {}
        self._service_objects: Dict[str, PartnerService] = {}
        self._applets: Dict[int, _AppletRuntime] = {}
        self._by_identity: Dict[str, List[int]] = {}
        # Shards carve out disjoint id ranges via applet_id_start, so a
        # fleet-wide applet id never collides across engines.
        # applet_id_limit caps how many ids this engine may allocate:
        # exceeding it would bleed into the next shard's range and make
        # ShardedEngine.engine_for() misroute lifecycle calls, so the
        # overflow fails loudly instead (AppletIdRangeError).
        self._applet_ids = itertools.count(applet_id_start)
        self._applet_id_start = applet_id_start
        self._applet_id_limit = applet_id_limit
        self._key_counter = itertools.count(1)
        self.loop_detector = RuntimeLoopDetector(
            threshold=self.config.runtime_loop_threshold,
            window=self.config.runtime_loop_window,
        )
        self.realtime_hints_received = 0
        self.realtime_hints_honoured = 0
        self.polls_sent = 0
        self.actions_dispatched = 0
        self.poll_failures = 0
        self.action_failures = 0
        self.queries_sent = 0
        self.query_failures = 0
        self.filter_skips = 0
        self.filter_errors = 0
        # Resilience state: per-service breakers, retry counters, and the
        # dead-letter sink that guarantees no action is silently lost.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.polls_shed = 0
        self.poll_retries = 0
        self.actions_shed = 0
        self.action_retries = 0
        self.actions_delivered = 0
        self.actions_in_retry = 0
        self.dead_letters: List[DeadLetter] = []
        # Outstanding action-retry timers, keyed by a monotonic sequence
        # number (insertion-ordered, so cancellation on applet removal is
        # deterministic).  Without this ledger a retry scheduled for a
        # since-removed applet would still fire and deliver on its
        # behalf.
        self._retry_timers: Dict[int, Tuple[PendingAction, Event]] = {}
        self._retry_seq = itertools.count()
        # Realtime-hint fallback: hints for a service whose breaker is
        # open are parked (ordered per service) instead of scheduling
        # fast polls that are guaranteed to be shed; they resume when the
        # half-open probe succeeds and the breaker closes.
        self.realtime_hints_suppressed = 0
        self.realtime_hints_resumed = 0
        self._suppressed_hints: Dict[str, Dict[str, None]] = {}
        # Dead-letter replay (None unless EngineConfig.replay_policy is
        # set): in_replay is the fourth state of the conservation
        # invariant — dispatched == delivered + in_retry + dead + in_replay.
        self.actions_in_replay = 0
        self.replay: Optional[ReplayController] = (
            ReplayController(self, self.config.replay_policy)
            if self.config.replay_policy is not None
            else None
        )
        # Health-aware adaptive delivery (None unless
        # EngineConfig.delivery_policy is set): per-service EWMA health
        # stretches poll intervals and retry backoffs under brownout,
        # watermarked admission bounds the hint and retry queues, and
        # the degradation ladder is exported per service.  When None the
        # engine is byte-identical to the pre-delivery behaviour.
        self.delivery: Optional[DeliveryController] = (
            DeliveryController(self, self.config.delivery_policy)
            if self.config.delivery_policy is not None
            else None
        )
        # Push-first delivery (None unless EngineConfig.push_policy is
        # set): partner services with an accepted contract POST event
        # payloads to the push webhook; the controller coalesces them
        # into batched drains and degrades push→hint→poll per service
        # under backlog pressure.  When None the webhook route isn't
        # even registered and the engine is byte-identical to the
        # pre-push behaviour.
        self.push: Optional[PushController] = (
            PushController(self, self.config.push_policy)
            if self.config.push_policy is not None
            else None
        )
        # Poll dispatch: how scheduled polls become simulator events —
        # the heap scheduler (one wake event per engine, batched pops)
        # or the seed per-applet timers.  See repro.engine.scheduler.
        self._scheduler = make_poll_scheduler(self, self.config.poll_dispatch)
        # Hot-path metric handles.  The registry get-or-create path
        # rebuilds a label dict and a sorted label tuple on every call;
        # at fleet scale that dominates the dispatch loop, so the
        # per-poll instruments are resolved once and cached.  The cache
        # is keyed to the registry's identity: Node.metrics can change
        # when the engine attaches to a network, and a swap invalidates
        # every cached handle at once.
        self._m_registry = None
        self._m_polls_sent: Dict[str, Any] = {}
        self._m_poll_rtt = None
        self._m_poll_batch = None
        self._m_events_observed = None
        self._n_polls_sent = f"{metrics_namespace}.polls_sent"
        self._n_poll_rtt = f"{metrics_namespace}.poll_rtt_seconds"
        self._n_poll_batch = f"{metrics_namespace}.poll_batch_new"
        self._n_events_observed = f"{metrics_namespace}.events_observed"
        self._n_poll_interval = f"{metrics_namespace}.poll_interval_seconds"
        self.add_route("POST", REALTIME_NOTIFY_PATH, self._handle_realtime_hint)
        if self.push is not None:
            self.add_route("POST", PUSH_NOTIFY_PATH, self._handle_push_notification)

    # -- service publication ------------------------------------------------------

    def publish_service(self, service: PartnerService) -> str:
        """Publish a partner service; issues and returns its service key.

        Mirrors the onboarding in §2.2: the service exposes its base URL
        and endpoints, and "IFTTT will generate for the service a key,
        which will be embedded in future message exchanges".
        """
        if service.slug in self._services:
            raise ValueError(f"service {service.slug!r} already published")
        # Shard engines qualify keys with their namespace so every shard
        # of a fleet issues a distinct key for the same service — keys
        # stay attributable and individually revocable.
        issuer = "" if self._ns == "engine" else f"{self._ns}-"
        key = f"key-{issuer}{service.slug}-{next(self._key_counter):04d}"
        # Contract negotiation: the service's push *capability* becomes
        # an accepted contract only when this engine runs a push policy.
        push = self.config.push_policy is not None and service.push
        registration = ServiceRegistration(
            slug=service.slug,
            address=service.address,
            service_key=key,
            realtime=service.realtime,
            push=push,
        )
        self._services[service.slug] = registration
        self._service_objects[service.slug] = service
        service.published(self.address, key, push=push)
        self.permissions.register_service(service.slug, service.trigger_slugs, service.action_slugs)
        return key

    def service_registration(self, slug: str) -> ServiceRegistration:
        """Registration record for a published service."""
        return self._services[slug]

    @property
    def published_slugs(self) -> List[str]:
        """Slugs of all published services."""
        return sorted(self._services)

    # -- user connection (OAuth2) ---------------------------------------------------

    def connect_service(
        self,
        user: str,
        service: PartnerService,
        authority: OAuthAuthority,
        password: str,
    ) -> str:
        """Run the OAuth2 flow connecting ``user`` to ``service``.

        The user authenticates at the provider's page (``authorize``), the
        engine exchanges the code for a token, caches it, and the provider
        marks it valid for API calls.  Returns the access token.
        """
        if service.slug not in self._services:
            raise KeyError(f"service {service.slug!r} is not published")
        code = authority.authorize(user, password)
        grant = authority.exchange(code)
        self.tokens.store(grant)
        service.grant_token(grant.access_token)
        self.permissions.grant_all_scopes(user, service.slug)
        return grant.access_token

    # -- applet lifecycle --------------------------------------------------------------

    def install_applet(
        self,
        user: str,
        name: str,
        trigger: TriggerRef,
        action: ActionRef,
        author: Optional[str] = None,
        extra_actions: Tuple[ActionRef, ...] = (),
        queries: Tuple[QueryRef, ...] = (),
        filter_code: Optional[str] = None,
    ) -> Applet:
        """Install and enable an applet for a user.

        ``extra_actions``, ``queries``, and ``filter_code`` are the
        multi-action / queries / conditions features (§6 future work);
        filter code is validated (parsed) at install time, as the real
        platform validates filter code at save time.

        Raises ``KeyError`` for unpublished services,
        :class:`~repro.engine.filters.FilterSyntaxError` for invalid
        filter code, and :class:`~repro.engine.loops.LoopError` if static
        loop checking is enabled and the new applet closes a channel
        cycle.
        """
        referenced = [trigger.service_slug, action.service_slug]
        referenced += [ref.service_slug for ref in extra_actions]
        referenced += [ref.service_slug for ref in queries]
        for slug in referenced:
            if slug not in self._services:
                raise KeyError(f"service {slug!r} is not published")
        filter_expr = parse_filter(filter_code) if filter_code is not None else None
        applet_id = next(self._applet_ids)
        if (
            self._applet_id_limit is not None
            and applet_id >= self._applet_id_start + self._applet_id_limit
        ):
            raise AppletIdRangeError(
                f"engine {self.address} exhausted its applet-id range "
                f"[{self._applet_id_start}, "
                f"{self._applet_id_start + self._applet_id_limit}): installing "
                f"applet #{applet_id} would collide with the next shard's "
                "range; raise the shard stride (ShardedEngine expected_applets "
                "/ applet_id_stride) or add shards"
            )
        applet = Applet(
            applet_id=applet_id,
            name=name,
            user=user,
            trigger=trigger,
            action=action,
            author=author,
            extra_actions=tuple(extra_actions),
            queries=tuple(queries),
            filter_code=filter_code,
        )
        if self.config.static_loop_check:
            analyzer = StaticLoopAnalyzer(self._service_objects)
            cycle = analyzer.cycle_introduced_by(
                [rt.applet for rt in self._applets.values() if rt.applet.user == user], applet
            )
            if cycle is not None:
                raise LoopError(f"applet would create a loop: {[a.describe() for a in cycle]}")
        policy = self.config.poll_policy.clone()
        if self.delivery is not None:
            # Health-based adaptation wraps every applet's private policy
            # clone around the *shared* per-service health tracker — one
            # applet's failed poll slows every poll aimed at the service.
            policy = self.delivery.wrap(policy, trigger.service_slug)
        if self.push is not None and self._services[trigger.service_slug].push:
            # Push contract: pushes deliver the events, so polling drops
            # to the safety-net cadence — except on the ladder's poll
            # rung, where the wrapped policy (and through it any
            # adaptive layer) draws verbatim.
            policy = self.push.wrap(policy, trigger.service_slug)
        runtime = _AppletRuntime(
            applet=applet,
            policy=policy,
            filter_expr=filter_expr,
        )
        self._applets[applet.applet_id] = runtime
        self._by_identity.setdefault(applet.trigger_identity, []).append(applet.applet_id)
        first_poll = self.config.initial_poll_delay
        if self.config.initial_poll_jitter > 0:
            first_poll += self.rng.uniform(0, self.config.initial_poll_jitter)
        self._scheduler.schedule(runtime, first_poll, initial=True)
        return applet

    def applet(self, applet_id: int) -> Applet:
        """Look up an installed applet."""
        return self._applets[applet_id].applet

    @property
    def applets(self) -> List[Applet]:
        """All installed applets."""
        return [rt.applet for rt in self._applets.values()]

    def disable_applet(self, applet_id: int) -> None:
        """Stop polling for an applet (its scheduled poll is canceled)."""
        runtime = self._applets[applet_id]
        runtime.applet.state = AppletState.DISABLED
        self._scheduler.cancel(runtime)
        self._clear_fast_poll(runtime)

    def enable_applet(self, applet_id: int) -> None:
        """Re-enable a disabled applet and resume polling."""
        runtime = self._applets[applet_id]
        if runtime.applet.enabled:
            return
        runtime.applet.state = AppletState.ENABLED
        self._schedule_next_poll(runtime, self.config.initial_poll_delay)

    def uninstall_applet(self, applet_id: int) -> Applet:
        """Remove an applet entirely: cancel polling, drop runtime state.

        The trigger service keeps its identity buffer (services don't
        learn about uninstalls synchronously in the real platform); the
        engine simply stops asking.

        Outstanding action-*retry* timers are cancelled too — a retry
        firing after removal would deliver on behalf of an uninstalled
        applet and corrupt ``actions_in_retry``.  The parked records are
        dead-lettered with reason ``applet_removed`` (not dropped), so
        the conservation invariant survives the removal.
        """
        runtime = self._applets.pop(applet_id, None)
        if runtime is None:
            raise KeyError(f"no applet {applet_id}")
        runtime.applet.state = AppletState.DISABLED
        self._scheduler.cancel(runtime)
        self._clear_fast_poll(runtime)
        for seq in [
            seq
            for seq, (record, _) in self._retry_timers.items()
            if record.applet_id == applet_id
        ]:
            record, event = self._retry_timers.pop(seq)
            event.cancel()
            self.actions_in_retry -= 1
            if self.delivery is not None:
                self.delivery.note_retry_dequeued(record.service_slug)
            self._dead_letter(record, "applet_removed")
        identity = runtime.applet.trigger_identity
        owners = self._by_identity.get(identity, [])
        if applet_id in owners:
            owners.remove(applet_id)
        if not owners:
            self._by_identity.pop(identity, None)
        return runtime.applet

    def poll_count(self, applet_id: int) -> int:
        """How many polls the engine has sent for an applet."""
        return self._applets[applet_id].polls

    def poll_dispatch_stats(self) -> Dict[str, Any]:
        """The poll scheduler's occupancy/lifecycle snapshot.

        ``mode`` names the active dispatch strategy; heap mode adds
        ``heap_entries``/``live_entries``/``stale_entries`` (the
        lazy-cancellation ledger), ``compactions``, ``wakes``, and
        ``batched_polls``.  See ``docs/PERFORMANCE.md``.
        """
        return self._scheduler.stats()

    def stats(self) -> Dict[str, int]:
        """A snapshot of the engine's counters (for CLIs and dashboards)."""
        return {
            "services": len(self._services),
            "applets": len(self._applets),
            "applets_enabled": sum(1 for rt in self._applets.values() if rt.applet.enabled),
            "polls_sent": self.polls_sent,
            "poll_failures": self.poll_failures,
            "actions_dispatched": self.actions_dispatched,
            "action_failures": self.action_failures,
            "queries_sent": self.queries_sent,
            "query_failures": self.query_failures,
            "filter_skips": self.filter_skips,
            "filter_errors": self.filter_errors,
            "realtime_hints_received": self.realtime_hints_received,
            "realtime_hints_honoured": self.realtime_hints_honoured,
            "realtime_hints_suppressed": self.realtime_hints_suppressed,
            "realtime_hints_resumed": self.realtime_hints_resumed,
            "polls_shed": self.polls_shed,
            "poll_retries": self.poll_retries,
            "actions_shed": self.actions_shed,
            "action_retries": self.action_retries,
            "actions_delivered": self.actions_delivered,
            "actions_in_retry": self.actions_in_retry,
            "actions_in_replay": self.actions_in_replay,
            "dead_letters": len(self.dead_letters),
            **(
                self.replay.stats()
                if self.replay is not None
                else {
                    "replay_drains": 0,
                    "dead_letters_replayed": 0,
                    "replay_requests_sent": 0,
                    "replay_actions_delivered": 0,
                    "replay_actions_failed": 0,
                }
            ),
            **(
                self.delivery.stats()
                if self.delivery is not None
                else {
                    "delivery_hints_deferred": 0,
                    "delivery_hints_shed": 0,
                    "delivery_retries_deferred": 0,
                    "delivery_overload_dead_letters": 0,
                    "delivery_replay_drains_deferred": 0,
                    "delivery_intervals_stretched": 0,
                }
            ),
            **(
                self.push.stats()
                if self.push is not None
                else {
                    "push_notifications_received": 0,
                    "push_events_ingested": 0,
                    "push_batches_drained": 0,
                    "push_degraded_to_hint": 0,
                    "push_shed_to_poll": 0,
                    "push_notifications_parked": 0,
                }
            ),
        }

    # -- resilience: per-service circuit breakers --------------------------------------

    def breaker_for(self, service_slug: str) -> Optional[CircuitBreaker]:
        """The (lazily created) breaker guarding one service, or ``None``.

        Breakers exist only when :attr:`EngineConfig.breaker_policy` is
        set; each one reports its transitions into the
        ``engine.breaker_transitions`` counter family and the
        ``engine.breaker_state`` gauge (closed=0, half-open=1, open=2).
        """
        policy = self.config.breaker_policy
        if policy is None:
            return None
        breaker = self._breakers.get(service_slug)
        if breaker is None:
            breaker = CircuitBreaker(
                policy,
                on_transition=lambda old, new, at, slug=service_slug: (
                    self._on_breaker_transition(slug, old, new, at)
                ),
            )
            self._breakers[service_slug] = breaker
            # The state gauge is live from birth, not first-transition:
            # a service whose breaker never trips still reports closed=0,
            # so dashboards (and the shard-prefix fold) see every guarded
            # service, not just the ones that have already failed.
            if self.metrics is not None:
                self.metrics.gauge(
                    f"{self._ns}.breaker_state", service=service_slug
                ).set(BreakerState.CLOSED.level)
        return breaker

    def breaker_levels(self) -> Dict[str, int]:
        """Current numeric breaker level per service (0/1/2 =
        closed/half-open/open) — the live values behind the
        ``{ns}.breaker_state`` gauge family."""
        return {slug: b.state.level for slug, b in sorted(self._breakers.items())}

    def breaker_states(self) -> Dict[str, str]:
        """Current breaker state per service (for dashboards and tests)."""
        return {slug: b.state.value for slug, b in sorted(self._breakers.items())}

    def _on_breaker_transition(
        self, slug: str, old: BreakerState, new: BreakerState, at: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"{self._ns}.breaker_transitions",
                service=slug, from_state=old.value, to_state=new.value,
            ).inc()
            self.metrics.gauge(f"{self._ns}.breaker_state", service=slug).set(new.level)
        if self.trace is not None:
            self.trace.record(
                at, self._ns, "engine_breaker_transition",
                service=slug, from_state=old.value, to_state=new.value,
            )
        if self.delivery is not None:
            # Mirror the breaker level into the service's health tracker
            # (OPEN/HALF_OPEN suspend stretching so the half-open probe
            # keeps the baseline cadence) and onto the degradation ladder.
            self.delivery.on_breaker_transition(slug, old, new)
        if new is BreakerState.CLOSED:
            # The service healed (half-open probe succeeded): resume any
            # suppressed realtime hints and, when replay is configured,
            # drain its dead letters back through delivery.
            self._resume_suppressed_hints(slug)
            if self.replay is not None:
                self.replay.on_service_healed(slug)

    # -- dead-letter replay -------------------------------------------------------------

    def replay_dead_letters(self, service_slug: Optional[str] = None) -> None:
        """Explicitly replay dead letters (all services, or just one).

        Requires :attr:`EngineConfig.replay_policy`; services are drained
        in first-dead-letter order so replay bursts are deterministic.
        """
        if self.replay is None:
            raise RuntimeError(
                "dead-letter replay is disabled; set EngineConfig.replay_policy"
            )
        if service_slug is not None:
            slugs = [service_slug]
        else:
            ordered: Dict[str, None] = {}
            for letter in self.dead_letters:
                ordered.setdefault(letter.service_slug, None)
            slugs = list(ordered)
        for slug in slugs:
            self.replay.replay_service(slug)

    # -- the poll loop ----------------------------------------------------------------

    def _hot_metrics(self, metrics) -> None:
        """(Re)bind the cached per-poll instrument handles to ``metrics``."""
        self._m_registry = metrics
        self._m_polls_sent = {}
        self._m_poll_rtt = metrics.histogram(self._n_poll_rtt)
        self._m_poll_batch = metrics.histogram(self._n_poll_batch, bounds=COUNT_BUCKETS)
        self._m_events_observed = metrics.counter(self._n_events_observed)

    def _schedule_next_poll(self, runtime: _AppletRuntime, delay: float) -> None:
        if not runtime.applet.enabled:
            return
        self._scheduler.schedule(runtime, delay)

    def _poll(self, runtime: _AppletRuntime) -> None:
        runtime.pending_poll_event = None
        applet = runtime.applet
        if runtime.fast_poll_pending:
            # The hint-induced fast poll is firing (or no-oping): its
            # backlog slot frees either way.
            runtime.fast_poll_pending = False
            if self.delivery is not None:
                self.delivery.note_fast_poll_done(applet.trigger.service_slug)
        if not applet.enabled or runtime.poll_in_flight:
            return
        breaker = self.breaker_for(applet.trigger.service_slug)
        if breaker is not None and not breaker.allow(self.now):
            # Open breaker: shed the poll instead of hammering a failing
            # service.  The attempt still counts toward the applet's poll
            # tally (the engine *tried*), but no request leaves the node;
            # the regular cadence resumes and allow() will half-open the
            # breaker once the recovery timeout passes.
            runtime.polls += 1
            self.polls_shed += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"{self._ns}.polls_shed", service=applet.trigger.service_slug
                ).inc()
            if self.trace is not None:
                self.trace.record(
                    self.now,
                    self._ns,
                    "engine_poll_shed",
                    applet_id=applet.applet_id,
                    service=applet.trigger.service_slug,
                )
            self._schedule_next_poll(
                runtime,
                runtime.policy.sample_interval(
                    self.rng, None, service=applet.trigger.service_slug
                ),
            )
            return
        registration = self._services[applet.trigger.service_slug]
        token = self.tokens.lookup(applet.user, applet.trigger.service_slug)
        runtime.poll_in_flight = True
        runtime.polls += 1
        runtime.last_poll_at = self.now
        self.polls_sent += 1
        metrics = self.metrics
        if metrics is not None:
            if metrics is not self._m_registry:
                self._hot_metrics(metrics)
            slug = applet.trigger.service_slug
            counter = self._m_polls_sent.get(slug)
            if counter is None:
                counter = self._m_polls_sent[slug] = metrics.counter(
                    self._n_polls_sent, service=slug
                )
            counter.inc()
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_poll_sent",
                applet_id=applet.applet_id,
                identity=applet.trigger_identity,
                trigger=applet.trigger.trigger_slug,
            )
        self.post(
            registration.address,
            TRIGGER_PATH + applet.trigger.trigger_slug,
            body={
                "trigger_identity": applet.trigger_identity,
                "triggerFields": dict(applet.trigger.fields),
                "limit": self.config.batch_limit,
                "request_id": f"req-{self.rng.randint(10**8, 10**9 - 1)}",
            },
            headers=self._auth_headers(registration, applet.user),
            on_response=lambda response, rt=runtime: self._on_poll_response(rt, response),
            timeout=self.config.poll_timeout,
        )

    def _auth_headers(self, registration: ServiceRegistration, user: str) -> Dict[str, Any]:
        headers: Dict[str, Any] = {"IFTTT-Service-Key": registration.service_key}
        token = self.tokens.lookup(user, registration.slug)
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        return headers

    def _on_poll_response(self, runtime: _AppletRuntime, response: HttpResponse) -> None:
        runtime.poll_in_flight = False
        applet = runtime.applet
        metrics = self.metrics
        breaker = self.breaker_for(applet.trigger.service_slug)
        new_events: List[Dict[str, Any]] = []
        if response.ok:
            if breaker is not None:
                breaker.record_success(self.now)
            if self.delivery is not None:
                self.delivery.note_result(applet.trigger.service_slug, ok=True)
            runtime.poll_attempts = 0
            wire_events = (response.body or {}).get("data", [])
            # The wire carries newest-first; process in chronological order.
            for wire in reversed(wire_events):
                event_id = wire["meta"]["id"]
                if event_id in runtime.seen_ids:
                    continue
                self._remember_event(runtime, event_id)
                new_events.append(wire)
        else:
            self.poll_failures += 1
            if breaker is not None:
                breaker.record_failure(self.now)
            if self.delivery is not None:
                self.delivery.note_result(
                    applet.trigger.service_slug,
                    ok=False,
                    brownout=response_is_brownout(response),
                )
            if metrics is not None:
                metrics.counter(
                    f"{self._ns}.poll_failures", status=response.status
                ).inc()
        if metrics is not None:
            if metrics is not self._m_registry:
                self._hot_metrics(metrics)
            self._m_poll_rtt.observe(response.elapsed)
            self._m_poll_batch.observe(len(new_events))
            if new_events:
                self._m_events_observed.inc(len(new_events))
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_poll_response",
                applet_id=applet.applet_id,
                status=response.status,
                returned=len((response.body or {}).get("data", [])) if response.ok else 0,
                new=len(new_events),
            )
        runtime.policy.observe_events(len(new_events))
        for wire in new_events:
            self._process_event(runtime, wire)
        if not response.ok:
            runtime.poll_attempts += 1
            retry = self.config.retry_policy
            if (
                retry is not None
                and not retry.exhausted(runtime.poll_attempts)
                and (breaker is None or breaker.state is not BreakerState.OPEN)
            ):
                # Retry the failed poll on capped exponential backoff —
                # unless the breaker just opened, in which case the shed
                # path owns pacing until the service recovers.
                self.poll_retries += 1
                if metrics is not None:
                    metrics.counter(
                        f"{self._ns}.poll_retries", service=applet.trigger.service_slug
                    ).inc()
                delay = retry.backoff(runtime.poll_attempts, self.rng)
                if self.delivery is not None:
                    # Stretch the retry burst by the same health factor
                    # regular polls get — this is what turns a brownout's
                    # retry storm into a back-off.
                    delay *= self.delivery.health_for(
                        applet.trigger.service_slug
                    ).stretch_factor(self.rng)
                self._schedule_next_poll(runtime, delay)
                return
            runtime.poll_attempts = 0  # burst over; fall back to the regular cadence
        self._schedule_next_poll(
            runtime,
            runtime.policy.sample_interval(
                self.rng,
                metrics,
                metric_name=self._n_poll_interval,
                service=applet.trigger.service_slug,
            ),
        )

    def _remember_event(self, runtime: _AppletRuntime, event_id: int) -> None:
        runtime.seen_ids.add(event_id)
        runtime.seen_order.append(event_id)
        while len(runtime.seen_order) > self.config.dedupe_window:
            oldest = runtime.seen_order.popleft()
            runtime.seen_ids.discard(oldest)

    # -- event processing: queries -> condition -> actions ----------------------------------

    def _process_event(self, runtime: _AppletRuntime, wire_event: Dict[str, Any]) -> None:
        """Run one trigger event through queries, the filter, and actions."""
        applet = runtime.applet
        if applet.queries:
            self._run_queries(runtime, wire_event, list(applet.queries), {})
        else:
            self._finish_event(runtime, wire_event, {})

    def _run_queries(
        self,
        runtime: _AppletRuntime,
        wire_event: Dict[str, Any],
        remaining: List[QueryRef],
        results: Dict[str, Any],
    ) -> None:
        if not remaining:
            self._finish_event(runtime, wire_event, results)
            return
        query = remaining[0]
        registration = self._services[query.service_slug]
        self.queries_sent += 1

        def on_response(response, q=query):
            if response.ok:
                results[q.query_slug] = (response.body or {}).get("data", [])
            else:
                self.query_failures += 1
                results[q.query_slug] = []
            self._run_queries(runtime, wire_event, remaining[1:], results)

        self.post(
            registration.address,
            QUERY_PATH + query.query_slug,
            body={"queryFields": dict(query.fields), "user": runtime.applet.user},
            headers=self._auth_headers(registration, runtime.applet.user),
            on_response=on_response,
            timeout=self.config.poll_timeout,
        )

    def _finish_event(
        self,
        runtime: _AppletRuntime,
        wire_event: Dict[str, Any],
        query_results: Dict[str, Any],
    ) -> None:
        applet = runtime.applet
        ingredients = wire_event.get("ingredients", {})
        if runtime.filter_expr is not None:
            # Single-row query results flatten to the row dict so filter
            # code can say ``queries.thermostat.temperature < 25``.
            flattened = {
                slug: (rows[0] if isinstance(rows, list) and len(rows) == 1 else rows)
                for slug, rows in query_results.items()
            }
            namespace = {
                "trigger": dict(ingredients),
                "queries": flattened,
                "meta": {"time": self.now, "applet_id": applet.applet_id},
            }
            try:
                verdict = bool(runtime.filter_expr.evaluate(namespace))
            except FilterEvalError:
                self.filter_errors += 1
                if self.metrics is not None:
                    self.metrics.counter(f"{self._ns}.runs_failed", reason="filter_error").inc()
                if self.trace is not None:
                    self.trace.record(
                        self.now, self._ns, "engine_filter_error",
                        applet_id=applet.applet_id,
                    )
                return
            if not verdict:
                self.filter_skips += 1
                if self.metrics is not None:
                    self.metrics.counter(f"{self._ns}.runs_skipped", reason="filter").inc()
                if self.trace is not None:
                    self.trace.record(
                        self.now, self._ns, "engine_filter_skipped",
                        applet_id=applet.applet_id,
                        event_id=wire_event["meta"]["id"],
                    )
                return
        for action in (applet.action, *applet.extra_actions):
            self._dispatch_action(runtime, action, wire_event)

    # -- action dispatch ------------------------------------------------------------------

    def _dispatch_action(
        self, runtime: _AppletRuntime, action: ActionRef, wire_event: Dict[str, Any]
    ) -> None:
        applet = runtime.applet
        registration = self._services[action.service_slug]
        ingredients = wire_event.get("ingredients", {})
        fields = action.resolve_fields(ingredients)
        applet.executions += 1
        self.actions_dispatched += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(
                f"{self._ns}.actions_dispatched", service=action.service_slug
            ).inc()
            # Trigger-to-action latency as the engine sees it: action
            # dispatch time minus the event's ``meta.timestamp`` (when
            # the trigger condition was met at the service) — the §4
            # headline metric, dominated by the poll wait.
            triggered_at = wire_event.get("meta", {}).get("timestamp")
            if triggered_at is not None:
                metrics.histogram(
                    f"{self._ns}.t2a_seconds", service=action.service_slug
                ).observe(max(0.0, self.now - triggered_at))
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_action_sent",
                applet_id=applet.applet_id,
                event_id=wire_event["meta"]["id"],
                action=action.action_slug,
                service=action.service_slug,
            )
        if self.config.runtime_loop_detection:
            if self.loop_detector.observe(applet.applet_id, self.now):
                self.disable_applet(applet.applet_id)
                if metrics is not None:
                    metrics.counter(f"{self._ns}.loops_killed").inc()
                if self.trace is not None:
                    self.trace.record(
                        self.now,
                        self._ns,
                        "engine_loop_killswitch",
                        applet_id=applet.applet_id,
                    )
                return
        record = PendingAction(
            applet_id=applet.applet_id,
            service_slug=action.service_slug,
            action_slug=action.action_slug,
            fields=fields,
            user=applet.user,
            event_id=wire_event["meta"]["id"],
            created_at=self.now,
        )
        self._send_action(record)

    def _send_action(self, record: PendingAction) -> None:
        """One delivery attempt for a committed action.

        Every call consumes an attempt, including breaker-shed ones — so
        an action aimed at a service that never recovers drains its retry
        budget and dead-letters instead of looping forever.
        """
        record.attempts += 1
        breaker = self.breaker_for(record.service_slug)
        if breaker is not None and not breaker.allow(self.now):
            self.actions_shed += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"{self._ns}.actions_shed", service=record.service_slug
                ).inc()
            if self.trace is not None:
                self.trace.record(
                    self.now,
                    self._ns,
                    "engine_action_shed",
                    applet_id=record.applet_id,
                    service=record.service_slug,
                    attempt=record.attempts,
                )
            self._note_action_failure(record)
            return
        registration = self._services[record.service_slug]
        self.post(
            registration.address,
            ACTION_PATH + record.action_slug,
            body={"actionFields": record.fields, "user": record.user},
            headers=self._auth_headers(registration, record.user),
            on_response=lambda response, r=record: self._on_action_result(r, response),
            timeout=self.config.action_timeout,
        )

    def _on_action_result(self, record: PendingAction, response: HttpResponse) -> None:
        record.last_status = response.status
        breaker = self.breaker_for(record.service_slug)
        metrics = self.metrics
        if metrics is not None:
            metrics.histogram(f"{self._ns}.action_rtt_seconds").observe(response.elapsed)
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_action_ack",
                applet_id=record.applet_id,
                status=response.status,
                attempt=record.attempts,
            )
        if response.ok:
            if breaker is not None:
                breaker.record_success(self.now)
            if self.delivery is not None:
                self.delivery.note_result(record.service_slug, ok=True)
            self.actions_delivered += 1
            if metrics is not None:
                metrics.counter(
                    f"{self._ns}.actions_delivered", service=record.service_slug
                ).inc()
            return
        self.action_failures += 1
        if breaker is not None:
            breaker.record_failure(self.now)
        if self.delivery is not None:
            self.delivery.note_result(
                record.service_slug,
                ok=False,
                brownout=response_is_brownout(response),
            )
        if metrics is not None:
            metrics.counter(f"{self._ns}.action_failures", status=response.status).inc()
        self._note_action_failure(record)

    def _note_action_failure(self, record: PendingAction) -> None:
        """Retry a failed delivery, or seal it into the dead-letter sink."""
        retry = self.config.retry_policy
        if retry is not None and not retry.exhausted(record.attempts):
            if self.delivery is not None and not self.delivery.admit_retry(
                record.service_slug
            ):
                # Retry queue at its high watermark: shedding, not
                # queueing.  The action is accounted, never silent.
                self._dead_letter(record, "overload")
                return
            self.action_retries += 1
            self.actions_in_retry += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"{self._ns}.action_retries", service=record.service_slug
                ).inc()
            delay = retry.backoff(record.attempts, self.rng)
            if self.delivery is not None:
                delay = self.delivery.stretch_retry_delay(
                    record.service_slug, delay, self.rng
                )
                self.delivery.note_retry_enqueued(record.service_slug)
            if self.trace is not None:
                self.trace.record(
                    self.now,
                    self._ns,
                    "engine_action_retry",
                    applet_id=record.applet_id,
                    service=record.service_slug,
                    attempt=record.attempts,
                    delay=round(delay, 6),
                )
            seq = next(self._retry_seq)
            event = self.sim.schedule(
                delay, self._retry_action, seq, label=f"action-retry#{record.applet_id}"
            )
            self._retry_timers[seq] = (record, event)
            return
        reason = "max_attempts_exhausted" if retry is not None else "retries_disabled"
        self._dead_letter(record, reason)

    def _retry_action(self, seq: int) -> None:
        record, _ = self._retry_timers.pop(seq)
        self.actions_in_retry -= 1
        if self.delivery is not None:
            self.delivery.note_retry_dequeued(record.service_slug)
        self._send_action(record)

    def _dead_letter(self, record: PendingAction, reason: str) -> None:
        letter = DeadLetter.from_pending(record, dead_at=self.now, reason=reason)
        self.dead_letters.append(letter)
        if self.metrics is not None:
            self.metrics.counter(
                f"{self._ns}.dead_letters", service=record.service_slug
            ).inc()
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_action_dead_letter",
                applet_id=record.applet_id,
                service=record.service_slug,
                attempts=record.attempts,
                last_status=record.last_status,
                reason=reason,
            )

    # -- realtime API -------------------------------------------------------------------------

    def _handle_realtime_hint(self, request: HttpRequest):
        self.realtime_hints_received += 1
        service_slug = request.header("service_slug", "")
        honoured = self.config.honours_realtime_for(service_slug)
        if self.metrics is not None:
            self.metrics.counter(
                f"{self._ns}.realtime_hints", service=service_slug, honoured=honoured
            ).inc()
        identities = [
            entry.get("trigger_identity") for entry in (request.body or {}).get("data", [])
        ]
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_realtime_hint",
                service=service_slug,
                honoured=honoured,
                identities=len(identities),
            )
        if honoured:
            breaker = self._breakers.get(service_slug)
            if breaker is not None and breaker.state is BreakerState.OPEN:
                # Fallback: a fast poll against an open breaker is
                # guaranteed to be shed, so park the hint instead.  The
                # check runs on whichever engine *received* the hint —
                # the service's home shard when one exists, or (under
                # round_robin, where no shard owns a service) whichever
                # shard the hint landed on — so the suppression state
                # always lives on the breaker that would do the shedding.
                self.realtime_hints_suppressed += 1
                parked = self._suppressed_hints.setdefault(service_slug, {})
                for identity in identities:
                    parked[identity] = None
                if self.metrics is not None:
                    self.metrics.counter(
                        f"{self._ns}.realtime_hints_suppressed", service=service_slug
                    ).inc()
                if self.trace is not None:
                    self.trace.record(
                        self.now,
                        self._ns,
                        "engine_realtime_hint_suppressed",
                        service=service_slug,
                        identities=len(identities),
                    )
                return {"status": "received"}
            self.realtime_hints_honoured += 1
            if self.delivery is None:
                for identity in identities:
                    self._fast_poll_identity(identity)
            else:
                # Admission control, per identity (each identity is one
                # outstanding fast poll): allow → immediate, defer →
                # hint_defer_delay out, shed → the identity waits for
                # its regular polling cadence.
                for identity in identities:
                    verdict = self.delivery.admit_hint(service_slug)
                    if verdict == HINT_SHED:
                        continue
                    delay = (
                        self.delivery.policy.hint_defer_delay
                        if verdict == HINT_DEFER
                        else 0.0
                    )
                    self._fast_poll_identity(identity, delay)
        return {"status": "received"}

    def _handle_push_notification(self, request: HttpRequest):
        """``POST /ifttt/v1/webhooks/push`` — push-contract ingestion.

        Registered only when :attr:`EngineConfig.push_policy` is set;
        the :class:`~repro.engine.push.PushController` owns batching,
        backpressure, and the breaker-open parking fallback.
        """
        return self.push.ingest(request.header("service_slug", ""), request)

    def _fast_poll_identity(self, identity: str, delay: float = 0.0) -> None:
        for applet_id in self._by_identity.get(identity, ()):
            runtime = self._applets[applet_id]
            if runtime.applet.enabled and not runtime.poll_in_flight:
                if self.delivery is not None:
                    if runtime.fast_poll_pending:
                        # Already has a fast poll in flight-to-fire; a
                        # second hint adds nothing but backlog drift.
                        continue
                    runtime.fast_poll_pending = True
                    self.delivery.note_fast_poll_scheduled(
                        runtime.applet.trigger.service_slug
                    )
                self._schedule_next_poll(runtime, delay)

    def _clear_fast_poll(self, runtime: _AppletRuntime) -> None:
        """Release a cancelled applet's outstanding fast-poll slot."""
        if runtime.fast_poll_pending:
            runtime.fast_poll_pending = False
            if self.delivery is not None:
                self.delivery.note_fast_poll_done(
                    runtime.applet.trigger.service_slug
                )

    def _resume_suppressed_hints(self, service_slug: str) -> None:
        """Half-open probe succeeded: fire the fast polls parked while the
        service's breaker was open (each distinct identity once)."""
        parked = self._suppressed_hints.pop(service_slug, None)
        if not parked:
            return
        self.realtime_hints_resumed += 1
        if self.metrics is not None:
            self.metrics.counter(
                f"{self._ns}.realtime_hints_resumed", service=service_slug
            ).inc()
        if self.trace is not None:
            self.trace.record(
                self.now,
                self._ns,
                "engine_realtime_hint_resumed",
                service=service_slug,
                identities=len(parked),
            )
        for identity in parked:
            self._fast_poll_identity(identity)

    def __repr__(self) -> str:
        return f"<IftttEngine services={len(self._services)} applets={len(self._applets)}>"
