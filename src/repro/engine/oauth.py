"""OAuth2 authorization-code flow between users, services, and the engine.

§2.2: "Many triggers/actions need to authenticate the user.  This is done
using the OAuth2 framework.  The user will be directed to the
authentication page that is usually hosted by service providers and asked
for her credentials.  An access token will be generated and cached at
IFTTT to make future applet execution fully automated."

The :class:`OAuthAuthority` plays the service-provider side (credential
check, authorization codes, token issuance); the engine calls it during
service connection and caches the resulting token per (user, service).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

_code_counter = itertools.count(1)


class OAuthError(RuntimeError):
    """Authorization failure (bad credentials, bad/reused code)."""


@dataclass(frozen=True)
class OAuthGrant:
    """A completed authorization: an access token bound to (user, service)."""

    user: str
    service_slug: str
    access_token: str


class OAuthAuthority:
    """The service provider's authorization server.

    One authority exists per service; user credentials are provisioned
    with :meth:`register_user`.  The flow is the standard three steps:
    ``authorize`` (credentials -> single-use code), ``exchange`` (code ->
    access token), and per-request bearer validation by the service
    (tokens are pushed into the service's valid set by the engine's
    connection flow).
    """

    def __init__(self, service_slug: str) -> None:
        self.service_slug = service_slug
        self._credentials: Dict[str, str] = {}
        self._pending_codes: Dict[str, str] = {}
        self._tokens: Set[str] = set()
        self.authorizations = 0

    def register_user(self, user: str, password: str) -> None:
        """Provision a user account at the service provider."""
        self._credentials[user] = password

    def authorize(self, user: str, password: str) -> str:
        """Step 1: the user signs in on the provider's page; returns a code."""
        if self._credentials.get(user) != password:
            raise OAuthError(f"bad credentials for {user!r} at {self.service_slug}")
        code = f"code-{self.service_slug}-{next(_code_counter)}"
        self._pending_codes[code] = user
        return code

    def exchange(self, code: str) -> OAuthGrant:
        """Step 2: the engine exchanges the single-use code for a token."""
        user = self._pending_codes.pop(code, None)
        if user is None:
            raise OAuthError(f"invalid or already-used authorization code {code!r}")
        token = self._mint_token(user)
        self._tokens.add(token)
        self.authorizations += 1
        return OAuthGrant(user=user, service_slug=self.service_slug, access_token=token)

    def validate(self, token: str) -> bool:
        """Whether a bearer token is currently valid."""
        return token in self._tokens

    def revoke(self, token: str) -> None:
        """Invalidate a token (user disconnects the service)."""
        self._tokens.discard(token)

    def _mint_token(self, user: str) -> str:
        blob = f"{self.service_slug}|{user}|{next(_code_counter)}"
        return "tok-" + hashlib.sha1(blob.encode()).hexdigest()[:20]


class TokenCache:
    """The engine-side cache of access tokens, keyed by (user, service)."""

    def __init__(self) -> None:
        self._tokens: Dict[Tuple[str, str], str] = {}

    def store(self, grant: OAuthGrant) -> None:
        """Cache a grant's token."""
        self._tokens[(grant.user, grant.service_slug)] = grant.access_token

    def lookup(self, user: str, service_slug: str) -> Optional[str]:
        """The cached token for (user, service), or None."""
        return self._tokens.get((user, service_slug))

    def forget(self, user: str, service_slug: str) -> None:
        """Drop a cached token."""
        self._tokens.pop((user, service_slug), None)

    def __len__(self) -> int:
        return len(self._tokens)
