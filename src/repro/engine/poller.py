"""Polling-interval policies.

§4's central finding is that T2A latency "is caused by IFTTT's long
polling interval": large (quartiles 58/84/122 s for applets A1-A4), highly
variable, with an extreme tail (15 minutes), and occasionally inflated by
platform load (Figure 6's 14-minute gap between action clusters).

:class:`ProductionPollingPolicy` reproduces that behaviour: lognormal
intervals around a ~90 s median plus a small probability of a multi-x
"engine busy" inflation.  :class:`FixedPollingPolicy` is experiment E3's
replacement engine (poll every second).  :class:`AdaptivePollingPolicy`
implements the §6 recommendation of predicting trigger activity to poll
smartly.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from repro.simcore.rng import Rng


class PollingPolicy(ABC):
    """Decides how long the engine waits before the next poll of a trigger."""

    # Bound-histogram cache for :meth:`sample_interval`.  Class-level
    # defaults keep subclass ``__init__``s (which do not call super())
    # working; the first recorded sample promotes them to instance
    # attributes.  ``_bound_sig`` is ``(registry, metric_name, labels)``
    # — all three participate in the hit check, so a policy clone reused
    # under a different registry or shard namespace
    # (``engine.shard<i>.poll_interval_seconds``) transparently rebinds
    # instead of writing into the wrong histogram
    # (``tests/test_scheduler_equivalence.py`` pins this).
    _bound_sig = None
    _bound_hist = None

    @abstractmethod
    def next_interval(self, rng: Rng) -> float:
        """Seconds until the next poll."""

    def sample_interval(
        self,
        rng: Rng,
        metrics=None,
        metric_name: str = "engine.poll_interval_seconds",
        **labels,
    ) -> float:
        """Draw the next interval, recording it when a registry is given.

        The engine calls this instead of :meth:`next_interval` so the
        distribution §4 blames for T2A latency (the polling interval) is
        captured as a first-class histogram
        (``engine.poll_interval_seconds``, or the engine's shard-scoped
        name) rather than re-derived from trace scans.

        This runs once per poll of every applet in the fleet, so the
        histogram handle is cached on the policy after the first call:
        the registry's get-or-create path (label dict copy + sorted
        label tuple) is paid once per (policy, registry, metric, labels)
        rather than once per poll.
        """
        interval = self.next_interval(rng)
        if metrics is not None:
            sig = self._bound_sig
            if (
                sig is None
                or sig[0] is not metrics
                or sig[1] != metric_name
                or sig[2] != labels
            ):
                self._bound_hist = metrics.histogram(
                    metric_name, policy=type(self).__name__, **labels
                )
                self._bound_sig = (metrics, metric_name, labels)
            self._bound_hist.observe(interval)
        return interval

    def observe_events(self, count: int) -> None:
        """Feedback hook: how many new events the last poll returned."""

    def clone(self) -> "PollingPolicy":
        """A fresh copy — each applet (and each engine shard) gets its own.

        The base implementation shallow-copies the instance.  Returning
        ``self`` here would silently share mutable policy state (EWMA
        activity, counters) across every applet of every engine that
        cloned from the same prototype — exactly the cross-shard leak
        ``tests/test_sharding.py`` guards against.  Stateless subclasses
        pay one cheap ``copy.copy``; stateful ones should still override
        to reset learned state.
        """
        return copy.copy(self)


class ProductionPollingPolicy(PollingPolicy):
    """The measured IFTTT behaviour: long, variable, occasionally inflated.

    Parameters were calibrated so that simulated T2A latency for
    poll-bound applets matches the paper's quartiles (58/84/122 s) and
    tail (~15 min); see ``tests/test_calibration.py``.
    """

    def __init__(
        self,
        median: float = 145.0,
        sigma: float = 0.30,
        inflation_prob: float = 0.015,
        inflation_min: float = 3.0,
        inflation_max: float = 6.0,
        minimum: float = 50.0,
    ) -> None:
        if median <= 0 or minimum < 0:
            raise ValueError("median must be positive and minimum non-negative")
        if not 0 <= inflation_prob <= 1:
            raise ValueError(f"inflation_prob must be in [0, 1], got {inflation_prob}")
        self.median = median
        self.sigma = sigma
        self.inflation_prob = inflation_prob
        self.inflation_min = inflation_min
        self.inflation_max = inflation_max
        self.minimum = minimum

    def next_interval(self, rng: Rng) -> float:
        interval = rng.lognormal_median(self.median, self.sigma)
        if rng.bernoulli(self.inflation_prob):
            interval *= rng.uniform(self.inflation_min, self.inflation_max)
        return max(self.minimum, interval)

    def clone(self) -> "ProductionPollingPolicy":
        return ProductionPollingPolicy(
            median=self.median,
            sigma=self.sigma,
            inflation_prob=self.inflation_prob,
            inflation_min=self.inflation_min,
            inflation_max=self.inflation_max,
            minimum=self.minimum,
        )

    def __repr__(self) -> str:
        return f"ProductionPollingPolicy(median={self.median}, sigma={self.sigma})"


class FixedPollingPolicy(PollingPolicy):
    """Poll at a fixed interval — E3's 1 s frequent-polling engine."""

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval

    def next_interval(self, rng: Rng) -> float:
        return self.interval

    def clone(self) -> "FixedPollingPolicy":
        return FixedPollingPolicy(self.interval)

    def __repr__(self) -> str:
        return f"FixedPollingPolicy({self.interval})"


class AdaptivePollingPolicy(PollingPolicy):
    """§6's "poll smartly" proposal: back off when idle, speed up when busy.

    Maintains an exponentially-weighted activity estimate from the
    observed per-poll event counts; the interval interpolates between
    ``fast`` (active trigger) and ``slow`` (idle trigger).  The ablation
    bench shows this recovers most of E3's latency win at a fraction of
    its poll volume.
    """

    def __init__(
        self,
        fast: float = 5.0,
        slow: float = 300.0,
        ewma_alpha: float = 0.3,
        jitter: float = 0.1,
    ) -> None:
        if not 0 < fast <= slow:
            raise ValueError(f"need 0 < fast <= slow, got {fast}, {slow}")
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.fast = fast
        self.slow = slow
        self.ewma_alpha = ewma_alpha
        self.jitter = jitter
        self._activity = 0.0

    @property
    def activity(self) -> float:
        """Current EWMA of events-per-poll (clamped to [0, 1] for mixing)."""
        return self._activity

    def observe_events(self, count: int) -> None:
        signal = 1.0 if count > 0 else 0.0
        self._activity = self.ewma_alpha * signal + (1 - self.ewma_alpha) * self._activity

    def next_interval(self, rng: Rng) -> float:
        weight = min(1.0, self._activity)
        base = weight * self.fast + (1 - weight) * self.slow
        return max(self.fast * 0.5, base * (1 + rng.uniform(-self.jitter, self.jitter)))

    def clone(self) -> "AdaptivePollingPolicy":
        return AdaptivePollingPolicy(
            fast=self.fast, slow=self.slow, ewma_alpha=self.ewma_alpha, jitter=self.jitter
        )

    def __repr__(self) -> str:
        return f"AdaptivePollingPolicy(fast={self.fast}, slow={self.slow})"
