"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.engine.delivery import DeliveryPolicy
from repro.engine.poller import PollingPolicy, ProductionPollingPolicy
from repro.engine.push import PushPolicy
from repro.engine.resilience import BreakerPolicy, ReplayPolicy, RetryPolicy
from repro.engine.scheduler import POLL_DISPATCH_MODES

#: Services whose realtime hints production IFTTT is observed to honour.
#: §4: "it is likely that IFTTT ... processes the real-time API hints for
#: some services (such as Alexa) with timing requirements ... When we use
#: our own service to host Alexa, its latency becomes large."
DEFAULT_REALTIME_ALLOWLIST: FrozenSet[str] = frozenset({"amazon_alexa", "google_assistant"})

#: Applet-to-shard assignment strategies understood by
#: :class:`~repro.engine.sharding.ShardedEngine` (see ``docs/SHARDING.md``).
SHARD_STRATEGIES: tuple = ("service_hash", "round_robin", "popularity_balanced")


@dataclass
class EngineConfig:
    """Tunable engine behaviour.

    The defaults model production IFTTT as the paper measured it; the E3
    and §6-ablation experiments override individual knobs.

    Attributes
    ----------
    poll_policy:
        Prototype polling policy; each installed applet receives its own
        :meth:`~repro.engine.poller.PollingPolicy.clone`.
    batch_limit:
        The ``limit`` sent in each poll — k in §4's batching discussion
        (50 by default).
    realtime_allowlist:
        Service slugs whose realtime hints cause an immediate poll.
        ``None`` means *honour every service's hints* (the push world §6
        advocates); an empty set ignores all hints.
    initial_poll_delay, initial_poll_jitter:
        Delay between applet installation and the registration poll, plus
        a uniform random extra of up to ``initial_poll_jitter`` seconds —
        staggering large fleets so their polling phases decorrelate.
    action_timeout, poll_timeout:
        HTTP timeouts for engine-originated requests.
    dedupe_window:
        How many recent event ids the engine remembers per trigger
        identity for deduplication.
    static_loop_check:
        Reject applet installs that would create a detectable loop.
        Default False — the paper confirms production IFTTT performs no
        such "syntax check".
    runtime_loop_detection:
        Attach a :class:`~repro.engine.loops.RuntimeLoopDetector` and
        disable applets that trip it.  Default False (ditto).
    runtime_loop_threshold, runtime_loop_window:
        The runtime detector's rate limit: more than ``threshold``
        executions of one applet within ``window`` seconds flags a loop.
    retry_policy:
        Backoff schedule for failed polls and action deliveries
        (``None`` disables retries entirely: failed polls wait for the
        next regular interval, failed actions dead-letter immediately).
        Jitter is drawn from the engine's seeded RNG, so retry timing is
        reproducible.  Only consulted on failures — healthy runs consume
        no extra randomness and behave identically with or without it.
    breaker_policy:
        Per-service circuit-breaker tunables (``None`` disables
        breakers).  An open breaker sheds polls/actions for its service,
        modelling the adaptive slow-down of polling for failing
        services; shed polls still count toward per-applet poll
        attempts.  See ``docs/ROBUSTNESS.md``.
    replay_policy:
        Dead-letter replay tunables (``None``, the default, disables
        replay: dead letters stay sealed forever — the pre-replay
        behaviour).  When set, a service's dead letters are drained back
        into pending actions on heal (breaker close) or via
        :meth:`~repro.engine.engine.IftttEngine.replay_dead_letters`,
        re-dispatched in batches of
        :attr:`~repro.engine.resilience.ReplayPolicy.batch_limit`, and
        the conservation invariant extends to ``dispatched == delivered
        + in_retry + dead_lettered + in_replay``.  See
        ``docs/ROBUSTNESS.md`` ("Replay & batching").
    num_shards:
        How many :class:`~repro.engine.engine.IftttEngine` instances a
        :class:`~repro.engine.sharding.ShardedEngine` built from this
        config partitions the applet corpus across.  A plain engine
        ignores the knob; 1 (the default) makes the sharded coordinator
        behaviourally equivalent to a single engine.
    shard_strategy:
        How applets map to shards — one of :data:`SHARD_STRATEGIES`:
        ``service_hash`` (seed-stable hash of the trigger service, so
        all polls for a service land on one shard and batching still
        works), ``round_robin`` (per-applet, ignores service affinity),
        or ``popularity_balanced`` (first sighting of a trigger service
        sticks it to the least-loaded shard — tames heavy-tailed applet
        popularity).  See ``docs/SHARDING.md``.
    delivery_policy:
        Health-aware adaptive delivery tunables (``None``, the default,
        disables adaptation — the engine behaves exactly as before, no
        new metric families appear, and no extra randomness is
        consumed, so the determinism gates stay byte-identical).  When
        set, the engine builds a
        :class:`~repro.engine.delivery.DeliveryController`: per-service
        :class:`~repro.engine.delivery.ServiceHealth` EWMA trackers
        stretch poll intervals and retry backoffs under brownout,
        watermarked admission bounds the realtime-hint and action-retry
        queues, replay drains respect the same headroom, and the
        4-level degradation ladder is exported per service as the
        ``{ns}.degradation_level`` gauge.  See ``docs/ROBUSTNESS.md``
        ("Adaptive delivery & degradation ladder").
    push_policy:
        Push-first delivery tunables (``None``, the default, disables
        push: services keep polling/hint semantics, no push webhook
        route is registered, and behaviour is byte-identical to the
        pre-push engine).  When set, the engine builds a
        :class:`~repro.engine.push.PushController`, registers
        ``POST /ifttt/v1/webhooks/push``, and accepts the push contract
        of any service published with ``push=True``: the service then
        POSTs event payloads directly, the controller coalesces them
        into batched drains (``batch_window``/``max_batch``), and the
        watermarked backlog degrades the service push→hint→poll.
        Applets on contract services poll only at the policy's
        ``safety_net_interval``.  See ``docs/DELIVERY.md``.
    poll_dispatch:
        How scheduled polls become simulator events — one of
        :data:`~repro.engine.scheduler.POLL_DISPATCH_MODES`.  ``heap``
        (the default) runs the engine-internal heap scheduler: one wake
        event per engine pops batches of due polls, with lazy
        cancellation on uninstall.  ``timers`` is the seed dispatch (one
        simulator event per poll) kept as the equivalence/benchmark
        baseline.  The two are dispatch-equivalent — same poll times,
        same order, same RNG consumption, identical deterministic
        snapshots modulo kernel event counters; see
        ``docs/PERFORMANCE.md`` and ``tests/test_scheduler_equivalence.py``.
    """

    poll_policy: PollingPolicy = field(default_factory=ProductionPollingPolicy)
    batch_limit: int = 50
    realtime_allowlist: Optional[FrozenSet[str]] = DEFAULT_REALTIME_ALLOWLIST
    initial_poll_delay: float = 1.0
    initial_poll_jitter: float = 0.0
    action_timeout: float = 30.0
    poll_timeout: float = 30.0
    dedupe_window: int = 2000
    static_loop_check: bool = False
    runtime_loop_detection: bool = False
    runtime_loop_threshold: int = 10
    runtime_loop_window: float = 60.0
    retry_policy: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    breaker_policy: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    replay_policy: Optional[ReplayPolicy] = None
    delivery_policy: Optional[DeliveryPolicy] = None
    push_policy: Optional[PushPolicy] = None
    num_shards: int = 1
    shard_strategy: str = "service_hash"
    poll_dispatch: str = "heap"

    def __post_init__(self) -> None:
        if self.batch_limit <= 0:
            raise ValueError(f"batch_limit must be positive, got {self.batch_limit}")
        if self.dedupe_window <= 0:
            raise ValueError(f"dedupe_window must be positive, got {self.dedupe_window}")
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard_strategy {self.shard_strategy!r}; "
                f"expected one of {SHARD_STRATEGIES}"
            )
        if self.poll_dispatch not in POLL_DISPATCH_MODES:
            raise ValueError(
                f"unknown poll_dispatch {self.poll_dispatch!r}; "
                f"expected one of {POLL_DISPATCH_MODES}"
            )

    def honours_realtime_for(self, service_slug: str) -> bool:
        """Whether a realtime hint from this service triggers an immediate poll."""
        if self.realtime_allowlist is None:
            return True
        return service_slug in self.realtime_allowlist
