"""Engine resilience primitives: retries, circuit breakers, dead letters.

The paper measures IFTTT only on the happy path, but its §4 observations
(long variable polling, partner outages surfacing as silent latency
spikes) imply machinery on the real engine that this module makes
explicit:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter, drawn from the simulation RNG so retry storms are replayable;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, kept per service by the engine.  An open breaker sheds polls
  and action sends, modelling the adaptive slow-down of polling for
  failing services;
* :class:`PendingAction` / :class:`DeadLetter` — the engine's action
  retry queue bookkeeping: every dispatched action is either delivered
  or ends in the dead-letter sink; none is silently lost.

See ``docs/ROBUSTNESS.md`` for the full semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simcore.rng import Rng


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` counts *every* try, including the first: the
    default of 4 means one initial attempt plus up to three retries.
    Backoff for retry ``n`` (1-based) is ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, then jittered by ±``jitter`` (a fraction)
    using the caller-supplied RNG — the simulation stream, so runs are
    reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 < base_delay <= max_delay, got {self.base_delay}, {self.max_delay}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, rng: Optional[Rng] = None) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries have used up the budget."""
        return attempts >= self.max_attempts


class BreakerState(enum.Enum):
    """Circuit-breaker states, ordered by severity."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"

    @property
    def level(self) -> int:
        """Numeric level for gauges (closed=0, half_open=1, open=2)."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


@dataclass(frozen=True)
class BreakerPolicy:
    """Tunables for per-service circuit breakers."""

    failure_threshold: int = 5
    recovery_timeout: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {self.failure_threshold}")
        if self.recovery_timeout <= 0:
            raise ValueError(f"recovery_timeout must be positive, got {self.recovery_timeout}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {self.half_open_probes}")


TransitionHook = Callable[[BreakerState, BreakerState, float], None]


class CircuitBreaker:
    """Closed → open → half-open breaker for one downstream service.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      failures trip the breaker open.
    * **open** — requests are shed without touching the network; after
      ``recovery_timeout`` seconds the next :meth:`allow` moves to
      half-open.
    * **half-open** — up to ``half_open_probes`` probe requests are let
      through; one success closes the breaker, one failure re-opens it.

    The breaker is time-driven but clockless: callers pass ``now`` (the
    simulation clock), keeping the class trivially testable.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        on_transition: Optional[TransitionHook] = None,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_allowed = 0
        self.shed_count = 0
        #: Chronological (time, from, to) transition log for tests/reports.
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    @property
    def state(self) -> BreakerState:
        """Current state (as of the last :meth:`allow`/record call)."""
        return self._state

    def _transition(self, new_state: BreakerState, now: float) -> None:
        old = self._state
        if old is new_state:
            return
        self._state = new_state
        self.transitions.append((now, old, new_state))
        if self.on_transition is not None:
            self.on_transition(old, new_state, now)

    def allow(self, now: float) -> bool:
        """Whether a request may go out at time ``now``."""
        if self._state is BreakerState.OPEN:
            if self._opened_at is not None and (
                now - self._opened_at >= self.policy.recovery_timeout
            ):
                self._transition(BreakerState.HALF_OPEN, now)
                self._probes_allowed = 0
            else:
                self.shed_count += 1
                return False
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_allowed < self.policy.half_open_probes:
                self._probes_allowed += 1
                return True
            self.shed_count += 1
            return False
        return True

    def record_success(self, now: float) -> None:
        """A request completed successfully."""
        self._consecutive_failures = 0
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A request failed (error status, timeout, or refusal)."""
        if self._state is BreakerState.HALF_OPEN:
            self._opened_at = now
            self._consecutive_failures = 0
            self._transition(BreakerState.OPEN, now)
        elif self._state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.failure_threshold:
                self._opened_at = now
                self._consecutive_failures = 0
                self._transition(BreakerState.OPEN, now)
        # While OPEN: stale failures from in-flight requests are ignored.

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self._state.value} transitions={len(self.transitions)}>"


@dataclass
class PendingAction:
    """One action delivery the engine has committed to completing."""

    applet_id: int
    service_slug: str
    action_slug: str
    fields: Dict[str, Any]
    user: str
    event_id: Any
    created_at: float
    attempts: int = 0
    last_status: Optional[int] = None


@dataclass(frozen=True)
class DeadLetter:
    """A permanently failed action delivery — accounted, never silent."""

    applet_id: int
    service_slug: str
    action_slug: str
    fields: Dict[str, Any]
    event_id: Any
    created_at: float
    dead_at: float
    attempts: int
    last_status: Optional[int]
    reason: str

    @staticmethod
    def from_pending(pending: PendingAction, dead_at: float, reason: str) -> "DeadLetter":
        """Seal a pending action into its dead-letter record."""
        return DeadLetter(
            applet_id=pending.applet_id,
            service_slug=pending.service_slug,
            action_slug=pending.action_slug,
            fields=dict(pending.fields),
            event_id=pending.event_id,
            created_at=pending.created_at,
            dead_at=dead_at,
            attempts=pending.attempts,
            last_status=pending.last_status,
            reason=reason,
        )
