"""Engine resilience primitives: retries, circuit breakers, dead letters.

The paper measures IFTTT only on the happy path, but its §4 observations
(long variable polling, partner outages surfacing as silent latency
spikes) imply machinery on the real engine that this module makes
explicit:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter, drawn from the simulation RNG so retry storms are replayable;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, kept per service by the engine.  An open breaker sheds polls
  and action sends, modelling the adaptive slow-down of polling for
  failing services;
* :class:`PendingAction` / :class:`DeadLetter` — the engine's action
  retry queue bookkeeping: every dispatched action is either delivered
  or ends in the dead-letter sink; none is silently lost;
* :class:`ReplayPolicy` — tunables for the dead-letter replay pass that
  re-dispatches a healed service's dead letters in batched catch-up
  requests (:mod:`repro.engine.replay`), extending the conservation
  invariant to ``dispatched == delivered + in_retry + dead_lettered +
  in_replay``.

See ``docs/ROBUSTNESS.md`` for the full semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simcore.rng import Rng


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` counts *every* try, including the first: the
    default of 4 means one initial attempt plus up to three retries.
    Backoff for retry ``n`` (1-based) is ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, then jittered by ±``jitter`` (a fraction)
    using the caller-supplied RNG — the simulation stream, so runs are
    reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 < base_delay <= max_delay, got {self.base_delay}, {self.max_delay}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, rng: Optional[Rng] = None) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries have used up the budget."""
        return attempts >= self.max_attempts


class BreakerState(enum.Enum):
    """Circuit-breaker states, ordered by severity."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"

    @property
    def level(self) -> int:
        """Numeric level for gauges (closed=0, half_open=1, open=2)."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


@dataclass(frozen=True)
class BreakerPolicy:
    """Tunables for per-service circuit breakers."""

    failure_threshold: int = 5
    recovery_timeout: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {self.failure_threshold}")
        if self.recovery_timeout <= 0:
            raise ValueError(f"recovery_timeout must be positive, got {self.recovery_timeout}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {self.half_open_probes}")


TransitionHook = Callable[[BreakerState, BreakerState, float], None]


class CircuitBreaker:
    """Closed → open → half-open breaker for one downstream service.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      failures trip the breaker open.
    * **open** — requests are shed without touching the network; after
      ``recovery_timeout`` seconds the next :meth:`allow` moves to
      half-open.
    * **half-open** — up to ``half_open_probes`` probe requests are let
      through; one success closes the breaker, one failure re-opens it.

    The breaker is time-driven but clockless: callers pass ``now`` (the
    simulation clock), keeping the class trivially testable.

    Timing invariants (regression-tested through the full
    OPEN → HALF_OPEN → OPEN → HALF_OPEN cycle):

    * every transition *into* OPEN — first trip or re-open from
      HALF_OPEN — goes through :meth:`_trip`, which refreshes
      ``_opened_at``, so each recovery window is measured from the most
      recent (re-)open, never the original trip;
    * ``_opened_at`` is cleared on close, so a breaker that somehow
      reads it outside OPEN sees ``None`` instead of a stale timestamp.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        on_transition: Optional[TransitionHook] = None,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self.on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_allowed = 0
        self.shed_count = 0
        #: Chronological (time, from, to) transition log for tests/reports.
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    @property
    def state(self) -> BreakerState:
        """Current state (as of the last :meth:`allow`/record call)."""
        return self._state

    def _transition(self, new_state: BreakerState, now: float) -> None:
        old = self._state
        if old is new_state:
            return
        self._state = new_state
        self.transitions.append((now, old, new_state))
        if self.on_transition is not None:
            self.on_transition(old, new_state, now)

    def allow(self, now: float) -> bool:
        """Whether a request may go out at time ``now``."""
        if self._state is BreakerState.OPEN:
            if self._opened_at is not None and (
                now - self._opened_at >= self.policy.recovery_timeout
            ):
                self._transition(BreakerState.HALF_OPEN, now)
                self._probes_allowed = 0
            else:
                self.shed_count += 1
                return False
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_allowed < self.policy.half_open_probes:
                self._probes_allowed += 1
                return True
            self.shed_count += 1
            return False
        return True

    def _trip(self, now: float) -> None:
        """The single entry into OPEN: always restart the recovery clock."""
        self._opened_at = now
        self._consecutive_failures = 0
        self._probes_allowed = 0
        self._transition(BreakerState.OPEN, now)

    def record_success(self, now: float) -> None:
        """A request completed successfully."""
        self._consecutive_failures = 0
        if self._state is not BreakerState.CLOSED:
            self._opened_at = None
            self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A request failed (error status, timeout, or refusal)."""
        if self._state is BreakerState.HALF_OPEN:
            # Re-open: the next recovery window starts *now*, not at the
            # original trip — otherwise the second HALF_OPEN would arrive
            # early (or instantly) after a failed probe.
            self._trip(now)
        elif self._state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.failure_threshold:
                self._trip(now)
        # While OPEN: stale failures from in-flight requests are ignored.

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self._state.value} transitions={len(self.transitions)}>"


@dataclass
class PendingAction:
    """One action delivery the engine has committed to completing."""

    applet_id: int
    service_slug: str
    action_slug: str
    fields: Dict[str, Any]
    user: str
    event_id: Any
    created_at: float
    attempts: int = 0
    last_status: Optional[int] = None


@dataclass(frozen=True)
class DeadLetter:
    """A permanently failed action delivery — accounted, never silent."""

    applet_id: int
    service_slug: str
    action_slug: str
    fields: Dict[str, Any]
    event_id: Any
    created_at: float
    dead_at: float
    attempts: int
    last_status: Optional[int]
    reason: str
    #: The acting user, kept so a replay pass can re-authenticate the
    #: re-dispatched action (older pickled letters default to "").
    user: str = ""

    @staticmethod
    def from_pending(pending: PendingAction, dead_at: float, reason: str) -> "DeadLetter":
        """Seal a pending action into its dead-letter record."""
        return DeadLetter(
            applet_id=pending.applet_id,
            service_slug=pending.service_slug,
            action_slug=pending.action_slug,
            fields=dict(pending.fields),
            event_id=pending.event_id,
            created_at=pending.created_at,
            dead_at=dead_at,
            attempts=pending.attempts,
            last_status=pending.last_status,
            reason=reason,
            user=pending.user,
        )

    def to_pending(self) -> PendingAction:
        """Re-open a dead letter as a fresh delivery commitment.

        The attempt budget restarts (the letter already exhausted its
        original one against the *unhealthy* service) while
        ``created_at`` is preserved, so replayed-event latency is still
        measured from the original trigger time.
        """
        return PendingAction(
            applet_id=self.applet_id,
            service_slug=self.service_slug,
            action_slug=self.action_slug,
            fields=dict(self.fields),
            user=self.user,
            event_id=self.event_id,
            created_at=self.created_at,
        )


@dataclass(frozen=True)
class ReplayPolicy:
    """Tunables for dead-letter replay (:mod:`repro.engine.replay`).

    Attributes
    ----------
    batch_limit:
        Maximum actions coalesced into one
        :class:`~repro.services.partner.BatchActionRequest` — the same
        k = 50 default the paper reverse-engineered from the partner
        polling protocol's ``limit``.
    batching:
        When False every replayed action is re-dispatched as its own
        single-action request — the unbatched baseline the catch-up
        burst measurement compares against.
    replay_on_heal:
        Drain a service's dead letters automatically when its circuit
        breaker closes.  Explicit :meth:`ReplayController.replay_service`
        calls work either way.
    drain_delay:
        Seconds between the heal and the drain (0 = the next simulator
        event after the closing transition).
    """

    batch_limit: int = 50
    batching: bool = True
    replay_on_heal: bool = True
    drain_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {self.batch_limit}")
        if self.drain_delay < 0:
            raise ValueError(f"drain_delay must be >= 0, got {self.drain_delay}")
